//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds with no network access, so this vendored crate
//! supplies the (small) slice of the `rand` 0.9 API the repository uses:
//! [`Rng`] / [`RngExt`], [`SeedableRng`], [`rngs::StdRng`], and the
//! [`seq`] slice helpers. The generator is a deterministic xoshiro256**;
//! it is *not* cryptographically secure and makes no cross-version
//! stability promises beyond this workspace.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128) - (lo as i128) + 1;
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from this range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Decrement helper for converting exclusive to inclusive upper bounds.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64. Stable within this workspace; not the upstream StdRng
    /// stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection for slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5..=5u32);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_probabilities_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Supplies the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro over range strategies, `ProptestConfig::with_cases`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! [`bool::ANY`]. Cases are drawn from a deterministic PRNG; failures
//! panic with the failing inputs but are **not shrunk**.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The case-generation RNG handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test RNG; `salt` keeps distinct tests decorrelated.
    pub fn deterministic(salt: u64) -> Self {
        TestRng(StdRng::seed_from_u64(0xC0FF_EE00 ^ salt))
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `sample` just draws a random value.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Samples `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.0.random_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Strategy for `Vec`s: each case draws a length from `size`, then
    /// that many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property test, reporting the expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
}

/// Skips the current case when its inputs are uninteresting.
///
/// Expands to `continue`, so it is only valid directly inside a
/// `proptest!` body (which is inlined into the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without one.
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $(#[$meta])* fn $name $($rest)*);
    };
    // Muncher: one test fn at a time.
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Salt the RNG with the test name so sibling tests differ.
            let salt = stringify!($name).bytes().fold(0u64, |h, b| {
                h.wrapping_mul(131).wrapping_add(b as u64)
            });
            let mut prop_rng = $crate::TestRng::deterministic(salt);
            $(let $arg = $strat;)+
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&$arg, &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(a in 1usize..10, b in 0u64..5) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn bool_any_samples(flag in crate::bool::ANY) {
            let branch = u8::from(flag);
            prop_assert!(branch <= 1);
        }
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API the bench targets use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — with a
//! single-warmup, fixed-sample wall-clock loop instead of criterion's
//! statistical machinery. Good enough for relative comparisons in an
//! offline container; swap for the registry crate for real statistics.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque identity hint, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level bench driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            samples: 10,
        }
    }
}

/// A named parameterized benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..self.samples {
            f(&mut b);
        }
        b.report(&self.name, &id.label);
        self
    }

    /// Runs a benchmark against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..self.samples {
            f(&mut b, input);
        }
        b.report(&self.name, &id.label);
        self
    }

    /// Finishes the group (printing handled per-bench here).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `f` per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.total += start.elapsed();
        self.iters += 1;
        std_black_box(out);
    }

    fn report(&self, group: &str, label: &str) {
        if self.iters == 0 {
            println!("{group}/{label}: no iterations");
        } else {
            let mean = self.total / self.iters as u32;
            println!("{group}/{label}: {mean:?} mean over {} iters", self.iters);
        }
    }
}

/// Declares a bench entry point collecting the given functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Dogfood gate: the workspace tree itself must be clean under
//! `minex-lint`, with every waiver consumed. This is the same check the
//! `lint` CI job runs via the binary; keeping it in `cargo test` means a
//! plain `cargo test --workspace` catches determinism-contract drift
//! even without the CI wrapper.

use std::path::Path;

#[test]
fn workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let result = minex_lint::scan_tree(root).expect("scan workspace");
    assert!(
        result.is_clean(),
        "workspace has lint findings:\n{}",
        result.render_human()
    );
    assert!(
        result.files_scanned > 50,
        "suspiciously few files scanned: {}",
        result.files_scanned
    );
}

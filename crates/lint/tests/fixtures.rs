//! Fixture-corpus tests: every rule has a should-flag and a should-pass
//! fixture under `tests/fixtures/`, linted through the library API under
//! a simulated in-scope path (the real fixture path is scope-excluded so
//! `scan_tree` over the workspace never sees these deliberate
//! violations).

use std::fs;
use std::path::PathBuf;

use minex_lint::{lint_source_with_stats, scope_for, Finding};

/// Lints the named fixture as if it lived at `sim_path` and returns the
/// findings plus the consumed-waiver count.
fn lint_fixture(name: &str, sim_path: &str) -> (Vec<Finding>, usize) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", name]
        .iter()
        .collect();
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let scope = scope_for(sim_path).unwrap_or_else(|| panic!("{sim_path} not in scope"));
    lint_source_with_stats(sim_path, &src, scope)
}

/// Sorted rule ids of all findings.
fn rule_ids(findings: &[Finding]) -> Vec<&str> {
    let mut ids: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    ids.sort_unstable();
    ids
}

/// Simulated path for most rules: `core` is a result-affecting crate, so
/// D001/D002/D003/D005/D006 are all active there (D004 is congest-only).
const CORE_PATH: &str = "crates/core/src/fixture.rs";
/// Simulated path for D004, which applies only under `crates/congest/src/`.
const CONGEST_PATH: &str = "crates/congest/src/fixture.rs";

#[test]
fn d001_flag_fixture() {
    let (findings, _) = lint_fixture("d001_flag.rs", CORE_PATH);
    assert_eq!(rule_ids(&findings), ["D001"; 4], "{findings:?}");
}

#[test]
fn d001_pass_fixture() {
    let (findings, _) = lint_fixture("d001_pass.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d002_flag_fixture() {
    let (findings, _) = lint_fixture("d002_flag.rs", CORE_PATH);
    assert_eq!(rule_ids(&findings), ["D002"; 2], "{findings:?}");
}

#[test]
fn d002_pass_fixture() {
    let (findings, _) = lint_fixture("d002_pass.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d002_fixture_passes_in_timing_crate() {
    // The same wall-clock reads are fine where timing is the job.
    let (findings, _) = lint_fixture("d002_flag.rs", "crates/bench/src/fixture.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d003_flag_fixture() {
    let (findings, _) = lint_fixture("d003_flag.rs", CORE_PATH);
    assert_eq!(rule_ids(&findings), ["D003"; 2], "{findings:?}");
}

#[test]
fn d003_pass_fixture() {
    let (findings, _) = lint_fixture("d003_pass.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d004_flag_fixture() {
    let (findings, _) = lint_fixture("d004_flag.rs", CONGEST_PATH);
    assert_eq!(rule_ids(&findings), ["D004"; 5], "{findings:?}");
}

#[test]
fn d004_pass_fixture() {
    let (findings, _) = lint_fixture("d004_pass.rs", CONGEST_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d004_fixture_passes_outside_congest() {
    // Floats are only banned on the congest message plane.
    let (findings, _) = lint_fixture("d004_flag.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d005_flag_fixture() {
    let (findings, _) = lint_fixture("d005_flag.rs", CORE_PATH);
    assert_eq!(rule_ids(&findings), ["D005"; 3], "{findings:?}");
}

#[test]
fn d005_pass_fixture() {
    let (findings, _) = lint_fixture("d005_pass.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d006_flag_fixture() {
    let (findings, _) = lint_fixture("d006_flag.rs", CORE_PATH);
    assert_eq!(rule_ids(&findings), ["D006"; 2], "{findings:?}");
}

#[test]
fn d006_pass_fixture() {
    let (findings, _) = lint_fixture("d006_pass.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d007_flag_fixture() {
    let (findings, _) = lint_fixture("d007_flag.rs", CORE_PATH);
    assert_eq!(rule_ids(&findings), ["D007"; 3], "{findings:?}");
}

#[test]
fn d007_pass_fixture() {
    let (findings, _) = lint_fixture("d007_pass.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d007_fixture_passes_in_graphs_reference() {
    // The reference Dijkstra oracle is the one sanctioned heap site.
    let (findings, _) = lint_fixture("d007_flag.rs", "crates/graphs/src/reference.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn waiver_used_fixture() {
    let (findings, used) = lint_fixture("waiver_used.rs", CORE_PATH);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(used, 2);
}

#[test]
fn waiver_unused_fixture() {
    let (findings, used) = lint_fixture("waiver_unused.rs", CORE_PATH);
    assert_eq!(rule_ids(&findings), ["W001"], "{findings:?}");
    assert_eq!(used, 0);
}

#[test]
fn waiver_malformed_fixture() {
    // Malformed waivers are flagged AND do not suppress the finding
    // they sit next to.
    let (findings, used) = lint_fixture("waiver_malformed.rs", CORE_PATH);
    assert_eq!(
        rule_ids(&findings),
        ["D001", "W002", "W002"],
        "{findings:?}"
    );
    assert_eq!(used, 0);
}

#[test]
fn fixtures_are_scope_excluded() {
    // The corpus itself must never be linted by a workspace scan.
    assert!(scope_for("crates/lint/tests/fixtures/d001_flag.rs").is_none());
}

// Waiver fixture: a justified waiver on the line above (or the same
// line as) a violation suppresses it and counts as consumed.
use std::collections::HashMap;

fn global_min(best: &HashMap<u32, u64>) -> Option<u64> {
    // minex-lint: allow(D001) min over a total-order key is iteration-order-insensitive
    best.values().copied().min()
}

fn measure() -> std::time::Instant {
    std::time::Instant::now() // minex-lint: allow(D002) this fixture pretends to be a timing path
}

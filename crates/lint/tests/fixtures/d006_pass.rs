// Should-pass fixture for D006: total-order sorts in the house idiom.

fn sort_scores(scores: &mut Vec<(u32, u64)>) {
    scores.sort_unstable_by_key(|&(id, score)| (score, id));
}

fn sort_ids(ids: &mut Vec<u32>) {
    ids.sort_unstable();
}

fn sort_pairs(pairs: &mut Vec<(usize, usize)>) {
    pairs.sort_by_key(|&(a, b)| (a, b));
}

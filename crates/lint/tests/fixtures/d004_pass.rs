// Should-pass fixture for D004: integer-scaled payloads (the house
// convention: weights and ratios carry an explicit integer scale).

struct LoadMsg {
    edge: u32,
    ratio_milli: u64,
}

fn utilization_milli(msg: &LoadMsg) -> u64 {
    u64::from(msg.edge) * msg.ratio_milli
}

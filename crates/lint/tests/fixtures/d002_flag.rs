// Should-flag fixture for D002: wall-clock reads in a result-affecting
// crate. Expected findings: 2 × D002.
use std::time::{Instant, SystemTime};

fn measure<R>(f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    let _ = start.elapsed();
    out
}

fn stamp_secs() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

// Should-flag fixture for D003: thread-environment probes outside
// `CongestConfig::resolved_threads`. Expected findings: 2 × D003.

fn pick_shard_count() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}

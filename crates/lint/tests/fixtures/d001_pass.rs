// Should-pass fixture for D001: keyed lookups, Vec-level iteration over a
// container of maps, and the collect-and-sort idiom are all fine.
use std::collections::{HashMap, HashSet};

struct Buffers {
    queues: Vec<HashMap<u32, u64>>,
}

fn lookups_are_keyed(loads: &HashMap<u32, u64>, member: &HashSet<u32>) -> u64 {
    let direct = loads[&3];
    let checked = loads.get(&4).copied().unwrap_or(0);
    let hit = u64::from(member.contains(&5));
    direct + checked + hit
}

fn collect_and_sort(groups: HashMap<usize, Vec<usize>>) -> Vec<(usize, Vec<usize>)> {
    let mut sorted: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
    sorted.sort_unstable_by_key(|(label, _)| *label);
    sorted
}

fn collected_values_then_sorted(loads: HashMap<u32, u64>) -> Vec<u64> {
    let mut values: Vec<u64> = loads.into_values().collect();
    values.sort_unstable();
    values
}

impl Buffers {
    fn all_empty(&self) -> bool {
        // Iterating the Vec of queues is ordered; only per-queue
        // iteration would be hash-ordered.
        self.queues.iter().all(HashMap::is_empty)
    }

    fn queued(&self, li: usize, part: u32) -> Option<u64> {
        self.queues[li].get(&part).copied()
    }
}

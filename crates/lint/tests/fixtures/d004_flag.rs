// Should-flag fixture for D004: floating point in congest payloads or
// stats. Expected findings: 5 × D004 (two field types, one return type,
// one cast, one suffixed literal).

struct LoadMsg {
    edge: u32,
    ratio: f64,
    share: f32,
}

fn utilization(msg: &LoadMsg) -> f64 {
    (msg.edge as f64) * 1.5f64
}

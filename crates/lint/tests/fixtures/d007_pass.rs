//! The sanctioned shape: a monotone bucket queue keyed on small integer
//! distances — dense arrays and a `VecDeque`, no heap anywhere.

use std::collections::VecDeque;

fn bucket_order(keys: &[usize], w_max: usize) -> Vec<usize> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); w_max + 1];
    for (i, &k) in keys.iter().enumerate() {
        buckets[k % (w_max + 1)].push(i);
    }
    let mut out = Vec::with_capacity(keys.len());
    for b in &mut buckets {
        b.sort_unstable();
        out.append(b);
    }
    out
}

fn fifo(items: &[u64]) -> Vec<u64> {
    let mut q: VecDeque<u64> = items.iter().copied().collect();
    let mut out = Vec::with_capacity(items.len());
    while let Some(x) = q.pop_front() {
        out.push(x);
    }
    out
}

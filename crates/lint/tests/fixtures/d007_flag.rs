//! Deliberately violating fixture: a `BinaryHeap` priority queue in what
//! the test simulates as a result-affecting crate. Three flag sites: the
//! annotation, the turbofished constructor, and the return type (the
//! `use` import is skipped — the usage sites are what get flagged).

use std::collections::BinaryHeap;

fn drain_in_pop_order(items: &[u64]) -> Vec<u64> {
    let mut heap: BinaryHeap<u64> = items.iter().copied().collect();
    let mut out = Vec::with_capacity(items.len());
    while let Some(x) = heap.pop() {
        out.push(x);
    }
    out
}

fn empty_queue() -> BinaryHeap<(u64, usize)> {
    BinaryHeap::new()
}

// Should-flag fixture for D001: unordered HashMap/HashSet iteration in a
// result-affecting crate. Expected findings: 4 × D001.
use std::collections::{HashMap, HashSet};

struct Buffers {
    queues: Vec<HashMap<u32, u64>>,
}

fn direct_iteration(loads: HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in loads.iter() {
        total += v;
    }
    total
}

fn for_in_consumes(groups: HashMap<usize, Vec<usize>>) -> usize {
    let mut n = 0;
    for (_, nodes) in groups {
        n += nodes.len();
    }
    n
}

fn keys_in_hash_order(seen: &HashSet<u32>) -> Vec<u32> {
    seen.iter().copied().collect()
}

impl Buffers {
    fn first_queued(&self, li: usize) -> Option<u32> {
        self.queues[li].keys().next().copied()
    }
}

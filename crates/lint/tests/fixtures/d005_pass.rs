// Should-pass fixture for D005: every RNG is an explicitly seeded StdRng,
// so any run can be replayed from the seed in its logs.
use rand::{Rng, SeedableRng, StdRng};

fn deterministic_weights(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(1..64)).collect()
}

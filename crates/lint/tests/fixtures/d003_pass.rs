// Should-pass fixture for D003: `resolved_threads` is the one sanctioned
// resolution point; spawning scoped workers from an already-resolved
// count is fine.

struct CongestConfig {
    threads: usize,
}

impl CongestConfig {
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        }
    }
}

fn spawn_workers(config: &CongestConfig) -> usize {
    let n = config.resolved_threads();
    std::thread::scope(|_s| n)
}

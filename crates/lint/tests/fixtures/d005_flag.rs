// Should-flag fixture for D005: ambient entropy. Expected findings:
// 3 × D005.

fn shuffle_seedless(xs: &mut [u32]) {
    let mut rng = rand::thread_rng();
    rng.shuffle(xs);
}

fn entropy_seeded() -> rand::StdRng {
    rand::StdRng::from_entropy()
}

fn os_random() -> u64 {
    rand::OsRng.next_u64()
}

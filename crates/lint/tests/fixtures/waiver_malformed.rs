// Waiver fixture: malformed waivers are errors (W002) and do NOT
// suppress the underlying finding. Expected findings: 2 × W002
// (missing justification, unknown rule id) plus the unsuppressed D001.
use std::collections::HashMap;

fn one(best: &HashMap<u32, u64>) -> Option<u64> {
    // minex-lint: allow(D001)
    best.values().copied().min()
}

// minex-lint: allow(D999) no such rule
fn two() -> u64 {
    7
}

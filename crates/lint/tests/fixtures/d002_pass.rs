// Should-pass fixture for D002: round counts are the only clock results
// may depend on; `Duration` values and round arithmetic are fine.
use std::time::Duration;

fn round_budget(n: usize) -> usize {
    2 * n + 16
}

fn fixed_backoff() -> Duration {
    Duration::from_millis(50)
}

// Should-flag fixture for D006: sort hygiene. Expected findings:
// 2 × D006 (partial_cmp comparator, comparator-free stable sort).

fn sort_scores(scores: &mut Vec<(u32, f64)>) {
    scores.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}

fn sort_ids(ids: &mut Vec<u32>) {
    ids.sort();
}

// Waiver fixture: a waiver nothing consumes is itself an error (W001) —
// stale waivers cannot accumulate. Expected findings: 1 × W001.

// minex-lint: allow(D005) leftover justification from refactored code
fn no_rng_here() -> u64 {
    42
}

//! The determinism-contract rule drivers (D001–D007) and waiver engine.
//!
//! Every rule enforces a repo-specific invariant of the minex determinism
//! contract: results must be byte-identical across the sequential and
//! parallel CONGEST engines and any `MINEX_THREADS`. The rules are
//! deliberately *lexical* — a lexer-level analysis over one file at a
//! time, with a file-local binding tracker standing in for type
//! inference. That makes them fast, dependency-free, and predictable; the
//! cost is a small set of documented heuristics (see each rule) and the
//! waiver escape hatch for sites the analysis cannot prove safe:
//!
//! ```text
//! // minex-lint: allow(D001) min over a total-order key is order-insensitive
//! ```
//!
//! A waiver covers findings of its rule on the same line or the line
//! directly below, must carry a non-empty justification, and is itself an
//! error (`W001`) if nothing consumes it — waivers cannot rot.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// A single lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule id (`D001`..`D007`, or `W001`/`W002` for waiver
    /// accounting errors).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// D001: no unordered `HashMap`/`HashSet` iteration. Result-affecting
    /// crates only (`congest`, `core`, `algo`, `graphs`, `decomp`).
    pub d001: bool,
    /// D002: no `Instant::now`/`SystemTime` wall-clock reads. Everything
    /// except the `bench`/`serve` timing crates.
    pub d002: bool,
    /// D003: no `thread::current`/`available_parallelism` thread
    /// introspection (exempt inside `fn resolved_threads`). Same scope as
    /// D002.
    pub d003: bool,
    /// D004: no `f32`/`f64` anywhere in the congest crate's `src/` —
    /// message payloads and `RunStats` are integer-only by design. (The
    /// crate's timing tests may measure seconds; they are not payloads.)
    pub d004: bool,
    /// D005: no unseeded randomness, anywhere.
    pub d005: bool,
    /// D006: no `sort_by` + `partial_cmp`, no comparator-free `.sort()`
    /// (the house idiom is `sort_unstable*`), anywhere.
    pub d006: bool,
    /// D007: no `BinaryHeap` in result-affecting crates outside
    /// `crates/graphs/src/reference.rs` — the one sanctioned heap is the
    /// reference Dijkstra the bucket-queue fast path is differentially
    /// tested against.
    pub d007: bool,
}

/// The five crates whose output feeds the determinism contract.
pub const RESULT_CRATES: [&str; 5] = ["congest", "core", "algo", "graphs", "decomp"];

/// Crates whose whole job is wall-clock measurement and load generation;
/// D002/D003 do not apply there.
pub const TIMING_CRATES: [&str; 2] = ["bench", "serve"];

/// Rule ids in order, with one-line summaries (for `minex-lint rules`).
pub const RULES: [(&str, &str); 9] = [
    (
        "D001",
        "no HashMap/HashSet iteration in result-affecting crates (collect-and-sort or waive)",
    ),
    (
        "D002",
        "no Instant::now/SystemTime outside the bench/serve timing crates",
    ),
    (
        "D003",
        "no thread::current/available_parallelism outside CongestConfig::resolved_threads",
    ),
    (
        "D004",
        "no f32/f64 in the congest crate (payloads and RunStats are integer-scaled)",
    ),
    (
        "D005",
        "no unseeded RNG (thread_rng, OsRng, from_entropy, getrandom)",
    ),
    (
        "D006",
        "no sort_by+partial_cmp and no comparator-free .sort() (use sort_unstable*)",
    ),
    (
        "D007",
        "no BinaryHeap in result-affecting crates outside graphs::reference (bucket queue is the hot path)",
    ),
    (
        "W001",
        "a waiver no finding consumed (stale waivers are errors)",
    ),
    (
        "W002",
        "a malformed waiver (unknown rule id or missing justification)",
    ),
];

/// Decides the rule [`Scope`] for a workspace-relative path, or `None` if
/// the file is not linted at all (vendored stand-ins, build artifacts,
/// the linter's own deliberately-violating fixture corpus).
pub fn scope_for(rel_path: &str) -> Option<Scope> {
    let p = rel_path.replace('\\', "/");
    if !p.ends_with(".rs") {
        return None;
    }
    if p.starts_with("vendor/") || p.starts_with("target/") || p.contains("/target/") {
        return None;
    }
    if p.starts_with("crates/lint/tests/fixtures/") {
        return None;
    }
    let crate_name = if let Some(rest) = p.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("")
    } else if p.starts_with("src/") || p.starts_with("tests/") || p.starts_with("examples/") {
        "facade"
    } else {
        return None;
    };
    let result_crate = RESULT_CRATES.contains(&crate_name);
    let timing_crate = TIMING_CRATES.contains(&crate_name);
    Some(Scope {
        d001: result_crate,
        d002: !timing_crate,
        d003: !timing_crate,
        d004: crate_name == "congest" && p.starts_with("crates/congest/src/"),
        d005: true,
        d006: true,
        d007: result_crate && p != "crates/graphs/src/reference.rs",
    })
}

/// Lints one file's source under `scope`; `rel_path` is used only for
/// reporting. Returns findings with waivers already applied (suppressed
/// sites removed, unused/malformed waivers reported as `W001`/`W002`).
pub fn lint_source(rel_path: &str, src: &str, scope: Scope) -> Vec<Finding> {
    lint_source_with_stats(rel_path, src, scope).0
}

/// Like [`lint_source`], additionally returning how many waivers
/// suppressed at least one finding (the "consumed" count the reports
/// show — waiver accounting is part of the tool's contract).
pub fn lint_source_with_stats(rel_path: &str, src: &str, scope: Scope) -> (Vec<Finding>, usize) {
    let (tokens, comments) = lex(src);
    let cx = FileCx::new(rel_path, &tokens);
    let mut findings = Vec::new();
    if scope.d001 {
        d001_map_iteration(&cx, &mut findings);
    }
    if scope.d002 {
        d002_wall_clock(&cx, &mut findings);
    }
    if scope.d003 {
        d003_thread_introspection(&cx, &mut findings);
    }
    if scope.d004 {
        d004_floats(&cx, &mut findings);
    }
    if scope.d005 {
        d005_unseeded_rng(&cx, &mut findings);
    }
    if scope.d006 {
        d006_sorts(&cx, &mut findings);
    }
    if scope.d007 {
        d007_binary_heap(&cx, &mut findings);
    }
    apply_waivers(rel_path, &comments, findings)
}

// ---------------------------------------------------------------------------
// Shared per-file context: token stream plus cheap structural indexes.
// ---------------------------------------------------------------------------

struct FileCx<'a> {
    file: &'a str,
    tokens: &'a [Token],
    /// For each token, whether it sits inside a `use …;` statement (D002/
    /// D003/D005 flag call sites, not imports — an unused import is
    /// rustc's problem).
    in_use: Vec<bool>,
    /// For each token, the name of the innermost enclosing `fn`, if any
    /// (D003's `resolved_threads` exemption).
    fn_name: Vec<Option<usize>>,
    /// Interned fn names indexed by `fn_name`.
    fn_names: Vec<String>,
}

impl<'a> FileCx<'a> {
    fn new(file: &'a str, tokens: &'a [Token]) -> Self {
        let mut in_use = vec![false; tokens.len()];
        let mut inside = false;
        for (i, t) in tokens.iter().enumerate() {
            if !inside && t.is_ident("use") {
                inside = true;
            }
            in_use[i] = inside;
            if inside && t.is_punct(';') {
                inside = false;
            }
        }

        // Enclosing-fn tracking: `fn NAME … {` pushes at the next brace;
        // a `;` before the brace (trait method declaration) cancels.
        let mut fn_name = vec![None; tokens.len()];
        let mut fn_names: Vec<String> = Vec::new();
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (name idx, depth)
        let mut pending: Option<usize> = None;
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_ident("fn") {
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == TokenKind::Ident {
                        let idx = fn_names.len();
                        fn_names.push(next.text.clone());
                        pending = Some(idx);
                    }
                }
            } else if t.is_punct(';') {
                pending = None;
            } else if t.is_punct('{') {
                if let Some(idx) = pending.take() {
                    stack.push((idx, depth));
                }
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                while stack.last().is_some_and(|&(_, d)| d >= depth) {
                    stack.pop();
                }
            }
            fn_name[i] = stack.last().map(|&(idx, _)| idx);
            i += 1;
        }

        FileCx {
            file,
            tokens,
            in_use,
            fn_name,
            fn_names,
        }
    }

    fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.fn_name[i].map(|idx| self.fn_names[idx].as_str())
    }

    fn finding(&self, rule: &'static str, i: usize, message: String) -> Finding {
        Finding {
            rule,
            file: self.file.to_string(),
            line: self.tokens[i].line,
            message,
        }
    }
}

// ---------------------------------------------------------------------------
// D001 — unordered map/set iteration.
// ---------------------------------------------------------------------------

/// Iteration methods whose visit order is the hash order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// How a tracked binding holds its map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MapKind {
    /// The binding *is* a `HashMap`/`HashSet`: flag `name.iter()`, never
    /// `name[idx]` (indexing a map is a keyed lookup).
    Direct,
    /// The binding is an indexable container *of* maps (`Vec<HashMap<…>>`):
    /// flag `name[i].iter()`, never `name.iter()` (that walks the Vec).
    Container,
}

/// D001: no iteration over `HashMap`/`HashSet` in result-affecting code.
///
/// Heuristic type tracking, file-local: any `name: HashMap<…>` /
/// `name: HashSet<…>` annotation (let, field, param, struct literal) or
/// `name = HashMap::new()`-style initializer registers `name` as a map
/// binding; `Vec<… HashMap …>` registers an indexable container of maps.
/// Iteration sites over registered bindings are flagged unless they use
/// the collect-and-sort idiom (the iteration statement `collect`s into a
/// `let` binding that is sorted within the next few statements) or carry
/// a waiver.
fn d001_map_iteration(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    let bindings = collect_map_bindings(toks);
    if bindings.is_empty() {
        return;
    }
    let lookup = |name: &str| -> Option<MapKind> {
        bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, kind)| kind)
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `for PAT in [&mut] [self.]name {` — direct iteration of a map.
        if t.is_ident("for") {
            if let Some(f) = match_for_in(cx, i, &lookup) {
                out.push(f);
            }
        }
        if t.kind == TokenKind::Ident {
            if let Some(kind) = lookup(&t.text) {
                // Skip declaration/struct-literal sites (`name: …`), but
                // not paths (`name::…` can't be a value binding anyway).
                let next_is_colon = toks.get(i + 1).is_some_and(|n| n.is_punct(':'));
                if !next_is_colon {
                    if let Some((method_idx, method)) = match_map_method(toks, i, kind) {
                        if !is_collect_and_sort(toks, i, method_idx) {
                            out.push(cx.finding(
                                "D001",
                                method_idx,
                                format!(
                                    "`{}.{}()` iterates a Hash{} in hash order; collect-and-sort, \
                                     switch to an ordered structure, or waive with a justification",
                                    t.text,
                                    method,
                                    if method == "keys" || method == "into_keys" {
                                        "Map/HashSet key set"
                                    } else {
                                        "Map/HashSet"
                                    },
                                ),
                            ));
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Registers map bindings from `name: TYPE` annotations and
/// `name = HashMap::new()`-style initializers.
fn collect_map_bindings(toks: &[Token]) -> Vec<(String, MapKind)> {
    let mut out: Vec<(String, MapKind)> = Vec::new();
    let mut push = |name: &str, kind: MapKind| {
        if !out.iter().any(|(n, _)| n == name) {
            out.push((name.to_string(), kind));
        }
    };
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(kind) = classify_type(toks, i + 2) {
                push(&toks[i].text, kind);
            }
            i += 2;
            continue;
        }
        // `let [mut] name = <map initializer>` without an annotation.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).map(|t| t.kind) == Some(TokenKind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
            {
                if let Some(kind) = classify_type(toks, j + 2) {
                    push(&toks[j].text, kind);
                }
            }
        }
        i += 1;
    }
    out
}

/// Classifies the type (or initializer expression) starting at `start`:
/// `Some(Direct)` if it leads with `HashMap`/`HashSet`, `Some(Container)`
/// if it leads with `Vec`/`VecDeque`/`vec!` whose arguments mention one,
/// `None` otherwise.
fn classify_type(toks: &[Token], start: usize) -> Option<MapKind> {
    let mut i = start;
    // Strip leading `&`, `mut`, lifetimes, and `std::collections::` paths.
    loop {
        match toks.get(i) {
            Some(t) if t.is_punct('&') => i += 1,
            Some(t) if t.kind == TokenKind::Lifetime => i += 1,
            Some(t) if t.is_ident("mut") => i += 1,
            // Path segments before the type head: `std::collections::`.
            Some(t) if t.is_ident("std") || t.is_ident("collections") || t.is_punct(':') => {
                i += 1;
            }
            _ => break,
        }
    }
    let head = toks.get(i)?;
    if head.is_ident("HashMap") || head.is_ident("HashSet") {
        return Some(MapKind::Direct);
    }
    let container = head.is_ident("Vec") || head.is_ident("VecDeque") || head.is_ident("vec");
    if !container {
        return None;
    }
    // Look inside the container's bracket/angle group for a map mention.
    let mut depth = 0isize;
    let mut j = i + 1;
    let mut opened = false;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') || t.is_punct('[') || t.is_punct('(') {
            depth += 1;
            opened = true;
        } else if t.is_punct('>') || t.is_punct(']') || t.is_punct(')') {
            depth -= 1;
            if depth <= 0 {
                break;
            }
        } else if depth > 0 && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            return Some(MapKind::Container);
        } else if !opened && (t.is_punct(';') || t.is_punct('=') || t.is_punct(',')) {
            break;
        }
        if j > i + 64 {
            break; // bounded lookahead: types this long aren't ours
        }
        j += 1;
    }
    None
}

/// Matches `name[idx].method(` (Container) or `name.method(` (Direct)
/// starting at the binding ident `i`; also accepts a `self.`/receiver `.`
/// before `name` (the caller already matched `name` itself). Returns the
/// method-token index and name.
fn match_map_method(toks: &[Token], i: usize, kind: MapKind) -> Option<(usize, &'static str)> {
    let mut j = i + 1;
    match kind {
        MapKind::Container => {
            // Require an index group: `name[…]`.
            if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
                return None;
            }
            let mut depth = 0isize;
            while let Some(t) = toks.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        MapKind::Direct => {
            // An index group on a map is a keyed lookup, not iteration.
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                return None;
            }
        }
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('.')) {
        return None;
    }
    let m = toks.get(j + 1)?;
    if m.kind != TokenKind::Ident || !toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    ITER_METHODS
        .iter()
        .find(|&&name| m.text == name)
        .map(|&name| (j + 1, name))
}

/// Matches `for PAT in [&][mut] [self.]name {` where `name` is a Direct
/// map binding.
fn match_for_in(
    cx: &FileCx<'_>,
    for_idx: usize,
    lookup: &dyn Fn(&str) -> Option<MapKind>,
) -> Option<Finding> {
    let toks = cx.tokens;
    // Find the `in` at pattern depth 0, within a short window.
    let mut depth = 0isize;
    let mut j = for_idx + 1;
    let in_idx = loop {
        let t = toks.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break j;
        } else if t.is_punct('{') || t.is_punct(';') || j > for_idx + 24 {
            return None;
        }
        j += 1;
    };
    let mut k = in_idx + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        k += 1;
    }
    if toks.get(k).is_some_and(|t| t.is_ident("self"))
        && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
    {
        k += 2;
    }
    let name = toks.get(k)?;
    if name.kind != TokenKind::Ident || lookup(&name.text) != Some(MapKind::Direct) {
        return None;
    }
    if !toks.get(k + 1).is_some_and(|t| t.is_punct('{')) {
        return None; // `for x in map.keys()` etc. is the method matcher's job
    }
    Some(cx.finding(
        "D001",
        k,
        format!(
            "`for … in {}` iterates a HashMap/HashSet in hash order; collect-and-sort, \
             switch to an ordered structure, or waive with a justification",
            name.text
        ),
    ))
}

/// The collect-and-sort idiom: the iteration's statement is a
/// `let [mut] NAME … = ….collect…;` and `NAME.sort*` appears within the
/// next few statements. Hash order then never escapes: the collected
/// vector is fully re-ordered before use.
fn is_collect_and_sort(toks: &[Token], bind_idx: usize, method_idx: usize) -> bool {
    // Statement start: nearest `;`/`{`/`}` to the left of the binding.
    let mut s = bind_idx;
    while s > 0 {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    if !toks.get(s).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut n = s + 1;
    if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
        n += 1;
    }
    let target = match toks.get(n) {
        Some(t) if t.kind == TokenKind::Ident => t.text.as_str(),
        _ => return false,
    };
    // Statement end: `;` at bracket depth 0 from the method token on.
    let mut depth = 0isize;
    let mut e = method_idx;
    let mut saw_collect = false;
    while let Some(t) = toks.get(e) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct(';') {
            break;
        } else if t.is_ident("collect") {
            saw_collect = true;
        }
        e += 1;
    }
    if !saw_collect {
        return false;
    }
    // `NAME.sort*` within a bounded window after the statement.
    let mut j = e;
    while let Some(t) = toks.get(j) {
        if j > e + 240 {
            return false;
        }
        if t.is_ident(target)
            && toks.get(j + 1).is_some_and(|p| p.is_punct('.'))
            && toks
                .get(j + 2)
                .is_some_and(|m| m.kind == TokenKind::Ident && m.text.starts_with("sort"))
        {
            return true;
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// D002 / D003 / D004 / D005 — token-pattern rules.
// ---------------------------------------------------------------------------

/// D002: wall-clock reads. Rounds are the only clock results may depend
/// on; `Instant::now`/`SystemTime` belong to the bench/serve crates.
fn d002_wall_clock(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    for i in 0..toks.len() {
        if cx.in_use[i] {
            continue;
        }
        if toks[i].is_ident("Instant") && path_then(toks, i, "now") {
            out.push(cx.finding(
                "D002",
                i,
                "`Instant::now()` reads the wall clock in a result-affecting crate; move timing \
                 to the bench/serve crates or waive with a justification"
                    .to_string(),
            ));
        } else if toks[i].is_ident("SystemTime") {
            out.push(cx.finding(
                "D002",
                i,
                "`SystemTime` reads the wall clock in a result-affecting crate; move timing to \
                 the bench/serve crates or waive with a justification"
                    .to_string(),
            ));
        }
    }
}

/// D003: thread-environment introspection. The engine thread count is
/// resolved in exactly one place (`CongestConfig::resolved_threads`) so
/// results can never depend on the host's core count.
fn d003_thread_introspection(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    for i in 0..toks.len() {
        if cx.in_use[i] {
            continue;
        }
        let hit = if toks[i].is_ident("available_parallelism") {
            Some("`available_parallelism()`")
        } else if toks[i].is_ident("thread") && path_then(toks, i, "current") {
            Some("`thread::current()`")
        } else {
            None
        };
        if let Some(what) = hit {
            if cx.enclosing_fn(i) == Some("resolved_threads") {
                continue; // the one sanctioned resolution point
            }
            out.push(cx.finding(
                "D003",
                i,
                format!(
                    "{what} probes the host's thread environment; route through \
                     `CongestConfig::resolved_threads` or waive with a justification"
                ),
            ));
        }
    }
}

/// D004: floating point in the congest crate. Message payloads and
/// `RunStats` are integer-scaled by design — floats would make message
/// bit-counts and aggregate stats platform/rounding sensitive.
fn d004_floats(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in cx.tokens.iter().enumerate() {
        let hit = match t.kind {
            TokenKind::Ident if t.text == "f32" || t.text == "f64" => true,
            TokenKind::Number if t.text.ends_with("f32") || t.text.ends_with("f64") => true,
            _ => false,
        };
        if hit {
            out.push(cx.finding(
                "D004",
                i,
                format!(
                    "`{}` in the congest crate: payloads and RunStats are integer-scaled by \
                     design (weights carry the scaling); use integers or waive with a \
                     justification",
                    t.text
                ),
            ));
        }
    }
}

/// D005: unseeded randomness. Every RNG in the tree is a `StdRng` seeded
/// from an explicit constant; ambient entropy breaks replayability.
fn d005_unseeded_rng(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    const BANNED: [&str; 5] = [
        "thread_rng",
        "OsRng",
        "from_entropy",
        "getrandom",
        "random_seed",
    ];
    for (i, t) in cx.tokens.iter().enumerate() {
        if cx.in_use[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if BANNED.contains(&t.text.as_str()) {
            out.push(cx.finding(
                "D005",
                i,
                format!(
                    "`{}` draws ambient entropy; every RNG must be an explicitly seeded StdRng \
                     (`StdRng::seed_from_u64(…)`)",
                    t.text
                ),
            ));
        }
    }
}

/// D006: sort hygiene. `sort_by(… partial_cmp …)` silently reorders on
/// NaN and ties; comparator-free `.sort()` is a stable sort where the
/// house idiom is `sort_unstable*` (total orders on plain data — same
/// result, no allocation).
fn d006_sorts(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    let toks = cx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("sort_by") && toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            // Scan the sort_by(...) argument for partial_cmp.
            let mut depth = 0isize;
            let mut j = i + 1;
            while let Some(a) = toks.get(j) {
                if a.is_punct('(') {
                    depth += 1;
                } else if a.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("partial_cmp") {
                    out.push(cx.finding(
                        "D006",
                        j,
                        "`sort_by` with `partial_cmp` is order-unstable on incomparable values; \
                         use integer keys with `sort_unstable_by_key` or `total_cmp`"
                            .to_string(),
                    ));
                    break;
                }
                j += 1;
            }
        }
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|m| m.is_ident("sort"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 3).is_some_and(|p| p.is_punct(')'))
        {
            out.push(
                cx.finding(
                    "D006",
                    i + 1,
                    "comparator-free `.sort()`: the house idiom is `.sort_unstable()` (identical \
                 order for totally ordered elements, no allocation)"
                        .to_string(),
                ),
            );
        }
    }
}

/// D007: `BinaryHeap` in result-affecting code. The SSSP hot path is a
/// monotone bucket queue; the one sanctioned heap is the reference
/// Dijkstra in `crates/graphs/src/reference.rs`, kept as the differential
/// oracle. A heap anywhere else reintroduces the pop-order coupling the
/// bucket queue was proven byte-identical against, and sidesteps the
/// shared distance-sentinel arithmetic (`minex_graphs::dist`). Imports are
/// skipped (D002-style): the construction or type-position site is what
/// gets flagged.
fn d007_binary_heap(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in cx.tokens.iter().enumerate() {
        if cx.in_use[i] {
            continue;
        }
        if t.is_ident("BinaryHeap") {
            out.push(
                cx.finding(
                    "D007",
                    i,
                    "`BinaryHeap` in a result-affecting crate: the sanctioned heap lives in \
                 `graphs::reference` as the differential oracle; use the bucket-queue fast \
                 path (or `dist`-aware arithmetic) or waive with a justification"
                        .to_string(),
                ),
            );
        }
    }
}

/// True if tokens at `i` form `IDENT :: name`.
fn path_then(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

/// A parsed `// minex-lint: allow(Dnnn) <reason>` marker.
#[derive(Debug)]
struct Waiver {
    rule: String,
    line: u32,
    used: bool,
}

const WAIVER_TAG: &str = "minex-lint:";

/// Suppresses findings covered by waivers and appends waiver-accounting
/// findings (`W001` unused, `W002` malformed). Returns the surviving
/// findings and the number of waivers consumed.
fn apply_waivers(
    file: &str,
    comments: &[Comment],
    findings: Vec<Finding>,
) -> (Vec<Finding>, usize) {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut out: Vec<Finding> = Vec::new();
    for c in comments {
        // The marker must *start* the comment (`// minex-lint: …`, leading
        // whitespace aside). Doc comments and prose that merely mention
        // the syntax are not waivers.
        let trimmed = c.text.trim_start();
        let Some(tail) = trimmed.strip_prefix(WAIVER_TAG) else {
            continue;
        };
        let rest = tail.trim();
        match parse_waiver(rest) {
            Ok((rule, _reason)) => waivers.push(Waiver {
                rule,
                line: c.line,
                used: false,
            }),
            Err(why) => out.push(Finding {
                rule: "W002",
                file: file.to_string(),
                line: c.line,
                message: format!(
                    "malformed waiver: {why} (syntax: `minex-lint: allow(Dnnn) <reason>`)"
                ),
            }),
        }
    }
    for f in findings {
        let waived = waivers
            .iter_mut()
            .find(|w| w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line));
        match waived {
            Some(w) => w.used = true,
            None => out.push(f),
        }
    }
    for w in &waivers {
        if !w.used {
            out.push(Finding {
                rule: "W001",
                file: file.to_string(),
                line: w.line,
                message: format!(
                    "unused waiver for {}: nothing on this or the next line triggers the rule — \
                     remove the waiver or re-justify it",
                    w.rule
                ),
            });
        }
    }
    out.sort_unstable_by_key(|f| (f.line, f.rule));
    let used = waivers.iter().filter(|w| w.used).count();
    (out, used)
}

/// Parses `allow(Dnnn) <reason>`; the reason is mandatory — an
/// unjustified waiver is indistinguishable from a silenced bug.
fn parse_waiver(rest: &str) -> Result<(String, String), String> {
    let rest = rest
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(…)`".to_string())?;
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = inner
        .find(')')
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let rule = inner[..close].trim().to_string();
    if !RULES
        .iter()
        .any(|&(id, _)| id == rule && id.starts_with('D'))
    {
        return Err(format!("unknown rule id `{rule}`"));
    }
    let reason = inner[close + 1..].trim();
    if reason.is_empty() {
        return Err(format!("waiver for {rule} has no justification"));
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        lint_source(
            "crates/congest/src/test.rs",
            src,
            Scope {
                d001: true,
                d002: true,
                d003: true,
                d004: true,
                d005: true,
                d006: true,
                d007: true,
            },
        )
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d001_direct_map_iteration_flagged() {
        let src = "fn f() { let mut m: HashMap<u32, u64> = HashMap::new(); \
                   for (k, v) in m.iter() { use_it(k, v); } }";
        assert_eq!(rules_of(src), vec!["D001"]);
    }

    #[test]
    fn d001_for_in_over_map_flagged() {
        let src = "fn f() { let mut groups: std::collections::HashMap<usize, Vec<usize>> = \
                   Default::default(); for (_, nodes) in groups { eat(nodes); } }";
        assert_eq!(rules_of(src), vec!["D001"]);
    }

    #[test]
    fn d001_lookups_are_fine() {
        let src = "fn f(m: &HashMap<u32, u64>) -> bool { m.contains_key(&3) && m[&1] > 0 }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn d001_vec_of_maps_outer_iteration_is_fine_inner_flagged() {
        let src = "struct S { pending: Vec<HashMap<u32, u64>> } impl S { \
                   fn a(&self) -> bool { self.pending.iter().all(HashMap::is_empty) } \
                   fn b(&self, li: usize) -> Option<u32> { \
                   self.pending[li].iter().min_by_key(|x| x.1).map(|x| *x.0) } }";
        assert_eq!(rules_of(src), vec!["D001"]);
    }

    #[test]
    fn d001_collect_and_sort_is_the_sanctioned_idiom() {
        let src = "fn f(m: HashMap<usize, Vec<u32>>) -> Vec<(usize, Vec<u32>)> { \
                   let mut sorted: Vec<_> = m.into_iter().collect(); \
                   sorted.sort_by_key(|(k, _)| *k); sorted }";
        // into_iter is not in ITER_METHODS (IntoIterator is how
        // collect-and-sort starts); into_values/into_keys are, and the
        // idiom still exempts them:
        assert!(rules_of(src).is_empty());
        let src2 = "fn f(m: HashMap<usize, u32>) -> Vec<u32> { \
                    let mut vals: Vec<u32> = m.into_values().collect(); \
                    vals.sort_unstable(); vals }";
        assert!(rules_of(src2).is_empty());
    }

    #[test]
    fn d001_collect_without_sort_is_flagged() {
        let src = "fn f(m: HashMap<usize, u32>) -> Vec<u32> { \
                    let vals: Vec<u32> = m.into_values().collect(); vals }";
        assert_eq!(rules_of(src), vec!["D001"]);
    }

    #[test]
    fn d002_instant_now_flagged_import_ignored() {
        let src = "use std::time::Instant; fn f() { let t = Instant::now(); drop(t); }";
        assert_eq!(rules_of(src), vec!["D002"]);
    }

    #[test]
    fn d003_resolved_threads_is_exempt() {
        let src = "impl C { pub fn resolved_threads(&self) -> usize { \
                   std::thread::available_parallelism().map_or(1, |p| p.get()) } }";
        assert!(rules_of(src).is_empty());
        let src2 = "fn elsewhere() -> usize { \
                    std::thread::available_parallelism().map_or(1, |p| p.get()) }";
        assert_eq!(rules_of(src2), vec!["D003"]);
    }

    #[test]
    fn d004_floats_in_congest() {
        assert_eq!(rules_of("fn f(x: f64) -> f64 { x }"), vec!["D004", "D004"]);
        assert_eq!(rules_of("const K: u64 = 3; fn f() -> u64 { K }").len(), 0);
        assert_eq!(
            rules_of("fn f() { let x = 1.0f64; drop(x); }"),
            vec!["D004"]
        );
    }

    #[test]
    fn d005_ambient_entropy() {
        assert_eq!(
            rules_of("fn f() { let mut rng = thread_rng(); }"),
            vec!["D005"]
        );
        assert!(rules_of("fn f() { let mut rng = StdRng::seed_from_u64(7); }").is_empty());
    }

    #[test]
    fn d006_sort_hygiene() {
        assert_eq!(
            rules_of("fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"),
            // partial_cmp inside sort_by; the f64 params also trip D004
            // in this congest-scoped test context.
            vec!["D004", "D006"]
        );
        assert_eq!(
            rules_of("fn f(v: &mut Vec<u32>) { v.sort(); }"),
            vec!["D006"]
        );
        assert!(rules_of("fn f(v: &mut Vec<u32>) { v.sort_unstable(); }").is_empty());
    }

    #[test]
    fn d007_binary_heap_flagged_import_ignored() {
        let src = "use std::collections::BinaryHeap; \
                   fn f() { let mut h: BinaryHeap<u64> = BinaryHeap::new(); h.push(3); }";
        assert_eq!(rules_of(src), vec!["D007", "D007"]);
        assert!(rules_of(
            "fn f() { let mut q = std::collections::VecDeque::new(); q.push_back(1); }"
        )
        .is_empty());
    }

    #[test]
    fn waivers_suppress_and_account() {
        let src = "fn f() { let m: HashMap<u32, u64> = HashMap::new();\n\
                   // minex-lint: allow(D001) min over a total-order key is order-insensitive\n\
                   let x = m.values().min(); drop(x); }";
        assert!(rules_of(src).is_empty());
        let unused = "// minex-lint: allow(D002) nothing here reads a clock\nfn f() {}";
        assert_eq!(rules_of(unused), vec!["W001"]);
        let malformed = "// minex-lint: allow(D001)\nfn f() {}";
        assert_eq!(rules_of(malformed), vec!["W002"]);
        let unknown = "// minex-lint: allow(D999) who knows\nfn f() {}";
        assert_eq!(rules_of(unknown), vec!["W002"]);
    }

    #[test]
    fn scope_routing() {
        assert!(scope_for("vendor/rand/src/lib.rs").is_none());
        assert!(scope_for("crates/lint/tests/fixtures/d001_flag.rs").is_none());
        assert!(scope_for("README.md").is_none());
        let congest = scope_for("crates/congest/src/runtime.rs").unwrap();
        assert!(congest.d001 && congest.d004 && congest.d007);
        let bench = scope_for("crates/bench/src/lib.rs").unwrap();
        assert!(!bench.d001 && !bench.d002 && !bench.d003 && bench.d005 && bench.d006);
        assert!(!bench.d007);
        let facade = scope_for("tests/smoke.rs").unwrap();
        assert!(!facade.d001 && facade.d002);
        let lint = scope_for("crates/lint/src/rules.rs").unwrap();
        assert!(!lint.d001 && lint.d002 && !lint.d004);
        // The one sanctioned heap: the reference Dijkstra oracle.
        let reference = scope_for("crates/graphs/src/reference.rs").unwrap();
        assert!(reference.d001 && !reference.d007);
        let traversal = scope_for("crates/graphs/src/traversal.rs").unwrap();
        assert!(traversal.d007);
    }
}

//! Human and `--json` machine output for lint results.
//!
//! The JSON is hand-rolled (the crate is dependency-free by charter);
//! the escaping covers everything rule messages can contain.

use crate::rules::Finding;

/// The outcome of one full scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Findings that survived waiver application, in path order.
    pub findings: Vec<Finding>,
    /// Number of files the scan actually linted.
    pub files_scanned: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_used: usize,
}

impl ScanResult {
    /// True when nothing (including waiver accounting) fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings count per rule id, in rule-id order.
    pub fn per_rule(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.findings {
            match counts.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.rule, 1)),
            }
        }
        counts.sort_unstable_by_key(|&(r, _)| r);
        counts
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {} {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "minex-lint: {} file(s) scanned, {} finding(s), {} waiver(s) consumed",
            self.files_scanned,
            self.findings.len(),
            self.waivers_used
        ));
        if self.is_clean() {
            out.push_str(" — clean\n");
        } else {
            out.push('\n');
            for (rule, n) in self.per_rule() {
                out.push_str(&format!("  {rule}: {n}\n"));
            }
        }
        out
    }

    /// Renders the single-line machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push_str(&format!(
            ",\"files_scanned\":{},\"waivers_used\":{},\"findings\":[",
            self.files_scanned, self.waivers_used
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("],\"per_rule\":{");
        for (i, (rule, n)) in self.per_rule().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(rule), n));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shape() {
        let res = ScanResult {
            findings: vec![Finding {
                rule: "D001",
                file: "a\\b\"c.rs".to_string(),
                line: 7,
                message: "line\nbreak".to_string(),
            }],
            files_scanned: 3,
            waivers_used: 1,
        };
        let json = res.render_json();
        assert!(json.starts_with("{\"clean\":false"));
        assert!(json.contains("\"a\\\\b\\\"c.rs\""));
        assert!(json.contains("\"line\\nbreak\""));
        assert!(json.contains("\"per_rule\":{\"D001\":1}"));
    }

    #[test]
    fn clean_human_report() {
        let res = ScanResult {
            findings: vec![],
            files_scanned: 42,
            waivers_used: 4,
        };
        assert!(res.render_human().contains("clean"));
        assert!(res.render_json().starts_with("{\"clean\":true"));
    }
}

//! The `minex-lint` command-line driver.
//!
//! ```text
//! minex-lint check [--json] [--root <dir>]   lint the workspace tree
//! minex-lint rules                           list every rule id
//! ```
//!
//! Exit codes: `0` clean, `1` findings (including unused/malformed
//! waivers), `2` usage or I/O error — so `scripts/check-lint.sh` and the
//! CI `lint` job can gate on the status alone.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use minex_lint::{scan_tree, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for (id, summary) in RULES {
                println!("{id}  {summary}");
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("minex-lint: unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: minex-lint check [--json] [--root <dir>]");
    eprintln!("       minex-lint rules");
}

fn check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("minex-lint: --root needs a directory");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("minex-lint: unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "minex-lint: no workspace Cargo.toml found walking up from the current \
                     directory; pass --root"
                );
                return ExitCode::from(2);
            }
        },
    };
    match scan_tree(&root) {
        Ok(result) => {
            if json {
                println!("{}", result.render_json());
            } else {
                print!("{}", result.render_human());
            }
            if result.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("minex-lint: scan failed: {err}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]` section.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(body) = std::fs::read_to_string(&manifest) {
                if body.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<&Path> = dir.parent();
    match parent {
        Some(p) => {
            let p = p.to_path_buf();
            *dir = p;
            true
        }
        None => false,
    }
}

//! `minex-lint` — the determinism-contract static-analysis pass.
//!
//! The minex workspace's central invariant is that every result is
//! byte-identical across the sequential and parallel CONGEST engines and
//! any `MINEX_THREADS`. The dynamic checkers (golden CSVs, trace
//! byte-compares, engine-equivalence proptests) catch violations after
//! they run; this crate catches the classic sources *statically*, at the
//! source level: unordered `HashMap`/`HashSet` iteration, wall-clock
//! reads, thread-environment probes, floating point on the message
//! plane, ambient randomness, and non-total-order sorts.
//!
//! The tool is dependency-free in the same spirit as the hand-rolled
//! JSON layer in `minex-algo`'s wire module: a small Rust [`lexer`] plus
//! [`rules`] drivers walking the workspace sources, with per-site
//! waivers (`// minex-lint: allow(Dnnn) <reason>`) whose use is itself
//! accounted — an unused waiver is an error.
//!
//! Run it with `cargo run -p minex-lint -- check` (human output) or
//! `… -- check --json` (machine output); the library surface below is
//! what the fixture tests drive directly.
//!
//! ```
//! use minex_lint::{lint_source, scope_for};
//!
//! let scope = scope_for("crates/congest/src/example.rs").expect("in scope");
//! let findings = lint_source(
//!     "crates/congest/src/example.rs",
//!     "fn f() { let t = std::time::Instant::now(); }",
//!     scope,
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D002");
//! ```

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::ScanResult;
pub use rules::{lint_source, lint_source_with_stats, scope_for, Finding, Scope, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Scans the workspace tree rooted at `root` (the directory holding the
/// workspace `Cargo.toml`) and returns the combined result. Which files
/// are linted, and under which rules, is decided by [`scope_for`].
///
/// # Errors
///
/// Propagates I/O errors from directory walks and file reads; a missing
/// optional top-level directory (e.g. `examples/`) is not an error.
pub fn scan_tree(root: &Path) -> io::Result<ScanResult> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort_unstable();
    let mut result = ScanResult::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        let (findings, used) = lint_source_with_stats(&rel, &src, scope);
        result.waivers_used += used;
        result.findings.extend(findings);
        result.files_scanned += 1;
    }
    result
        .findings
        .sort_unstable_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(result)
}

/// Recursively collects `.rs` files under `dir` (skipping `target`).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

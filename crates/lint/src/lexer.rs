//! A small Rust lexer: just enough token structure for the rule drivers.
//!
//! The lexer's one job is to make the rules immune to the classic grep
//! failure modes — patterns inside string literals, inside comments, or
//! glued to other identifiers. It produces a comment-free token stream
//! (identifiers, punctuation, literals) plus a side list of comments, the
//! latter solely so the waiver parser can find
//! `// minex-lint: allow(Dnnn) <reason>` markers.
//!
//! It is *not* a full lexer: numeric literal grammar is approximate and
//! multi-character operators arrive as single-character punctuation
//! tokens (`::` is two `:` tokens). The rules are written against that
//! shape. The tricky cases that would otherwise cause false positives are
//! handled properly: raw strings (`r#"…"#`), byte strings, nested block
//! comments, raw identifiers (`r#fn`), and the lifetime-versus-char
//! ambiguity of `'`.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `for`, …).
    Ident,
    /// Single punctuation character (`.`, `:`, `(`, `<`, …).
    Punct,
    /// Numeric literal, text preserved (suffixes like `1.0f64` matter).
    Number,
    /// String, raw string, byte string, or char/byte-char literal.
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text for idents and numbers; empty for literals.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// A comment (line or block) with the 1-indexed line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body, delimiters stripped.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: u32,
}

/// Lexes `src` into a comment-free token stream plus the comment list.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                comments.push(Comment {
                    text: src[start..end].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start_line = line;
                i = skip_raw_or_byte(b, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'r' if b.get(i + 1) == Some(&b'#') && is_ident_start(b.get(i + 2).copied()) => {
                // Raw identifier r#fn: emit the bare name.
                let start = i + 2;
                i = start;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A char literal closes with a
                // quote shortly after; a lifetime is `'` + identifier.
                if b.get(i + 1) == Some(&b'\\') {
                    i = skip_char_literal(b, i);
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                } else if is_ident_start(b.get(i + 1).copied()) {
                    let mut j = i + 2;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if b.get(j) == Some(&b'\'') {
                        // 'a' — a char literal.
                        i = j + 1;
                        tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: String::new(),
                            line,
                        });
                    } else {
                        // 'ident — a lifetime.
                        tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: src[i + 1..j].to_string(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // '(' or similar after a quote: non-ident char literal
                    // like '\u{..}' handled above; here e.g. '(' … ')'.
                    i = skip_char_literal(b, i);
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
            }
            c if is_ident_start(Some(c)) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Approximate numeric grammar: digits, `_`, `.` (not `..`),
                // type suffixes, hex/oct/bin prefixes, exponents.
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.'
                            && b.get(i + 1) != Some(&b'.')
                            && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (tokens, comments)
}

fn is_ident_start(c: Option<u8>) -> bool {
    matches!(c, Some(c) if c == b'_' || c.is_ascii_alphabetic())
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// True at `r"`, `r#"`, `b"`, `br"`, `br#"`, `b'` starts.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => {
            let mut j = i + 1;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            j > i + 1 && b.get(j) == Some(&b'"') || b.get(i + 1) == Some(&b'"')
        }
        b'b' => match b.get(i + 1) {
            Some(&b'"') | Some(&b'\'') => true,
            Some(&b'r') => {
                let mut j = i + 2;
                while b.get(j) == Some(&b'#') {
                    j += 1;
                }
                b.get(j) == Some(&b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Skips a `"…"` string starting at `b[i] == '"'`, returning the index
/// one past the closing quote and counting newlines into `line`.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips raw/byte strings and byte-char literals from their prefix.
fn skip_raw_or_byte(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        return skip_char_literal(b, i);
    }
    if i < b.len() && b[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&b'"'), "raw string must open with a quote");
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Skips a char (or byte-char) literal starting at the opening `'`.
fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_patterns() {
        let src = r##"
            let s = "thread_rng inside a string";
            // thread_rng inside a comment
            /* Instant::now inside /* a nested */ block */
            let r = r#"SystemTime raw "quoted" body"#;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "thread_rng"));
        assert!(!ids.iter().any(|t| t == "Instant"));
        assert!(!ids.iter().any(|t| t == "SystemTime"));
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert!(comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let (tokens, _) = lex(src);
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_idents_and_byte_strings() {
        let src = "let r#fn = b\"bytes\"; let c = b'x';";
        let (tokens, _) = lex(src);
        assert!(tokens.iter().any(|t| t.is_ident("fn")));
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let (tokens, _) = lex(src);
        let b_tok = tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn float_suffixes_survive_in_number_text() {
        let src = "let x = 1.0f64 + 2f32;";
        let (tokens, _) = lex(src);
        let nums: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1.0f64", "2f32"]);
    }
}

//! Differential property battery: the CSR [`Graph`] against the nested-Vec
//! [`AdjListGraph`] reference on random edge lists.
//!
//! The reference implementation (`minex_graphs::reference`) is the seed's
//! adjacency-list representation, kept in-tree as an executable
//! specification. Every accessor the rest of the workspace consumes —
//! `n`/`m`/`degree`/`neighbors`/`edge_between`/`has_edge`/`endpoints`/
//! `induced_subgraph` — must agree between the two on arbitrary inputs,
//! including duplicate-heavy and out-of-order edge lists, and the two
//! streaming constructors must agree with the buffered builder.

use proptest::prelude::*;

use minex_graphs::reference::AdjListGraph;
use minex_graphs::{Graph, GraphError, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random edge list over `n` nodes: `raw` pairs drawn uniformly, so it
/// contains duplicates (both orders) and self-loop candidates get skipped
/// at generation. Roughly `dup_factor` of the pairs repeat earlier ones.
fn random_edges(n: usize, raw: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(raw);
    if n < 2 {
        // A simple graph on < 2 nodes has no edges.
        return edges;
    }
    while edges.len() < raw {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        edges.push((u, v));
        // Occasionally re-push an earlier edge, sometimes flipped, so dedup
        // and canonicalization are always exercised.
        if !edges.is_empty() && rng.random_bool(0.3) {
            let i = rng.random_range(0..edges.len());
            let (a, b) = edges[i];
            edges.push(if rng.random_bool(0.5) { (a, b) } else { (b, a) });
        }
    }
    edges
}

/// Builds both representations from the same list; they accept/reject in
/// lockstep by construction (inputs here are always valid).
fn build_both(n: usize, edges: &[(NodeId, NodeId)]) -> (Graph, AdjListGraph) {
    let g = Graph::from_edges(n, edges.iter().copied()).expect("valid edges");
    let r = AdjListGraph::from_edges(n, edges.iter().copied()).expect("valid edges");
    (g, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counts_and_degrees_agree(n in 1usize..80, raw in 0usize..300, seed in 0u64..10_000) {
        let edges = random_edges(n, raw, seed);
        let (g, r) = build_both(n, &edges);
        prop_assert_eq!(g.n(), r.n());
        prop_assert_eq!(g.m(), r.m());
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
        for v in 0..n {
            prop_assert_eq!(g.degree(v), r.degree(v), "degree({v})");
        }
    }

    #[test]
    fn neighbors_agree_sorted(n in 1usize..60, raw in 0usize..250, seed in 0u64..10_000) {
        let edges = random_edges(n, raw, seed);
        let (g, r) = build_both(n, &edges);
        for v in 0..n {
            let csr: Vec<(NodeId, usize)> = g.neighbors(v).collect();
            let reference: Vec<(NodeId, usize)> = r.neighbors(v).collect();
            prop_assert_eq!(&csr, &reference, "neighbors({v})");
            // The slice accessors are the same row again.
            let slices: Vec<NodeId> =
                g.neighbor_targets(v).iter().map(|&w| w as NodeId).collect();
            let iter_targets: Vec<NodeId> = csr.iter().map(|&(w, _)| w).collect();
            prop_assert_eq!(slices, iter_targets);
            prop_assert_eq!(g.neighbor_edge_ids(v).len(), g.degree(v));
        }
    }

    #[test]
    fn edge_queries_agree(n in 2usize..50, raw in 0usize..200, seed in 0u64..10_000) {
        let edges = random_edges(n, raw, seed);
        let (g, r) = build_both(n, &edges);
        // Exhaustive pair check, including out-of-range probes.
        for u in 0..n + 2 {
            for v in 0..n + 2 {
                prop_assert_eq!(g.edge_between(u, v), r.edge_between(u, v), "({u},{v})");
                prop_assert_eq!(g.has_edge(u, v), r.has_edge(u, v));
            }
        }
        for e in 0..g.m() {
            prop_assert_eq!(g.endpoints(e), r.endpoints(e), "endpoints({e})");
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(g.other_endpoint(e, u), v);
            prop_assert_eq!(g.other_endpoint(e, v), u);
        }
    }

    #[test]
    fn induced_subgraphs_agree(n in 1usize..50, raw in 0usize..200, seed in 0u64..10_000) {
        let edges = random_edges(n, raw, seed);
        let (g, r) = build_both(n, &edges);
        // Keep a random subset, with duplicates in the keep list.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut keep: Vec<NodeId> = (0..n).filter(|_| rng.random_bool(0.6)).collect();
        if !keep.is_empty() && rng.random_bool(0.5) {
            let i = rng.random_range(0..keep.len());
            keep.push(keep[i]);
        }
        let (gs, gmap) = g.induced_subgraph(&keep);
        let (rs, rmap) = r.induced_subgraph(&keep);
        prop_assert_eq!(&gmap, &rmap);
        prop_assert_eq!(gs.n(), rs.n());
        prop_assert_eq!(gs.m(), rs.m());
        for v in 0..gs.n() {
            let a: Vec<(NodeId, usize)> = gs.neighbors(v).collect();
            let b: Vec<(NodeId, usize)> = rs.neighbors(v).collect();
            prop_assert_eq!(a, b, "sub-neighbors({v})");
        }
        for e in 0..gs.m() {
            prop_assert_eq!(gs.endpoints(e), rs.endpoints(e));
        }
    }

    #[test]
    fn from_edges_of_edges_is_identity(n in 1usize..60, raw in 0usize..250, seed in 0u64..10_000) {
        let edges = random_edges(n, raw, seed);
        let g = Graph::from_edges(n, edges).expect("valid edges");
        // Round-trip: rebuilding from the canonical edge iterator reproduces
        // the graph exactly (ids, rows, everything — `Graph: Eq`).
        let round = Graph::from_edges(g.n(), g.edges().map(|(_, u, v)| (u, v)))
            .expect("canonical edges are valid");
        prop_assert_eq!(&g, &round);
        // And the canonical edge list is sorted and duplicate-free.
        let listed: Vec<(NodeId, NodeId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        let mut sorted = listed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(listed, sorted);
    }

    #[test]
    fn streaming_constructors_agree_with_builder(
        n in 1usize..60,
        raw in 0usize..250,
        seed in 0u64..10_000,
    ) {
        let edges = random_edges(n, raw, seed);
        let buffered = Graph::from_edges(n, edges.iter().copied()).expect("valid edges");
        // Deduplicate for the streaming paths (they reject duplicates).
        let mut unique: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        unique.sort_unstable();
        unique.dedup();
        let sorted = Graph::from_sorted_edge_stream(n, || unique.iter().copied())
            .expect("sorted unique edges");
        prop_assert_eq!(&buffered, &sorted);
        // Any-order streaming: shuffle and randomly flip endpoints.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut shuffled = unique.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
            if rng.random_bool(0.5) {
                let (u, v) = shuffled[i];
                shuffled[i] = (v, u);
            }
        }
        let streamed = Graph::from_edge_stream(n, || shuffled.iter().copied())
            .expect("unique edges in any order");
        prop_assert_eq!(&buffered, &streamed);
    }

    #[test]
    fn constructors_reject_in_lockstep(n in 1usize..30, raw in 1usize..60, seed in 0u64..10_000) {
        // Corrupt a valid list with either a self-loop or an out-of-range
        // endpoint; both representations must return the identical error.
        let mut edges = random_edges(n, raw, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD);
        let at = rng.random_range(0..=edges.len());
        let bad = if rng.random_bool(0.5) {
            let v = rng.random_range(0..n);
            (v, v)
        } else {
            (rng.random_range(0..n), n + rng.random_range(0..5))
        };
        edges.insert(at.min(edges.len()), bad);
        let g = Graph::from_edges(n, edges.iter().copied());
        let r = AdjListGraph::from_edges(n, edges.iter().copied());
        prop_assert!(g.is_err());
        prop_assert_eq!(g.unwrap_err(), r.unwrap_err());
    }
}

/// Duplicate detection in the unsorted streaming path reports the canonical
/// pair no matter which orders the two copies used.
#[test]
fn stream_duplicate_detection_is_order_insensitive() {
    for dup in [
        [(3usize, 1usize), (1, 3)],
        [(1, 3), (3, 1)],
        [(3, 1), (3, 1)],
    ] {
        let mut edges = vec![(0, 1), (2, 3)];
        edges.extend(dup);
        let err = Graph::from_edge_stream(4, || edges.iter().copied()).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 1, v: 3 }, "{dup:?}");
    }
}

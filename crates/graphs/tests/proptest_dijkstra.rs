//! Differential property battery: the bucket-queue [`traversal::dijkstra`]
//! against the preserved `BinaryHeap` oracle
//! ([`reference::dijkstra_heap`]) and against a naive Bellman–Ford
//! relaxation, on random graphs across three weight regimes:
//!
//! * small positive weights — the bucket fast path, with dense distance
//!   ties so the id-order tie-break is exercised hard;
//! * zero-weight edges — the documented heap fallback;
//! * overflow-adjacent weights near `u64::MAX` — the other fallback, plus
//!   the sentinel contract (saturated real paths clamp to `DIST_MAX` and
//!   never collide with `UNREACHED`).
//!
//! `dist` *and* `parent` must agree byte for byte between bucket and heap —
//! that is the contract that let the rewrite land behind an unchanged API.

use proptest::prelude::*;

use minex_graphs::dist::{dist_add, DIST_MAX, UNREACHED};
use minex_graphs::reference::dijkstra_heap;
use minex_graphs::{traversal, Graph, NodeId, WeightedGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random simple graph on `n` nodes from `raw` uniform pairs (self-loops
/// skipped, duplicates deduplicated by the constructor).
fn random_graph(n: usize, raw: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(raw);
    if n >= 2 {
        for _ in 0..raw {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).expect("valid edges")
}

/// Naive O(n·m) Bellman–Ford on the sentinel arithmetic: the
/// implementation-free distance oracle both Dijkstra variants must match.
fn naive_sssp(wg: &WeightedGraph, src: NodeId) -> Vec<u64> {
    let g = wg.graph();
    let mut dist = vec![UNREACHED; g.n()];
    dist[src] = 0;
    for _ in 0..g.n() {
        let mut changed = false;
        for (e, u, v) in g.edges() {
            for (a, b) in [(u, v), (v, u)] {
                let cand = dist_add(dist[a], wg.weight(e));
                if cand < dist[b] {
                    dist[b] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Parent pointers must realize the reported distances edge by edge.
fn assert_tree_consistent(wg: &WeightedGraph, src: NodeId, r: &traversal::DijkstraResult) {
    for v in 0..wg.graph().n() {
        match r.parent[v] {
            Some(p) => {
                let e = wg.graph().edge_between(p, v).expect("tree edge exists");
                assert_eq!(dist_add(r.dist[p], wg.weight(e)), r.dist[v], "node {v}");
            }
            None => assert!(v == src || r.dist[v] == UNREACHED || r.dist[v] == 0),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bucket_matches_heap_on_small_weights(
        n in 2usize..60,
        raw in 1usize..220,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, raw, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x17);
        // Weights in 1..=16: bucket path, dense ties.
        let weights: Vec<u64> = (0..g.m()).map(|_| rng.random_range(1..=16)).collect();
        let wg = WeightedGraph::new(g, weights);
        let src = rng.random_range(0..n);
        let b = traversal::dijkstra(&wg, src);
        let h = dijkstra_heap(&wg, src);
        prop_assert_eq!(&b.dist, &h.dist);
        prop_assert_eq!(&b.parent, &h.parent);
        prop_assert_eq!(&b.dist, &naive_sssp(&wg, src));
        assert_tree_consistent(&wg, src, &b);
    }

    #[test]
    fn zero_weight_edges_agree_with_naive(
        n in 2usize..50,
        raw in 1usize..180,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, raw, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2A);
        // ~25% zero weights: exercises the heap fallback and its 0-cost
        // relaxations.
        let weights: Vec<u64> = (0..g.m())
            .map(|_| if rng.random_bool(0.25) { 0 } else { rng.random_range(1..=8) })
            .collect();
        let wg = WeightedGraph::new(g, weights);
        let src = rng.random_range(0..n);
        let b = traversal::dijkstra(&wg, src);
        let h = dijkstra_heap(&wg, src);
        prop_assert_eq!(&b.dist, &h.dist);
        prop_assert_eq!(&b.parent, &h.parent);
        prop_assert_eq!(&b.dist, &naive_sssp(&wg, src));
    }

    #[test]
    fn overflow_adjacent_weights_respect_sentinel(
        n in 2usize..40,
        raw in 1usize..120,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, raw, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3C);
        // Mix huge and small weights so multi-hop paths saturate.
        let weights: Vec<u64> = (0..g.m())
            .map(|_| {
                if rng.random_bool(0.5) {
                    u64::MAX - rng.random_range(0..4)
                } else {
                    rng.random_range(1..=4)
                }
            })
            .collect();
        let wg = WeightedGraph::new(g, weights);
        let src = rng.random_range(0..n);
        let b = traversal::dijkstra(&wg, src);
        let h = dijkstra_heap(&wg, src);
        prop_assert_eq!(&b.dist, &h.dist);
        prop_assert_eq!(&b.parent, &h.parent);
        prop_assert_eq!(&b.dist, &naive_sssp(&wg, src));
        // Sentinel contract: every node BFS can reach has a finite (≤
        // DIST_MAX) distance — saturation never manufactures "unreached".
        let bfs = traversal::bfs(wg.graph(), src);
        for v in 0..n {
            prop_assert_eq!(bfs.reached(v), b.reached(v), "node {}", v);
            if b.reached(v) {
                prop_assert!(b.dist[v] <= DIST_MAX);
            }
        }
    }
}

//! Property tests over the generators: every family upholds its defining
//! invariants for arbitrary parameters.

use proptest::prelude::*;

use minex_graphs::generators;
use minex_graphs::minor::{
    is_forest, is_k4_minor_free, satisfies_genus_edge_bound, satisfies_planar_edge_bound,
};
use minex_graphs::traversal::{diameter_double_sweep, diameter_exact, is_connected};
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grids_are_planar_and_connected(rows in 1usize..12, cols in 1usize..12) {
        let g = generators::grid(rows, cols);
        prop_assert!(is_connected(&g));
        prop_assert!(satisfies_planar_edge_bound(&g));
        prop_assert_eq!(g.n(), rows * cols);
        prop_assert_eq!(g.m(), rows * (cols - 1) + cols * (rows - 1));
    }

    #[test]
    fn embedded_grids_have_genus_zero(rows in 2usize..8, cols in 2usize..8) {
        let (g, emb) = generators::grid_embedded(rows, cols);
        let rot = emb.rotation_system(&g);
        prop_assert_eq!(rot.genus(&g), Some(0));
        let (tg, temb) = generators::triangulated_grid_embedded(rows, cols);
        let trot = temb.rotation_system(&tg);
        prop_assert_eq!(trot.genus(&tg), Some(0));
    }

    #[test]
    fn toroidal_grids_have_genus_one(rows in 3usize..8, cols in 3usize..8) {
        let (g, rot) = generators::toroidal_grid_with_rotation(rows, cols);
        prop_assert_eq!(rot.genus(&g), Some(1));
        prop_assert!(satisfies_genus_edge_bound(&g, 1));
    }

    #[test]
    fn random_trees_are_forests(n in 1usize..200, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        prop_assert!(is_forest(&g));
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn apollonian_networks_are_maximal_planar(n in 3usize..100, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::apollonian(n, &mut rng);
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.m(), 3 * g.n() - 6);
        prop_assert!(satisfies_planar_edge_bound(&g));
    }

    #[test]
    fn series_parallel_always_k4_free(n in 2usize..120, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::series_parallel(n, &mut rng);
        prop_assert!(is_k4_minor_free(&g));
    }

    #[test]
    fn two_trees_are_k4_free_but_three_trees_are_not(n in 6usize..60, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g2, _) = generators::k_tree(n, 2, &mut rng);
        prop_assert!(is_k4_minor_free(&g2));
        let (g3, _) = generators::k_tree(n, 3, &mut rng);
        prop_assert!(!is_k4_minor_free(&g3));
    }

    #[test]
    fn lower_bound_family_has_log_diameter(p in 2usize..12, l in 2usize..16) {
        let (g, layout) = generators::lower_bound_family(p, l);
        prop_assert!(is_connected(&g));
        let d = diameter_double_sweep(&g).unwrap();
        // The binary tree over columns caps the diameter logarithmically.
        let log_l = (usize::BITS - l.next_power_of_two().leading_zeros()) as usize;
        prop_assert!(d <= 2 * log_l + 4, "d={d} log_l={log_l}");
        prop_assert_eq!(layout.paths.len(), p);
    }

    #[test]
    fn vortex_depth_always_respected(
        cycle_len in 4usize..30,
        internal in 1usize..10,
        depth in 1usize..4,
        seed in 0u64..200,
    ) {
        let g = generators::cycle(cycle_len);
        let cycle: Vec<usize> = (0..cycle_len).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok((vg, rec)) = generators::add_vortex(&g, &cycle, internal, depth, &mut rng) {
            prop_assert!(rec.max_coverage() <= depth);
            prop_assert!(is_connected(&vg));
            prop_assert_eq!(vg.n(), cycle_len + internal);
        }
    }

    #[test]
    fn apex_never_increases_diameter(rows in 2usize..7, cols in 2usize..7, stride in 1usize..5) {
        let base = generators::grid(rows, cols);
        let (g, _) = generators::apex_grid(rows, cols, stride);
        let before = diameter_exact(&base).unwrap();
        let after = diameter_exact(&g).unwrap();
        prop_assert!(after <= before + 2);
    }

    #[test]
    fn degree_sum_is_2m_across_families(n in 4usize..60, seed in 0u64..500) {
        // The handshake invariant, checked against the CSR rows directly:
        // summing `degree(v)` over the flat offsets must give exactly `2m`
        // for every family the repo ships.
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 2 + n % 7;
        let graphs = vec![
            generators::path(n),
            generators::cycle(n.max(3)),
            generators::star(n),
            generators::wheel(n.max(4)),
            generators::complete(2 + n % 9),
            generators::binary_tree(n),
            generators::spider(1 + n % 5, 1 + n % 4),
            generators::comb(1 + n % 8, n % 5),
            generators::grid(side, side),
            generators::triangulated_grid(side, side),
            generators::cylinder(side, side.max(3)),
            generators::outerplanar_fan(n.max(3)),
            generators::hypercube(2 + (n % 4) as u32),
            generators::toroidal_grid(side.max(3), side.max(3)),
            generators::random_tree(n, &mut rng),
            generators::series_parallel(n.max(2), &mut rng),
            generators::k_tree(n.max(4), 3, &mut rng).0,
            generators::apollonian(n.max(3), &mut rng).0,
        ];
        for g in graphs {
            let by_rows: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(by_rows, 2 * g.m());
            prop_assert_eq!(g.degree_sum(), 2 * g.m());
        }
    }

    #[test]
    fn planar_families_satisfy_edge_bound(rows in 2usize..14, cols in 2usize..14, seed in 0u64..200) {
        // m ≤ 3n - 6 for every planar generator, at arbitrary sizes.
        let mut rng = StdRng::seed_from_u64(seed);
        let planar = vec![
            generators::grid(rows, cols),
            generators::triangulated_grid(rows, cols),
            generators::cylinder(rows, cols.max(3)),
            generators::outerplanar_fan(rows * cols),
            generators::apollonian(rows * cols, &mut rng).0,
            generators::random_triangulated_grid(rows, cols, &mut rng).0,
            generators::comb(rows, cols),
        ];
        for g in planar {
            prop_assert!(satisfies_planar_edge_bound(&g), "n={} m={}", g.n(), g.m());
        }
    }

    #[test]
    fn counting_formulas_hold(teeth in 1usize..20, len in 0usize..10, n in 4usize..80) {
        // Node/edge counts match the closed forms documented on each
        // generator — the invariant the streaming CSR constructors must
        // preserve exactly.
        let c = generators::comb(teeth, len);
        prop_assert_eq!(c.n(), teeth * (1 + len));
        prop_assert_eq!(c.m(), c.n() - 1); // combs are trees
        let w = generators::wheel(n);
        prop_assert_eq!((w.n(), w.m()), (n, 2 * (n - 1)));
        prop_assert_eq!(w.degree(n - 1), n - 1);
        let g = generators::grid(teeth, n);
        prop_assert_eq!(g.n(), teeth * n);
        prop_assert_eq!(g.m(), teeth * (n - 1) + n * (teeth - 1));
        let t = generators::triangulated_grid(teeth, n);
        prop_assert_eq!(t.m(), g.m() + (teeth - 1) * (n - 1));
        let s = generators::spider(teeth, len);
        prop_assert_eq!((s.n(), s.m()), (1 + teeth * len, teeth * len));
    }

    #[test]
    fn k_tree_edge_count_formula(n in 5usize..120, k in 1usize..5, seed in 0u64..300) {
        prop_assume!(n > k);
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, rec) = generators::k_tree(n, k, &mut rng);
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), k * (k + 1) / 2 + k * (n - k - 1));
        prop_assert_eq!(rec.attach_clique.len(), n - k - 1);
        prop_assert!(is_connected(&g));
        // Every attachment clique really is a clique of earlier nodes.
        for (i, clique) in rec.attach_clique.iter().enumerate() {
            let v = i + k + 1;
            prop_assert_eq!(clique.len(), k);
            for &u in clique {
                prop_assert!(u < v);
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn clique_sum_preserves_connectivity(bags in 1usize..12, seed in 0u64..300) {
        let comps = vec![
            generators::cycle(5),
            generators::complete(4),
            generators::triangulated_grid(3, 3),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, rec) = generators::random_clique_sum(&comps, bags, 3, &mut rng);
        prop_assert!(is_connected(&g));
        prop_assert_eq!(rec.bags.len(), bags);
        prop_assert_eq!(rec.links.len(), bags - 1);
        // Bags cover all nodes.
        let mut covered = vec![false; g.n()];
        for bag in &rec.bags {
            for &v in bag {
                covered[v] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
    }
}

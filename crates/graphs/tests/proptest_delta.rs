//! Churn leg of the differential property battery: a [`DeltaGraph`]
//! overlay driven by random mutation sequences against the nested-Vec
//! [`AdjListGraph`] reference rebuilt from scratch after every step batch.
//!
//! The model is a plain sorted edge set. After a random mix of valid
//! inserts, valid deletes, and *invalid* operations (duplicate inserts,
//! deletes of missing edges — which must error without mutating anything),
//! every accessor the workspace consumes through [`GraphView`] must agree
//! with the reference built from the model: `n`/`m`/`degree`/
//! `neighbor_targets`/`neighbor_edge_ids`/`endpoints`/`edge_between`/
//! `has_edge`. Compaction (explicit or threshold-triggered) must be
//! invisible to accessors, and a [`DeltaGraph::snapshot`] must equal
//! `Graph::from_edges` on the model byte for byte.

use std::collections::BTreeSet;

use proptest::prelude::*;

use minex_graphs::reference::AdjListGraph;
use minex_graphs::{DeltaGraph, EdgeMutation, Graph, GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random initial edge list over `n` nodes (canonicalized, deduplicated).
fn seed_edges(n: usize, raw: usize, rng: &mut StdRng) -> Vec<(NodeId, NodeId)> {
    let mut set = BTreeSet::new();
    if n < 2 {
        return Vec::new();
    }
    for _ in 0..raw {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            set.insert((u.min(v), u.max(v)));
        }
    }
    set.into_iter().collect()
}

/// One random churn step against model + overlay, keeping them in lockstep.
/// Roughly a third of the steps attempt an *invalid* operation and assert
/// the overlay rejects it.
fn churn_step(dg: &mut DeltaGraph, model: &mut BTreeSet<(NodeId, NodeId)>, rng: &mut StdRng) {
    let n = dg.n();
    let pick_pair = |rng: &mut StdRng| {
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n);
        if u == v {
            v = (v + 1) % n;
        }
        (u.min(v), u.max(v))
    };
    match rng.random_range(0..6u32) {
        // Valid insert of an absent pair (rejection-sampled; give up and
        // skip the step if the graph is locally dense).
        0 | 1 => {
            for _ in 0..32 {
                let (u, v) = pick_pair(rng);
                if !model.contains(&(u, v)) {
                    dg.insert_edge(u, v).expect("absent pair inserts");
                    model.insert((u, v));
                    break;
                }
            }
        }
        // Valid delete of a live edge.
        2 | 3 => {
            if !model.is_empty() {
                let i = rng.random_range(0..model.len());
                let &(u, v) = model.iter().nth(i).expect("index in range");
                dg.delete_edge(u, v).expect("live edge deletes");
                model.remove(&(u, v));
            }
        }
        // Invalid insert: a pair that is already live must be rejected
        // and leave the overlay untouched.
        4 => {
            if !model.is_empty() {
                let i = rng.random_range(0..model.len());
                let &(u, v) = model.iter().nth(i).expect("index in range");
                let epoch = dg.epoch();
                assert!(dg.insert_edge(u, v).is_err(), "duplicate insert must fail");
                assert_eq!(dg.epoch(), epoch, "failed insert must not tick the epoch");
            }
        }
        // Invalid delete: an absent pair must be rejected.
        _ => {
            for _ in 0..32 {
                let (u, v) = pick_pair(rng);
                if !model.contains(&(u, v)) {
                    let epoch = dg.epoch();
                    assert!(dg.delete_edge(u, v).is_err(), "missing delete must fail");
                    assert_eq!(dg.epoch(), epoch, "failed delete must not tick the epoch");
                    break;
                }
            }
        }
    }
}

/// Accessor-by-accessor agreement of the overlay with the reference built
/// from the model edge set.
fn assert_agrees(dg: &DeltaGraph, model: &BTreeSet<(NodeId, NodeId)>) {
    let n = dg.n();
    let r = AdjListGraph::from_edges(n, model.iter().copied()).expect("model is valid");
    assert_eq!(dg.m(), r.m(), "live edge count");
    for v in 0..n {
        assert_eq!(dg.degree(v), r.degree(v), "degree({v})");
        let targets = dg.neighbor_targets(v);
        let ids = dg.neighbor_edge_ids(v);
        assert_eq!(targets.len(), ids.len(), "row lengths of {v}");
        let mut expected: Vec<NodeId> = r.neighbors(v).map(|(w, _)| w).collect();
        expected.sort_unstable();
        let got: Vec<NodeId> = targets.iter().map(|&t| t as NodeId).collect();
        assert_eq!(got, expected, "sorted merged row of {v}");
        // Edge ids must be consistent: endpoints of each row id give back
        // exactly {v, target}, and edge_between round-trips.
        for (&t, &e) in targets.iter().zip(ids) {
            let w = t as NodeId;
            let (a, b) = dg.endpoints(e as usize);
            assert_eq!((a.min(b), a.max(b)), (v.min(w), v.max(w)), "endpoints({e})");
            assert_eq!(
                dg.edge_between(v, w),
                Some(e as usize),
                "edge_between({v},{w})"
            );
            assert!(dg.has_edge(v, w));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random mutation sequences: the overlay agrees with a from-scratch
    /// reference after every mutation, across insert-buffer and tombstone
    /// states and across threshold-triggered compactions.
    #[test]
    fn churn_agrees_with_reference(n in 2usize..40, raw in 0usize..120,
                                   steps in 1usize..60, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = seed_edges(n, raw, &mut rng);
        let base = Graph::from_edges(n, edges.iter().copied()).expect("valid seed");
        let mut model: BTreeSet<(NodeId, NodeId)> = edges.into_iter().collect();
        // A tiny compaction threshold so threshold-triggered compactions
        // actually fire inside the sequence.
        let mut dg = DeltaGraph::with_limits(base, 8, usize::MAX);
        for _ in 0..steps {
            churn_step(&mut dg, &mut model, &mut rng);
        }
        assert_agrees(&dg, &model);
    }

    /// Post-compaction equality: an explicit `compact()` must leave the
    /// overlay agreeing with the reference, and `snapshot()` must equal
    /// `Graph::from_edges` on the model byte for byte (same edge ids).
    #[test]
    fn compaction_is_invisible_and_snapshot_is_canonical(
        n in 2usize..40, raw in 0usize..120, steps in 1usize..60, seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1 << 32));
        let edges = seed_edges(n, raw, &mut rng);
        let base = Graph::from_edges(n, edges.iter().copied()).expect("valid seed");
        let mut model: BTreeSet<(NodeId, NodeId)> = edges.into_iter().collect();
        let mut dg = DeltaGraph::new(base);
        for _ in 0..steps {
            churn_step(&mut dg, &mut model, &mut rng);
        }
        let snap = dg.snapshot();
        let rebuilt = Graph::from_edges(n, model.iter().copied()).expect("model is valid");
        prop_assert_eq!(&snap, &rebuilt, "snapshot == from-scratch rebuild");
        dg.compact();
        prop_assert_eq!(dg.pending(), 0, "compaction drains the overlay");
        assert_agrees(&dg, &model);
        prop_assert_eq!(dg.base(), &rebuilt, "compacted base is the canonical CSR");
    }

    /// Mutation batches expressed as [`EdgeMutation`] values apply through
    /// `apply_mutation` exactly like the direct calls.
    #[test]
    fn apply_mutation_matches_direct_calls(n in 2usize..30, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2 << 40));
        let edges = seed_edges(n, 40, &mut rng);
        let base = Graph::from_edges(n, edges.iter().copied()).expect("valid seed");
        let mut a = DeltaGraph::new(base.clone());
        let mut b = DeltaGraph::new(base);
        let mut model: BTreeSet<(NodeId, NodeId)> = edges.iter().copied().collect();
        for _ in 0..30 {
            churn_step(&mut a, &mut model, &mut rng);
        }
        // Replay a's net effect on b as a mutation batch: drop the seed
        // edges a deleted, add the edges a inserted.
        let snap = a.snapshot();
        for &(u, v) in &edges {
            if !snap.has_edge(u, v) {
                b.apply_mutation(&EdgeMutation::Delete { u, v }).expect("valid");
            }
        }
        for (_, u, v) in snap.edges() {
            if !b.has_edge(u, v) {
                b.apply_mutation(&EdgeMutation::Insert { u, v, weight: 1 }).expect("valid");
            }
        }
        prop_assert_eq!(b.snapshot(), snap);
    }
}

//! Edge-weight models for the optimization workloads (MST, min-cut).

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

use crate::graph::{Graph, WeightedGraph};

/// How to assign weights to a graph's edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// Every edge has weight 1.
    Unit,
    /// Independent uniform weights in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// A random permutation of `1..=m` — all weights distinct, which makes
    /// the MST unique and exercises Borůvka worst cases.
    DistinctShuffled,
}

impl WeightModel {
    /// Materializes this model on `g`.
    ///
    /// # Examples
    ///
    /// ```
    /// use minex_graphs::{generators, WeightModel};
    /// use rand::SeedableRng;
    /// let g = generators::cycle(5);
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
    /// let mut ws: Vec<u64> = wg.weights().to_vec();
    /// ws.sort_unstable();
    /// assert_eq!(ws, vec![1, 2, 3, 4, 5]);
    /// ```
    pub fn apply<R: Rng + ?Sized>(self, g: &Graph, rng: &mut R) -> WeightedGraph {
        let m = g.m();
        let weights = match self {
            WeightModel::Unit => vec![1; m],
            WeightModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "lo must not exceed hi");
                (0..m).map(|_| rng.random_range(lo..=hi)).collect()
            }
            WeightModel::DistinctShuffled => {
                let mut ws: Vec<u64> = (1..=m as u64).collect();
                ws.shuffle(rng);
                ws
            }
        };
        WeightedGraph::new(g.clone(), weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_weights() {
        let g = generators::path(4);
        let mut rng = StdRng::seed_from_u64(0);
        let wg = WeightModel::Unit.apply(&g, &mut rng);
        assert_eq!(wg.weights(), &[1, 1, 1]);
    }

    #[test]
    fn uniform_in_range() {
        let g = generators::complete(6);
        let mut rng = StdRng::seed_from_u64(1);
        let wg = WeightModel::Uniform { lo: 10, hi: 20 }.apply(&g, &mut rng);
        assert!(wg.weights().iter().all(|&w| (10..=20).contains(&w)));
    }

    #[test]
    fn distinct_is_permutation() {
        let g = generators::complete(5);
        let mut rng = StdRng::seed_from_u64(2);
        let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
        let mut ws = wg.weights().to_vec();
        ws.sort_unstable();
        assert_eq!(ws, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::complete(5);
        let a = WeightModel::Uniform { lo: 0, hi: 100 }.apply(&g, &mut StdRng::seed_from_u64(9));
        let b = WeightModel::Uniform { lo: 0, hi: 100 }.apply(&g, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn uniform_validates_range() {
        let g = generators::path(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = WeightModel::Uniform { lo: 5, hi: 1 }.apply(&g, &mut rng);
    }
}

//! Edge-weight models for the optimization workloads (MST, min-cut).

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

use crate::graph::{Graph, WeightedGraph};

/// How to assign weights to a graph's edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// Every edge has weight 1.
    Unit,
    /// Independent uniform weights in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// A random permutation of `1..=m` — all weights distinct, which makes
    /// the MST unique and exercises Borůvka worst cases.
    DistinctShuffled,
    /// Maze weights: each edge is independently `light` or `heavy`, with
    /// `heavy_permille`/1000 probability of `heavy`. With a large
    /// `heavy/light` ratio, shortest paths snake around heavy edges and use
    /// far more hops than BFS paths — the workload where hop-limited
    /// Bellman–Ford is slow and shortcut-accelerated SSSP shines (E11).
    ///
    /// Keeping `light` well above 1 also gives the `(1+ε)` scaled SSSP tiers
    /// room to round weights: a scale of `⌊ε·light⌋` stays relatively small.
    Bimodal {
        /// Weight of a light (common-case) edge; must be positive.
        light: u64,
        /// Weight of a heavy (obstacle) edge; must be `>= light`.
        heavy: u64,
        /// Probability of an edge being heavy, in thousandths (0..=1000).
        heavy_permille: u16,
    },
}

impl WeightModel {
    /// Materializes this model on `g`.
    ///
    /// # Examples
    ///
    /// ```
    /// use minex_graphs::{generators, WeightModel};
    /// use rand::SeedableRng;
    /// let g = generators::cycle(5);
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
    /// let mut ws: Vec<u64> = wg.weights().to_vec();
    /// ws.sort_unstable();
    /// assert_eq!(ws, vec![1, 2, 3, 4, 5]);
    /// ```
    pub fn apply<R: Rng + ?Sized>(self, g: &Graph, rng: &mut R) -> WeightedGraph {
        let m = g.m();
        let weights = match self {
            WeightModel::Unit => vec![1; m],
            WeightModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "lo must not exceed hi");
                (0..m).map(|_| rng.random_range(lo..=hi)).collect()
            }
            WeightModel::DistinctShuffled => {
                let mut ws: Vec<u64> = (1..=m as u64).collect();
                ws.shuffle(rng);
                ws
            }
            WeightModel::Bimodal {
                light,
                heavy,
                heavy_permille,
            } => {
                assert!(light > 0, "light weight must be positive");
                assert!(light <= heavy, "light must not exceed heavy");
                assert!(heavy_permille <= 1000, "heavy_permille is out of 1000");
                (0..m)
                    .map(|_| {
                        if rng.random_range(0..1000) < heavy_permille as usize {
                            heavy
                        } else {
                            light
                        }
                    })
                    .collect()
            }
        };
        WeightedGraph::new(g.clone(), weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_weights() {
        let g = generators::path(4);
        let mut rng = StdRng::seed_from_u64(0);
        let wg = WeightModel::Unit.apply(&g, &mut rng);
        assert_eq!(wg.weights(), &[1, 1, 1]);
    }

    #[test]
    fn uniform_in_range() {
        let g = generators::complete(6);
        let mut rng = StdRng::seed_from_u64(1);
        let wg = WeightModel::Uniform { lo: 10, hi: 20 }.apply(&g, &mut rng);
        assert!(wg.weights().iter().all(|&w| (10..=20).contains(&w)));
    }

    #[test]
    fn distinct_is_permutation() {
        let g = generators::complete(5);
        let mut rng = StdRng::seed_from_u64(2);
        let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
        let mut ws = wg.weights().to_vec();
        ws.sort_unstable();
        assert_eq!(ws, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::complete(5);
        let a = WeightModel::Uniform { lo: 0, hi: 100 }.apply(&g, &mut StdRng::seed_from_u64(9));
        let b = WeightModel::Uniform { lo: 0, hi: 100 }.apply(&g, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn bimodal_uses_both_modes() {
        let g = generators::triangulated_grid(8, 8);
        let mut rng = StdRng::seed_from_u64(11);
        let wg = WeightModel::Bimodal {
            light: 64,
            heavy: 8192,
            heavy_permille: 450,
        }
        .apply(&g, &mut rng);
        assert!(wg.weights().iter().all(|&w| w == 64 || w == 8192));
        let heavies = wg.weights().iter().filter(|&&w| w == 8192).count();
        // 45% of ~180 edges: comfortably away from 0 and m.
        assert!(heavies > g.m() / 5 && heavies < 4 * g.m() / 5);
    }

    #[test]
    fn bimodal_extremes() {
        let g = generators::path(6);
        let mut rng = StdRng::seed_from_u64(0);
        let all_light = WeightModel::Bimodal {
            light: 3,
            heavy: 9,
            heavy_permille: 0,
        }
        .apply(&g, &mut rng);
        assert!(all_light.weights().iter().all(|&w| w == 3));
        let all_heavy = WeightModel::Bimodal {
            light: 3,
            heavy: 9,
            heavy_permille: 1000,
        }
        .apply(&g, &mut rng);
        assert!(all_heavy.weights().iter().all(|&w| w == 9));
    }

    #[test]
    #[should_panic(expected = "light must not exceed heavy")]
    fn bimodal_validates_order() {
        let g = generators::path(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = WeightModel::Bimodal {
            light: 10,
            heavy: 2,
            heavy_permille: 500,
        }
        .apply(&g, &mut rng);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn uniform_validates_range() {
        let g = generators::path(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = WeightModel::Uniform { lo: 5, hi: 1 }.apply(&g, &mut rng);
    }
}

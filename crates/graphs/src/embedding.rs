//! Combinatorial and straight-line embeddings.
//!
//! Two embedding flavours are used by the shortcut constructions:
//!
//! * [`RotationSystem`] — a purely combinatorial embedding (cyclic order of
//!   incident edges around each node). Face tracing over a rotation system
//!   yields the Euler characteristic and hence the *genus* of the embedding,
//!   which lets property tests confirm that, e.g., toroidal grid generators
//!   really produce genus-1 embeddings (Definition 3 of the paper).
//! * [`StraightLineEmbedding`] — integer coordinates for each node, with all
//!   edges drawn as straight segments. Grid-based planar generators produce
//!   these, and the combinatorial-gate construction (Lemma 7) uses them for
//!   its region computations.

use crate::graph::{EdgeId, Graph, NodeId};

/// A rotation system: for every node, the cyclic counterclockwise order of
/// its incident `(neighbor, edge)` pairs.
#[derive(Debug, Clone)]
pub struct RotationSystem {
    order: Vec<Vec<(NodeId, EdgeId)>>,
}

impl RotationSystem {
    /// Wraps per-node cyclic orders.
    ///
    /// # Panics
    ///
    /// Panics if `order.len() != g.n()` or some node's list does not match
    /// its adjacency in `g` as a set.
    pub fn new(g: &Graph, order: Vec<Vec<(NodeId, EdgeId)>>) -> Self {
        assert_eq!(order.len(), g.n(), "rotation system must cover every node");
        for (v, rotation) in order.iter().enumerate() {
            let mut got: Vec<_> = rotation.clone();
            got.sort_unstable();
            let mut want: Vec<_> = g.neighbors(v).collect();
            want.sort_unstable();
            assert_eq!(
                got, want,
                "rotation at node {v} must list its incident edges"
            );
        }
        RotationSystem { order }
    }

    /// The cyclic order at `v`.
    pub fn at(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.order[v]
    }

    /// Position of neighbor `u` (via edge `e`) in the cyclic order at `v`.
    fn position(&self, v: NodeId, u: NodeId, e: EdgeId) -> usize {
        self.order[v]
            .iter()
            .position(|&(w, f)| w == u && f == e)
            .expect("(u, e) must be incident to v")
    }

    /// Traces all faces of the embedding.
    ///
    /// Each face is returned as the sequence of directed edges
    /// `(from, to, edge id)` along its boundary walk, using the
    /// next-edge-clockwise rule (so faces are traversed with the face on the
    /// left for a counterclockwise outer rotation).
    pub fn faces(&self, g: &Graph) -> Vec<Vec<(NodeId, NodeId, EdgeId)>> {
        let mut visited = std::collections::HashSet::new();
        let mut faces = Vec::new();
        for (e, u, v) in g.edges() {
            for (a, b) in [(u, v), (v, u)] {
                if visited.contains(&(a, b, e)) {
                    continue;
                }
                let mut face = Vec::new();
                let (mut x, mut y, mut f) = (a, b, e);
                loop {
                    face.push((x, y, f));
                    visited.insert((x, y, f));
                    // Arriving at y along f from x: the next directed edge
                    // leaves y along the edge *before* (x, f) in the cyclic
                    // order at y (clockwise successor), standard face-tracing.
                    let pos = self.position(y, x, f);
                    let deg = self.order[y].len();
                    let (w, g2) = self.order[y][(pos + deg - 1) % deg];
                    let (nx, ny, nf) = (y, w, g2);
                    if (nx, ny, nf) == (a, b, e) {
                        break;
                    }
                    x = nx;
                    y = ny;
                    f = nf;
                }
                faces.push(face);
            }
        }
        faces
    }

    /// The Euler genus `g` of the embedding of a connected graph, from
    /// `n - m + f = 2 - 2g`.
    ///
    /// Returns `None` when the Euler characteristic is odd (non-orientable
    /// or inconsistent rotation data).
    pub fn genus(&self, g: &Graph) -> Option<usize> {
        let f = self.faces(g).len();
        let chi = g.n() as i64 - g.m() as i64 + f as i64;
        let two_genus = 2 - chi;
        if two_genus < 0 || two_genus % 2 != 0 {
            return None;
        }
        Some((two_genus / 2) as usize)
    }
}

/// Integer coordinates for every node; all edges are straight segments.
///
/// The planar generators guarantee that the drawing is plane (no two edges
/// cross) and that no node lies in the relative interior of another edge's
/// segment — both properties hold automatically for unit grid and unit-square
/// diagonal segments on the integer lattice.
#[derive(Debug, Clone)]
pub struct StraightLineEmbedding {
    coords: Vec<(i64, i64)>,
}

impl StraightLineEmbedding {
    /// Wraps per-node coordinates.
    pub fn new(coords: Vec<(i64, i64)>) -> Self {
        StraightLineEmbedding { coords }
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the embedding is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinates of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn coord(&self, v: NodeId) -> (i64, i64) {
        self.coords[v]
    }

    /// All coordinates, indexed by node.
    pub fn coords(&self) -> &[(i64, i64)] {
        &self.coords
    }

    /// Derives the rotation system induced by the drawing: neighbors sorted
    /// counterclockwise by angle around each node.
    pub fn rotation_system(&self, g: &Graph) -> RotationSystem {
        let mut order = Vec::with_capacity(g.n());
        for v in 0..g.n() {
            let (vx, vy) = self.coords[v];
            let mut inc: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            inc.sort_by(|&(a, _), &(b, _)| {
                let pa = (self.coords[a].0 - vx, self.coords[a].1 - vy);
                let pb = (self.coords[b].0 - vx, self.coords[b].1 - vy);
                angle_order(pa).cmp(&angle_order(pb)).then_with(|| {
                    // Ties cannot happen in a valid drawing (two edges from v
                    // in the same direction would overlap) but keep the sort
                    // total for safety.
                    pa.cmp(&pb)
                })
            });
            order.push(inc);
        }
        RotationSystem::new(g, order)
    }
}

/// Key for sorting lattice vectors by counterclockwise angle starting from
/// the positive x-axis, using exact integer arithmetic (half-plane + cross
/// product), avoiding floating point entirely.
fn angle_order(p: (i64, i64)) -> (u8, i64, i64) {
    let (x, y) = p;
    debug_assert!(!(x == 0 && y == 0), "zero vector has no angle");
    // Half: 0 for y > 0 or (y == 0 && x > 0); 1 otherwise.
    let half = if y > 0 || (y == 0 && x > 0) { 0 } else { 1 };
    // Within a half-plane, compare by cross product: a before b iff
    // cross(a, b) > 0. Encode via slope comparison using (-x, y)?? —
    // instead, use the standard trick: sort key is the pair (half, atan2)
    // realized by comparing cross products; we cannot embed a comparator in
    // a key directly, so expose (half, -x * sign, ...) — simplest correct
    // key: (half, pseudo-angle numerator/denominator) via cross against a
    // fixed axis is wrong. We instead return (half, 0, 0) here and rely on
    // the caller? No — we return a key that is monotone in angle within each
    // half-plane: (half, key1, key2) where key1/key2 encode -cot-like value.
    //
    // Within half 0 (angles in (0, 180] plus positive x-axis at 0): the
    // angle increases as x/r decreases; a strictly monotone integer key is
    // (-x, y) compared lexicographically? Not monotone. Use exact rational
    // comparison: angle(a) < angle(b) iff cross(a, b) > 0 within a common
    // half-plane. Encode as a "pseudo-angle" rational x/(|x|+|y|) which is
    // monotone within each half; to keep integers, compare via cross
    // products is required. We therefore approximate with the classic
    // monotone pseudo-angle p = y/(|x|+|y|) mapped piecewise; implemented
    // below with exact integers.
    let s = x.abs() + y.abs();
    debug_assert!(s > 0);
    // Pseudo-angle in [0, 4) scaled by s to stay integral:
    // quadrant 0 (x>0, y>=0): t = y
    // quadrant 1 (x<=0, y>0): t = s + (-x) ... etc. Standard construction.
    let (q, t) = if x > 0 && y >= 0 {
        (0, y)
    } else if x <= 0 && y > 0 {
        (1, -x)
    } else if x < 0 && y <= 0 {
        (2, -y)
    } else {
        (3, x)
    };
    // Compare (q, t/s) lexicographically: within a quadrant t/s is monotone
    // in angle; cross-multiplication is avoided by noting that all vectors
    // here may have different s, so we return (q, t, -s)?? That is NOT a
    // valid monotone key across different s. The caller only uses this key
    // for *sorting*, so we must produce a totally ordered key monotone in
    // angle. We achieve exactness by scaling: pseudo = t * SCALE / s with
    // SCALE large enough that distinct angles of lattice points within our
    // coordinate range (|x|,|y| <= 2^20) never collide after flooring —
    // collisions would need |t1/s1 - t2/s2| < 1/SCALE, but distinct
    // fractions with denominators <= 2^21 differ by at least 2^-42, so
    // SCALE = 2^44 suffices and fits in i64 for s <= 2^21.
    const SCALE: i64 = 1 << 44;
    debug_assert!(s <= (1 << 21), "coordinates exceed supported range");
    let pseudo = (t as i128 * SCALE as i128 / s as i128) as i64;
    (half, q as i64, pseudo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn grid_embedding_is_planar() {
        let (g, emb) = generators::grid_embedded(3, 4);
        let rot = emb.rotation_system(&g);
        assert_eq!(rot.genus(&g), Some(0));
        // 3x4 grid: n=12, m=17, faces = 6 inner + 1 outer = 7; 12-17+7=2. ✓
        assert_eq!(rot.faces(&g).len(), 7);
    }

    #[test]
    fn triangulated_grid_is_planar() {
        let (g, emb) = generators::triangulated_grid_embedded(4, 4);
        let rot = emb.rotation_system(&g);
        assert_eq!(rot.genus(&g), Some(0));
    }

    #[test]
    fn toroidal_grid_has_genus_one() {
        let (g, rot) = generators::toroidal_grid_with_rotation(4, 4);
        assert_eq!(rot.genus(&g), Some(1));
    }

    #[test]
    fn cycle_embeds_with_two_faces() {
        let g = generators::cycle(6);
        // Regular hexagon coordinates.
        let coords = vec![(2, 0), (1, 2), (-1, 2), (-2, 0), (-1, -2), (1, -2)];
        let emb = StraightLineEmbedding::new(coords);
        let rot = emb.rotation_system(&g);
        assert_eq!(rot.faces(&g).len(), 2);
        assert_eq!(rot.genus(&g), Some(0));
    }

    #[test]
    fn angle_order_is_counterclockwise() {
        let dirs = [
            (1, 0),
            (1, 1),
            (0, 1),
            (-1, 1),
            (-1, 0),
            (-1, -1),
            (0, -1),
            (1, -1),
        ];
        let mut keys: Vec<_> = dirs.iter().map(|&p| angle_order(p)).collect();
        let sorted = {
            let mut k = keys.clone();
            k.sort_unstable();
            k
        };
        keys.sort_unstable();
        assert_eq!(keys, sorted);
        // Starting from +x axis, the eight compass directions are already in
        // ccw order, so their keys must be strictly increasing.
        let orig: Vec<_> = dirs.iter().map(|&p| angle_order(p)).collect();
        for w in orig.windows(2) {
            assert!(w[0] < w[1], "angle keys must strictly increase: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "rotation at node")]
    fn rotation_system_validates_incidence() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        // Node 1's rotation misses an edge.
        let _ = RotationSystem::new(&g, vec![vec![(1, 0)], vec![(0, 0)], vec![(1, 1)]]);
    }
}

//! Disjoint-set union with union by rank and path compression.

/// A classic union–find structure over `0..n`.
///
/// # Examples
///
/// ```
/// use minex_graphs::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0));
/// assert!(uf.same(0, 1));
/// assert_eq!(uf.count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    count: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            count: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.count -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Dense labels `0..k` for the current sets, in order of first
    /// appearance by element id. Returns `(labels, k)`.
    pub fn labels(&mut self) -> (Vec<usize>, usize) {
        let n = self.len();
        let mut label = vec![usize::MAX; n];
        let mut next = 0;
        let mut out = vec![0; n];
        for (v, slot) in out.iter_mut().enumerate() {
            let r = self.find(v);
            if label[r] == usize::MAX {
                label[r] = next;
                next += 1;
            }
            *slot = label[r];
        }
        (out, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn labels_are_dense_and_stable() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(1, 2);
        let (labels, k) = uf.labels();
        assert_eq!(k, 4);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 1);
        assert_eq!(labels[3], 2);
        assert_eq!(labels[4], 3);
        assert_eq!(labels[5], 3);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.count(), 0);
    }

    #[test]
    fn long_chain_compresses() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.count(), 1);
        assert!(uf.same(0, 999));
    }
}

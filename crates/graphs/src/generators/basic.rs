//! Elementary graph families: paths, cycles, stars, wheels, trees, cliques.

use rand::{Rng, RngExt};

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Path with `n` nodes (`n ≥ 1`), edges `i — i+1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path needs at least one node");
    Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
        .expect("path edges are valid")
}

/// Cycle with `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("cycle edges are valid")
}

/// Star with `n ≥ 2` nodes; node `0` is the hub.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least two nodes");
    Graph::from_edges(n, (1..n).map(|i| (0, i))).expect("star edges are valid")
}

/// Wheel with `n ≥ 4` nodes: nodes `0..n-1` form a rim cycle and node `n-1`
/// is the hub adjacent to every rim node.
///
/// This is the paper's running example (Section 1.3.3): constant diameter,
/// but a part consisting of the rim has `Θ(n)` diameter in isolation.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least four nodes");
    let rim = n - 1;
    let hub = n - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..rim {
        b.add_edge(i, (i + 1) % rim).expect("rim edge valid");
        b.add_edge(i, hub).expect("spoke valid");
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("clique edge valid");
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`; the first `a` nodes form one side.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            builder.add_edge(u, a + v).expect("bipartite edge valid");
        }
    }
    builder.build()
}

/// Hypercube of dimension `dim` (`2^dim` nodes).
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if w > v {
                b.add_edge(v, w).expect("hypercube edge valid");
            }
        }
    }
    b.build()
}

/// Complete binary tree with `n` nodes (heap indexing: parent of `v` is
/// `(v-1)/2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n >= 1, "tree needs at least one node");
    Graph::from_edges(n, (1..n).map(|v| (v, (v - 1) / 2))).expect("tree edges valid")
}

/// Uniform random attachment tree: node `i` attaches to a uniformly random
/// earlier node.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "tree needs at least one node");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.random_range(0..v);
        b.add_edge(v, p).expect("tree edge valid");
    }
    b.build()
}

/// Spider: `legs` paths of length `leg_len` sharing a common center
/// (node 0). Total nodes: `1 + legs * leg_len`.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::new(n);
    let mut next = 1;
    for _ in 0..legs {
        let mut prev: NodeId = 0;
        for _ in 0..leg_len {
            b.add_edge(prev, next).expect("leg edge valid");
            prev = next;
            next += 1;
        }
    }
    b.build()
}

/// Comb: a spine path of `teeth` nodes, each growing a pendant path
/// ("tooth") of `tooth_len` nodes. Node ids: spine is `0..teeth`, tooth `i`
/// occupies `teeth + i*tooth_len ..` outward from the spine.
///
/// A planar (indeed outerplanar) path-heavy family for the shortest-path
/// workloads: distances are dominated by long induced paths, so each tooth
/// makes a natural long-and-skinny part.
///
/// # Panics
///
/// Panics if `teeth == 0`.
pub fn comb(teeth: usize, tooth_len: usize) -> Graph {
    assert!(teeth >= 1, "comb needs at least one spine node");
    let n = teeth * (1 + tooth_len);
    // Streamed in sorted canonical order straight into CSR: spine node `i`
    // links to `i+1` and to its tooth root `teeth + i*tooth_len`; tooth
    // nodes chain to their successor. Ascending in the lower endpoint, and
    // `i + 1 < teeth + i*tooth_len` whenever both edges exist.
    Graph::from_sorted_edge_stream(n, || {
        (0..n).flat_map(move |v| {
            let (spine, tooth) = if v < teeth {
                (
                    (v + 1 < teeth).then_some((v, v + 1)),
                    (tooth_len > 0).then_some((v, teeth + v * tooth_len)),
                )
            } else {
                let j = (v - teeth) % tooth_len;
                (None, (j + 1 < tooth_len).then_some((v, v + 1)))
            };
            spine.into_iter().chain(tooth)
        })
    })
    .expect("comb stream is canonical and unique")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!((g.n(), g.m()), (5, 4));
        assert_eq!(diameter_exact(&g), Some(4));
        assert_eq!(path(1).m(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!((g.n(), g.m()), (7, 7));
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_and_wheel() {
        let s = star(6);
        assert_eq!(s.degree(0), 5);
        let w = wheel(8);
        assert_eq!((w.n(), w.m()), (8, 14));
        assert_eq!(w.degree(7), 7);
        assert_eq!(diameter_exact(&w), Some(2));
    }

    #[test]
    fn complete_graphs() {
        let k5 = complete(5);
        assert_eq!(k5.m(), 10);
        let k23 = complete_bipartite(2, 3);
        assert_eq!(k23.m(), 6);
        assert!(!k23.has_edge(0, 1));
        assert!(k23.has_edge(0, 2));
    }

    #[test]
    fn hypercube_shape() {
        let h = hypercube(4);
        assert_eq!((h.n(), h.m()), (16, 32));
        assert_eq!(diameter_exact(&h), Some(4));
    }

    #[test]
    fn trees_are_trees() {
        use rand::{rngs::StdRng, SeedableRng};
        let b = binary_tree(15);
        assert_eq!(b.m(), 14);
        assert!(is_connected(&b));
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_tree(50, &mut rng);
        assert_eq!(t.m(), 49);
        assert!(is_connected(&t));
        assert!(crate::minor::is_forest(&t));
    }

    #[test]
    fn spider_shape() {
        let g = spider(3, 4);
        assert_eq!(g.n(), 13);
        assert_eq!(g.degree(0), 3);
        assert_eq!(diameter_exact(&g), Some(8));
    }

    #[test]
    fn comb_shape() {
        let g = comb(5, 3);
        assert_eq!((g.n(), g.m()), (20, 19));
        assert!(is_connected(&g));
        // Tree: m = n - 1. Diameter: tooth + spine + tooth = 3 + 4 + 3.
        assert_eq!(diameter_exact(&g), Some(10));
        // Spine interior nodes have degree 3 (two spine, one tooth).
        assert_eq!(g.degree(2), 3);
        // Tooth tips have degree 1.
        assert_eq!(g.degree(5 + 2), 1);
    }

    #[test]
    fn comb_degenerate() {
        let g = comb(1, 0);
        assert_eq!((g.n(), g.m()), (1, 0));
        let g = comb(4, 0);
        assert_eq!((g.n(), g.m()), (4, 3));
    }

    #[test]
    #[should_panic(expected = "cycle needs")]
    fn cycle_rejects_small() {
        let _ = cycle(2);
    }
}

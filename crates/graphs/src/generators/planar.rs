//! Planar graph generators, with straight-line lattice embeddings where the
//! construction affords them.
//!
//! Planar graphs are the `(0,0,0,0)`-almost-embeddable graphs of the paper;
//! the gate construction (Lemma 7) and the planar shortcut experiments (E1)
//! run on these families.

use rand::{Rng, RngExt};

use crate::embedding::StraightLineEmbedding;
use crate::graph::{Graph, GraphBuilder, NodeId};

/// `rows × cols` grid. Node `(r, c)` has id `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    grid_embedded(rows, cols).0
}

/// `rows × cols` grid together with its lattice embedding (`(x, y) = (c, r)`).
///
/// The edge stream `(v, v+1)` / `(v, v+cols)` in ascending `v` is already
/// canonical and sorted, so the graph is built straight into CSR with no
/// intermediate edge list — peak memory is the final graph, which is what
/// lets the E15 scale experiment reach `10⁶` nodes.
pub fn grid_embedded(rows: usize, cols: usize) -> (Graph, StraightLineEmbedding) {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let g = Graph::from_sorted_edge_stream(rows * cols, || {
        (0..rows * cols).flat_map(move |v| {
            let (r, c) = (v / cols, v % cols);
            let right = (c + 1 < cols).then_some((v, v + 1));
            let down = (r + 1 < rows).then_some((v, v + cols));
            right.into_iter().chain(down)
        })
    })
    .expect("grid stream is canonical and unique");
    let coords = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (c as i64, r as i64)))
        .collect();
    (g, StraightLineEmbedding::new(coords))
}

/// Grid with one diagonal per unit cell (all in the same direction), a
/// maximal-ish planar mesh. Keeps the lattice embedding plane because unit
/// square diagonals do not cross grid edges.
pub fn triangulated_grid(rows: usize, cols: usize) -> Graph {
    triangulated_grid_embedded(rows, cols).0
}

/// [`triangulated_grid`] together with its embedding.
///
/// Streams straight into CSR like [`grid_embedded`]: per node `v` the
/// candidate edges `(v, v+1)`, `(v, v+cols)`, `(v, v+cols+1)` are emitted
/// in increasing order, so the whole stream is sorted and the million-node
/// instances of the E15 scale experiment never materialize an edge list.
pub fn triangulated_grid_embedded(rows: usize, cols: usize) -> (Graph, StraightLineEmbedding) {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let g = Graph::from_sorted_edge_stream(rows * cols, || {
        (0..rows * cols).flat_map(move |v| {
            let (r, c) = (v / cols, v % cols);
            let right = (c + 1 < cols).then_some((v, v + 1));
            let down = (r + 1 < rows).then_some((v, v + cols));
            let diag = (r + 1 < rows && c + 1 < cols).then_some((v, v + cols + 1));
            right.into_iter().chain(down).chain(diag)
        })
    })
    .expect("triangulated grid stream is canonical and unique");
    let coords = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (c as i64, r as i64)))
        .collect();
    (g, StraightLineEmbedding::new(coords))
}

/// Grid whose unit cells get a diagonal in a random orientation.
pub fn random_triangulated_grid<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    rng: &mut R,
) -> (Graph, StraightLineEmbedding) {
    let (g, emb) = grid_embedded(rows, cols);
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for (_, u, v) in g.edges() {
        b.add_edge(u, v).expect("grid edge");
    }
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols.saturating_sub(1) {
            if rng.random_bool(0.5) {
                b.add_edge(id(r, c), id(r + 1, c + 1)).expect("diagonal");
            } else {
                b.add_edge(id(r, c + 1), id(r + 1, c)).expect("diagonal");
            }
        }
    }
    (b.build(), emb)
}

/// Cylinder: a grid whose columns wrap around (`cols ≥ 3`). Planar (embed as
/// an annulus) but with no straight-line lattice embedding, so only the graph
/// is returned.
pub fn cylinder(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 3, "cylinder needs cols >= 3");
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols))
                .expect("ring edge");
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c)).expect("rung edge");
            }
        }
    }
    b.build()
}

/// The record of an Apollonian (planar 3-tree) construction: each entry is
/// `(new node, the triangle it was inserted into)`. This is a perfect
/// elimination order witnessing treewidth 3.
#[derive(Debug, Clone)]
pub struct ApollonianRecord {
    /// `(v, [a, b, c])` — node `v` was connected to triangle `{a, b, c}`.
    pub insertions: Vec<(NodeId, [NodeId; 3])>,
}

/// Random Apollonian network with `n ≥ 3` nodes: start from a triangle and
/// repeatedly insert a node into a uniformly random existing face.
///
/// These graphs are simultaneously planar and of treewidth 3 — ideal for
/// cross-checking the planar and treewidth shortcut constructions against
/// each other.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn apollonian<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (Graph, ApollonianRecord) {
    assert!(n >= 3, "apollonian needs at least the initial triangle");
    let mut b = GraphBuilder::new(n);
    b.add_edge(0, 1).expect("triangle");
    b.add_edge(1, 2).expect("triangle");
    b.add_edge(0, 2).expect("triangle");
    let mut faces: Vec<[NodeId; 3]> = vec![[0, 1, 2]];
    let mut insertions = Vec::new();
    for v in 3..n {
        let fi = rng.random_range(0..faces.len());
        let [a, b3, c] = faces[fi];
        b.add_edge(v, a).expect("fan edge");
        b.add_edge(v, b3).expect("fan edge");
        b.add_edge(v, c).expect("fan edge");
        insertions.push((v, [a, b3, c]));
        faces.swap_remove(fi);
        faces.push([a, b3, v]);
        faces.push([a, c, v]);
        faces.push([b3, c, v]);
    }
    (b.build(), ApollonianRecord { insertions })
}

/// Maximal outerplanar graph: a cycle `0..n` plus a fan triangulation from
/// node 0. Treewidth 2, planar, Hamiltonian outer face.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn outerplanar_fan(n: usize) -> Graph {
    assert!(n >= 3, "outerplanar graph needs at least three nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n).expect("cycle edge");
    }
    for i in 2..n - 1 {
        b.add_edge(0, i).expect("chord");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minor::{is_k4_minor_free, satisfies_planar_edge_bound};
    use crate::traversal::{diameter_exact, is_connected};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!((g.n(), g.m()), (12, 17));
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), Some(5));
    }

    #[test]
    fn one_by_one_grid() {
        let g = grid(1, 1);
        assert_eq!((g.n(), g.m()), (1, 0));
    }

    #[test]
    fn triangulated_grid_shape() {
        let g = triangulated_grid(3, 3);
        // 12 grid edges + 4 diagonals.
        assert_eq!((g.n(), g.m()), (9, 16));
        assert!(satisfies_planar_edge_bound(&g));
    }

    #[test]
    fn random_triangulation_planar_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = random_triangulated_grid(6, 6, &mut rng);
        assert!(satisfies_planar_edge_bound(&g));
        assert!(is_connected(&g));
    }

    #[test]
    fn cylinder_shape() {
        let g = cylinder(3, 5);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 15 + 10);
        assert!(is_connected(&g));
    }

    #[test]
    fn apollonian_is_planar_bound_and_connected() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, rec) = apollonian(40, &mut rng);
        assert!(is_connected(&g));
        assert!(satisfies_planar_edge_bound(&g));
        // Maximal planar: m = 3n - 6 exactly.
        assert_eq!(g.m(), 3 * g.n() - 6);
        assert_eq!(rec.insertions.len(), 37);
        // Each inserted node's triangle really is a triangle.
        for &(v, [a, b, c]) in &rec.insertions {
            assert!(g.has_edge(v, a) && g.has_edge(v, b) && g.has_edge(v, c));
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
        }
    }

    #[test]
    fn outerplanar_is_series_parallel() {
        let g = outerplanar_fan(10);
        assert!(is_k4_minor_free(&g));
        assert_eq!(g.m(), 2 * 10 - 3);
    }
}

//! Bounded-genus generators (Definition 3 of the paper).
//!
//! The toroidal grid is the canonical genus-1 family; higher genus is
//! obtained by chaining tori with bridge edges (genus is additive over
//! blocks, so a chain of `g` tori has orientable genus exactly `g`).

use crate::embedding::RotationSystem;
use crate::graph::{Graph, GraphBuilder};

/// `rows × cols` grid with both dimensions wrapping around (a torus).
/// Requires `rows, cols ≥ 3` so that no wrap edge becomes a parallel edge.
///
/// # Panics
///
/// Panics if either dimension is `< 3`.
pub fn toroidal_grid(rows: usize, cols: usize) -> Graph {
    toroidal_grid_with_rotation(rows, cols).0
}

/// [`toroidal_grid`] together with the canonical genus-1 rotation system
/// (right, up, left, down around every node).
pub fn toroidal_grid_with_rotation(rows: usize, cols: usize) -> (Graph, RotationSystem) {
    assert!(rows >= 3 && cols >= 3, "toroidal grid needs both dims >= 3");
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols))
                .expect("row edge");
            b.add_edge(id(r, c), id((r + 1) % rows, c))
                .expect("col edge");
        }
    }
    let g = b.build();
    let mut order = Vec::with_capacity(g.n());
    for r in 0..rows {
        for c in 0..cols {
            let v = id(r, c);
            let right = id(r, (c + 1) % cols);
            let up = id((r + rows - 1) % rows, c);
            let left = id(r, (c + cols - 1) % cols);
            let down = id((r + 1) % rows, c);
            let dirs = [right, up, left, down];
            let cyc: Vec<_> = dirs
                .iter()
                .map(|&w| (w, g.edge_between(v, w).expect("torus edge exists")))
                .collect();
            order.push(cyc);
        }
    }
    let rot = RotationSystem::new(&g, order);
    (g, rot)
}

/// A chain of `handles` toroidal grids, consecutive tori joined by a single
/// bridge edge. Orientable genus exactly `handles`; diameter
/// `Θ(handles · (rows + cols))`.
///
/// # Panics
///
/// Panics if `handles == 0` or grid dims are `< 3`.
pub fn torus_chain(handles: usize, rows: usize, cols: usize) -> Graph {
    assert!(handles >= 1, "need at least one handle");
    let per = rows * cols;
    let torus = toroidal_grid(rows, cols);
    let mut b = GraphBuilder::new(per * handles);
    for h in 0..handles {
        let off = h * per;
        for (_, u, v) in torus.edges() {
            b.add_edge(off + u, off + v).expect("torus copy edge");
        }
        if h > 0 {
            // Bridge from the "last" node of the previous torus to the
            // "first" node of this one.
            b.add_edge((h - 1) * per + (per - 1), off).expect("bridge");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minor::satisfies_genus_edge_bound;
    use crate::traversal::is_connected;

    #[test]
    fn toroidal_grid_shape() {
        let g = toroidal_grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn toroidal_rotation_gives_genus_one() {
        let (g, rot) = toroidal_grid_with_rotation(3, 3);
        assert_eq!(rot.genus(&g), Some(1));
        let (g2, rot2) = toroidal_grid_with_rotation(5, 4);
        assert_eq!(rot2.genus(&g2), Some(1));
    }

    #[test]
    fn torus_chain_shape() {
        let g = torus_chain(3, 3, 3);
        assert_eq!(g.n(), 27);
        assert_eq!(g.m(), 3 * 18 + 2);
        assert!(is_connected(&g));
        assert!(satisfies_genus_edge_bound(&g, 3));
    }

    #[test]
    #[should_panic(expected = "both dims >= 3")]
    fn rejects_thin_torus() {
        let _ = toroidal_grid(2, 5);
    }
}

//! Bounded-treewidth families: k-trees, partial k-trees, series-parallel.
//!
//! The treewidth-based shortcut construction (Theorem 5, [HIZ16b]) consumes
//! the construction records these generators emit.

use rand::seq::IndexedRandom;
use rand::{Rng, RngExt};

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Construction record of a k-tree: a perfect elimination order.
///
/// Node `v` (for `v > k`) was attached to the clique `attach_clique[v - k - 1]`
/// of `k` earlier nodes; nodes `0..=k` form the initial `(k+1)`-clique.
/// This record is a direct witness of treewidth `≤ k` and converts to a tree
/// decomposition in `minex-decomp`.
#[derive(Debug, Clone)]
pub struct KTreeRecord {
    /// Width parameter `k`.
    pub k: usize,
    /// For each node `v` in `k+1..n` (in order), the k-clique it attached to.
    pub attach_clique: Vec<Vec<NodeId>>,
}

/// Random k-tree with `n` nodes: start from `K_{k+1}`, then attach each new
/// node to a uniformly random k-clique among those created so far.
///
/// The elimination-order record is drawn first (one RNG pass), then the
/// graph is streamed straight into CSR from the record via
/// [`Graph::from_edge_stream`] — a k-tree's edge set is exactly the seed
/// clique plus one `(u, v)` per attachment entry, so no intermediate edge
/// list is ever buffered and million-node instances pay only for the final
/// arrays (plus the record itself).
///
/// # Panics
///
/// Panics if `n < k + 1` or `k == 0`.
pub fn k_tree<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> (Graph, KTreeRecord) {
    assert!(k >= 1, "k must be positive");
    assert!(n > k, "k-tree needs at least k+1 nodes");
    // All k-subsets of the seed clique are available k-cliques.
    let mut cliques: Vec<Vec<NodeId>> = k_subsets(&(0..=k).collect::<Vec<_>>(), k);
    let mut attach = Vec::new();
    for v in (k + 1)..n {
        let c = cliques.choose(rng).expect("non-empty clique pool").clone();
        // New k-cliques: v together with each (k-1)-subset of c.
        for sub in k_subsets(&c, k - 1) {
            let mut nc = sub;
            nc.push(v);
            cliques.push(nc);
        }
        attach.push(c);
    }
    let rec = KTreeRecord {
        k,
        attach_clique: attach,
    };
    (graph_of_k_tree(n, &rec), rec)
}

/// Materializes the graph a [`KTreeRecord`] describes, streaming the seed
/// clique and the attachment edges directly into CSR.
fn graph_of_k_tree(n: usize, rec: &KTreeRecord) -> Graph {
    let k = rec.k;
    Graph::from_edge_stream(n, || {
        let seed = (0..=k).flat_map(move |u| ((u + 1)..=k).map(move |v| (u, v)));
        let attachments = rec
            .attach_clique
            .iter()
            .enumerate()
            .flat_map(move |(i, clique)| {
                let v = k + 1 + i;
                clique.iter().map(move |&u| (u, v))
            });
        seed.chain(attachments)
    })
    .expect("k-tree edges are valid and unique")
}

/// Partial k-tree: a random k-tree with each non-seed edge kept with
/// probability `keep`. The [`KTreeRecord`] remains a valid treewidth witness.
/// The graph is re-connected afterwards by restoring one attachment edge per
/// node if deletion disconnected it.
pub fn partial_k_tree<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    keep: f64,
    rng: &mut R,
) -> (Graph, KTreeRecord) {
    assert!((0.0..=1.0).contains(&keep), "keep must be a probability");
    let (full, rec) = k_tree(n, k, rng);
    let mut b = GraphBuilder::new(n);
    // Keep the seed clique intact.
    for u in 0..=k {
        for v in (u + 1)..=k {
            b.add_edge(u, v).expect("seed edge");
        }
    }
    for (v, clique) in rec.attach_clique.iter().enumerate() {
        let v = v + k + 1;
        let mut kept_any = false;
        for &u in clique {
            if rng.random_bool(keep) {
                b.add_edge(v, u).expect("kept edge");
                kept_any = true;
            }
        }
        if !kept_any {
            // Guarantee connectivity: keep one attachment edge.
            b.add_edge(v, clique[0]).expect("restored edge");
        }
    }
    // Other (non-attachment) edges of the k-tree: between seed nodes handled;
    // every k-tree edge is either a seed edge or an attachment edge, so we
    // are done.
    let _ = full;
    (b.build(), rec)
}

/// Random series-parallel graph with `n ≥ 2` nodes, grown from a single edge
/// by random series subdivisions and parallel 2-paths. `K4`-minor-free by
/// construction.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn series_parallel<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "series-parallel graph needs at least two nodes");
    // Maintain the current edge list; both operations add one node.
    let mut edges: Vec<(NodeId, NodeId)> = vec![(0, 1)];
    let mut next: NodeId = 2;
    while next < n {
        let i = rng.random_range(0..edges.len());
        let (u, v) = edges[i];
        let w = next;
        next += 1;
        if rng.random_bool(0.5) {
            // Series: subdivide (u, v) into u - w - v.
            edges.swap_remove(i);
            edges.push((u, w));
            edges.push((w, v));
        } else {
            // Parallel: add a 2-path u - w - v alongside (u, v).
            edges.push((u, w));
            edges.push((w, v));
        }
    }
    Graph::from_edges(n, edges).expect("series-parallel edges valid")
}

/// All `size`-subsets of `items` (small `size` only; used for k ≤ 8).
fn k_subsets(items: &[NodeId], size: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(size);
    fn rec(
        items: &[NodeId],
        size: usize,
        start: usize,
        cur: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..items.len() {
            cur.push(items[i]);
            rec(items, size, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(items, size, 0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minor::is_k4_minor_free;
    use crate::traversal::is_connected;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn k_tree_structure() {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, rec) = k_tree(30, 3, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(rec.attach_clique.len(), 30 - 4);
        // Every attachment set is a clique and the new node joins it fully.
        for (i, clique) in rec.attach_clique.iter().enumerate() {
            let v = i + 4;
            assert_eq!(clique.len(), 3);
            for &u in clique {
                assert!(g.has_edge(v, u));
                assert!(u < v, "attachment must be to earlier nodes");
            }
            for a in 0..clique.len() {
                for b in (a + 1)..clique.len() {
                    assert!(g.has_edge(clique[a], clique[b]));
                }
            }
        }
        // Edge count of a k-tree: k(k+1)/2 + k(n-k-1).
        assert_eq!(g.m(), 6 + 3 * (30 - 4));
    }

    #[test]
    fn two_tree_is_k4_minor_free() {
        let mut rng = StdRng::seed_from_u64(8);
        let (g, _) = k_tree(40, 2, &mut rng);
        assert!(is_k4_minor_free(&g));
        let (g3, _) = k_tree(40, 3, &mut rng);
        assert!(!is_k4_minor_free(&g3));
    }

    #[test]
    fn partial_k_tree_connected_and_sparser() {
        let mut rng = StdRng::seed_from_u64(13);
        let (g, rec) = partial_k_tree(60, 4, 0.5, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(rec.k, 4);
        let (full, _) = k_tree(60, 4, &mut StdRng::seed_from_u64(13));
        assert!(g.m() <= full.m());
    }

    #[test]
    fn series_parallel_is_k4_free_and_connected() {
        let mut rng = StdRng::seed_from_u64(34);
        for n in [2, 3, 10, 100] {
            let g = series_parallel(n, &mut rng);
            assert_eq!(g.n(), n);
            assert!(is_connected(&g), "n={n}");
            assert!(is_k4_minor_free(&g), "n={n}");
        }
    }

    #[test]
    fn subsets_enumeration() {
        let s = k_subsets(&[0, 1, 2, 3], 2);
        assert_eq!(s.len(), 6);
        let s1 = k_subsets(&[5], 1);
        assert_eq!(s1, vec![vec![5]]);
        let s0 = k_subsets(&[1, 2], 0);
        assert_eq!(s0, vec![Vec::<NodeId>::new()]);
    }
}

//! Hard instances and random controls.
//!
//! [`lower_bound_family`] is the Das Sarma et al. \[SHK+12\] construction on
//! which every MST/min-cut algorithm needs `Ω̃(√n)` rounds despite having
//! `O(log n)` diameter. It is *not* minor-free (it contains large clique
//! minors), so the paper's result does not apply to it — experiment E7 uses
//! it to exhibit the separation.

use rand::{Rng, RngExt};

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Ids for the pieces of the lower-bound construction, for workload setup.
#[derive(Debug, Clone)]
pub struct LowerBoundLayout {
    /// `paths[i][j]` — the j-th node of the i-th path.
    pub paths: Vec<Vec<NodeId>>,
    /// Nodes of the binary tree over the columns; `tree[0]` is the root.
    pub tree: Vec<NodeId>,
    /// `leaves[j]` — the tree leaf attached to column `j`.
    pub leaves: Vec<NodeId>,
}

/// The lower-bound graph `Γ(p, ℓ)`: `p` horizontal paths of `ℓ` nodes each,
/// a balanced binary tree with `ℓ` leaves, and spokes connecting leaf `j` to
/// the j-th node of every path.
///
/// With `p = ℓ = √n` this gives diameter `O(log n)` but forces `Ω̃(√n)`
/// rounds for MST in the CONGEST model.
///
/// # Panics
///
/// Panics if `p == 0` or `l < 2`.
pub fn lower_bound_family(p: usize, l: usize) -> (Graph, LowerBoundLayout) {
    assert!(p >= 1, "need at least one path");
    assert!(l >= 2, "paths need at least two nodes");
    // Balanced binary tree with l leaves: use a complete binary tree with
    // 2^ceil(log2 l) leaves and keep the first l.
    let leaf_count = l.next_power_of_two();
    let tree_size = 2 * leaf_count - 1;
    let mut b = GraphBuilder::new(p * l + tree_size);
    let path_id = |i: usize, j: usize| i * l + j;
    let tree_id = |t: usize| p * l + t;
    let mut paths = Vec::with_capacity(p);
    for i in 0..p {
        let mut row = Vec::with_capacity(l);
        for j in 0..l {
            row.push(path_id(i, j));
            if j + 1 < l {
                b.add_edge(path_id(i, j), path_id(i, j + 1))
                    .expect("path edge");
            }
        }
        paths.push(row);
    }
    // Heap-shaped complete binary tree.
    for t in 1..tree_size {
        b.add_edge(tree_id(t), tree_id((t - 1) / 2))
            .expect("tree edge");
    }
    // Leaves are the last `leaf_count` heap slots; attach the first l.
    let first_leaf = leaf_count - 1;
    let leaves: Vec<NodeId> = (0..l).map(|j| tree_id(first_leaf + j)).collect();
    for (j, &leaf) in leaves.iter().enumerate() {
        for i in 0..p {
            b.add_edge(leaf, path_id(i, j)).expect("spoke edge");
        }
    }
    let layout = LowerBoundLayout {
        paths,
        tree: (0..tree_size).map(tree_id).collect(),
        leaves,
    };
    (b.build(), layout)
}

/// Erdős–Rényi `G(n, p)` — used only as a non-minor-free control; may be
/// disconnected for small `p`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.add_edge(u, v).expect("er edge");
            }
        }
    }
    b.build()
}

/// Connected random graph: a uniform random attachment tree plus `extra`
/// random non-tree edges (deduplicated, so the result may have slightly
/// fewer).
pub fn random_connected<R: Rng + ?Sized>(n: usize, extra: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "need at least one node");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let u = rng.random_range(0..v);
        b.add_edge(u, v).expect("tree edge");
    }
    if n >= 2 {
        for _ in 0..extra {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                b.add_edge(u, v).expect("extra edge");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn lower_bound_shape() {
        let (g, layout) = lower_bound_family(4, 8);
        assert!(is_connected(&g));
        assert_eq!(layout.paths.len(), 4);
        assert_eq!(layout.leaves.len(), 8);
        // Diameter is logarithmic-ish, far below the path length.
        let d = diameter_exact(&g).unwrap();
        assert!(d <= 2 * 4 + 2, "diameter {d} should be tree-dominated");
        // Every leaf connects to all paths.
        for &leaf in &layout.leaves {
            assert!(g.degree(leaf) >= 4);
        }
    }

    #[test]
    fn lower_bound_small_cases() {
        let (g, layout) = lower_bound_family(1, 2);
        assert!(is_connected(&g));
        assert_eq!(layout.paths[0].len(), 2);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.m(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.m(), 45);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1, 2, 10, 100] {
            let g = random_connected(n, n / 2, &mut rng);
            assert!(is_connected(&g), "n={n}");
            assert!(g.m() >= n.saturating_sub(1));
        }
    }
}

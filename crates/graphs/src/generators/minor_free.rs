//! Builders for the paper's composite families: apex additions
//! (Definition 2), vortices (Definition 4), and k-clique-sums
//! (Definition 1), each emitting a structure record used by the
//! witness-based shortcut constructions.

use rand::{Rng, RngExt};

use crate::graph::{Graph, GraphBuilder, GraphError, NodeId};

/// Adds a single apex connected to `attach` and returns the new graph plus
/// the apex's node id (`g.n()`).
///
/// # Panics
///
/// Panics if `attach` is empty or contains out-of-range nodes.
pub fn add_apex(g: &Graph, attach: &[NodeId]) -> (Graph, NodeId) {
    assert!(!attach.is_empty(), "apex must attach to at least one node");
    let apex = g.n();
    let mut b = GraphBuilder::new(g.n() + 1);
    for (_, u, v) in g.edges() {
        b.add_edge(u, v).expect("base edge");
    }
    for &u in attach {
        assert!(u < g.n(), "attachment node out of range");
        b.add_edge(apex, u).expect("apex edge");
    }
    (b.build(), apex)
}

/// Adds `q` apices, each attached to every base node independently with
/// probability `attach_prob` (at least one attachment is forced). Apices are
/// also connected to each other, as allowed by Definition 5(iii).
///
/// Returns the graph and the apex ids.
pub fn add_random_apices<R: Rng + ?Sized>(
    g: &Graph,
    q: usize,
    attach_prob: f64,
    rng: &mut R,
) -> (Graph, Vec<NodeId>) {
    assert!(q >= 1, "need at least one apex");
    let base_n = g.n();
    let mut b = GraphBuilder::new(base_n + q);
    for (_, u, v) in g.edges() {
        b.add_edge(u, v).expect("base edge");
    }
    let apices: Vec<NodeId> = (base_n..base_n + q).collect();
    for (i, &a) in apices.iter().enumerate() {
        let mut attached = false;
        for u in 0..base_n {
            if rng.random_bool(attach_prob) {
                b.add_edge(a, u).expect("apex edge");
                attached = true;
            }
        }
        if !attached {
            b.add_edge(a, rng.random_range(0..base_n))
                .expect("forced apex edge");
        }
        for &a2 in &apices[..i] {
            b.add_edge(a, a2).expect("apex-apex edge");
        }
    }
    (b.build(), apices)
}

/// The canonical Section-1 example: a grid with an apex attached to every
/// `stride`-th node. The base grid has diameter `Θ(rows + cols)` but the apex
/// collapses the diameter to `O(stride)`-ish.
pub fn apex_grid(rows: usize, cols: usize, stride: usize) -> (Graph, NodeId) {
    assert!(stride >= 1, "stride must be positive");
    let g = super::planar::grid(rows, cols);
    let attach: Vec<NodeId> = (0..g.n()).step_by(stride).collect();
    add_apex(&g, &attach)
}

/// Record of a vortex addition (Definition 4 / Definition 7).
#[derive(Debug, Clone)]
pub struct VortexRecord {
    /// The boundary cycle `C`, in cyclic order (global node ids).
    pub boundary: Vec<NodeId>,
    /// The internal vortex nodes, in creation order.
    pub internal: Vec<NodeId>,
    /// `arcs[i] = (start, len)`: internal node `i` owns the boundary arc
    /// `boundary[start], boundary[start+1 mod L], …` of `len` nodes. This is
    /// the vortex decomposition `P` of Definition 7.
    pub arcs: Vec<(usize, usize)>,
    /// The depth bound `k` the construction promised.
    pub depth: usize,
}

impl VortexRecord {
    /// Checks Definition 4's depth constraint: every boundary node lies in at
    /// most `depth` arcs.
    pub fn max_coverage(&self) -> usize {
        let l = self.boundary.len();
        let mut cover = vec![0usize; l];
        for &(start, len) in &self.arcs {
            for off in 0..len {
                cover[(start + off) % l] += 1;
            }
        }
        cover.into_iter().max().unwrap_or(0)
    }

    /// The arc node set (global ids) of internal node index `i`.
    pub fn arc_nodes(&self, i: usize) -> Vec<NodeId> {
        let (start, len) = self.arcs[i];
        let l = self.boundary.len();
        (0..len)
            .map(|off| self.boundary[(start + off) % l])
            .collect()
    }
}

/// Adds a vortex of depth ≤ `depth` with `internal` new nodes onto the cycle
/// `cycle` of `g` (Definition 4).
///
/// Arcs are evenly spaced with length chosen so that no boundary node is
/// covered more than `depth` times; each internal node connects to a random
/// non-empty subset of its arc; internal nodes with overlapping arcs are
/// connected with probability 1/2.
///
/// # Errors
///
/// Returns an error if `cycle` has fewer than 3 nodes, `internal == 0`,
/// `depth == 0`, or the arc arithmetic cannot satisfy the depth bound.
pub fn add_vortex<R: Rng + ?Sized>(
    g: &Graph,
    cycle: &[NodeId],
    internal: usize,
    depth: usize,
    rng: &mut R,
) -> Result<(Graph, VortexRecord), GraphError> {
    if cycle.len() < 3 {
        return Err(GraphError::Empty);
    }
    assert!(internal >= 1, "vortex needs at least one internal node");
    assert!(depth >= 1, "vortex depth must be positive");
    let l = cycle.len();
    for &v in cycle {
        if v >= g.n() {
            return Err(GraphError::NodeOutOfRange { node: v, n: g.n() });
        }
    }
    // Arc length: cover the cycle (so consecutive arcs overlap when possible)
    // while keeping per-node coverage ≤ depth. With t arcs of length `len`
    // evenly spaced, coverage ≤ ceil(t * len / l).
    let t = internal;
    let len = ((depth * l) / t).clamp(1, l);
    let base_n = g.n();
    let mut b = GraphBuilder::new(base_n + t);
    for (_, u, v) in g.edges() {
        b.add_edge(u, v).expect("base edge");
    }
    let mut arcs = Vec::with_capacity(t);
    for i in 0..t {
        let start = i * l / t;
        arcs.push((start, len));
    }
    let record = VortexRecord {
        boundary: cycle.to_vec(),
        internal: (base_n..base_n + t).collect(),
        arcs,
        depth,
    };
    if record.max_coverage() > depth {
        return Err(GraphError::Empty);
    }
    for i in 0..t {
        let va = base_n + i;
        let nodes = record.arc_nodes(i);
        let mut attached = false;
        for &u in &nodes {
            if rng.random_bool(0.7) {
                b.add_edge(va, u).expect("vortex edge");
                attached = true;
            }
        }
        if !attached {
            b.add_edge(va, nodes[0]).expect("forced vortex edge");
        }
        // Connect to earlier internal nodes with overlapping arcs.
        for j in 0..i {
            let nj = record.arc_nodes(j);
            if nodes.iter().any(|u| nj.contains(u)) && rng.random_bool(0.5) {
                b.add_edge(va, base_n + j).expect("internal vortex edge");
            }
        }
    }
    Ok((b.build(), record))
}

/// Record of an iterated k-clique-sum construction (Definitions 1 and 8).
#[derive(Debug, Clone)]
pub struct CliqueSumRecord {
    /// Maximum clique size used.
    pub k: usize,
    /// `bags[i]` — sorted global node ids of bag `i`.
    pub bags: Vec<Vec<NodeId>>,
    /// `links[j] = (parent bag, child bag, shared clique nodes)`; the shared
    /// nodes form the (possibly partial, after drops) clique `C_f`.
    pub links: Vec<(usize, usize, Vec<NodeId>)>,
}

/// Incrementally builds a graph as a k-clique-sum of component graphs,
/// recording the decomposition tree as it goes.
///
/// # Examples
///
/// ```
/// use minex_graphs::generators::{self, CliqueSumBuilder};
///
/// let a = generators::triangulated_grid(3, 3);
/// let b = generators::triangulated_grid(3, 3);
/// let mut builder = CliqueSumBuilder::new(&a, 3);
/// // Glue b onto a along an edge (2-clique): host nodes (0,1) ↔ b's (0,1).
/// builder.glue(&b, &[0, 1], &[0, 1]).unwrap();
/// let (g, record) = builder.build();
/// assert_eq!(g.n(), 9 + 9 - 2);
/// assert_eq!(record.bags.len(), 2);
/// ```
#[derive(Debug)]
pub struct CliqueSumBuilder {
    builder: GraphBuilder,
    edges_so_far: Vec<(NodeId, NodeId)>,
    bags: Vec<Vec<NodeId>>,
    links: Vec<(usize, usize, Vec<NodeId>)>,
    k: usize,
}

impl CliqueSumBuilder {
    /// Starts the construction with `first` as bag 0; cliques glued later may
    /// have at most `k` nodes.
    pub fn new(first: &Graph, k: usize) -> Self {
        assert!(k >= 1, "clique size bound must be positive");
        let mut builder = GraphBuilder::new(first.n());
        let mut edges = Vec::new();
        for (_, u, v) in first.edges() {
            builder.add_edge(u, v).expect("component edge");
            edges.push((u, v));
        }
        CliqueSumBuilder {
            builder,
            edges_so_far: edges,
            bags: vec![(0..first.n()).collect()],
            links: Vec::new(),
            k,
        }
    }

    fn has_edge_so_far(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = (u.min(v), u.max(v));
        self.edges_so_far.iter().any(|&(x, y)| (x, y) == (a, b))
    }

    /// Glues `comp` onto the current graph, identifying `comp_clique`
    /// (component-local ids) with `host_clique` (global ids). Both must be
    /// cliques of equal size `≤ k` in their graphs, and `host_clique` must be
    /// entirely contained in one existing bag (so the decomposition tree
    /// property 4 of Definition 8 holds).
    ///
    /// Returns the mapping from component-local ids to global ids.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for bad ids; panics on
    /// non-clique inputs (a programmer error in the generator).
    pub fn glue(
        &mut self,
        comp: &Graph,
        host_clique: &[NodeId],
        comp_clique: &[NodeId],
    ) -> Result<Vec<NodeId>, GraphError> {
        assert_eq!(
            host_clique.len(),
            comp_clique.len(),
            "cliques must have equal size"
        );
        assert!(
            host_clique.len() <= self.k,
            "clique larger than the bound k"
        );
        assert!(!host_clique.is_empty(), "cliques must be non-empty");
        for &v in host_clique {
            if v >= self.builder.n() {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    n: self.builder.n(),
                });
            }
        }
        for &v in comp_clique {
            if v >= comp.n() {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    n: comp.n(),
                });
            }
        }
        // Validate cliques.
        for i in 0..host_clique.len() {
            for j in (i + 1)..host_clique.len() {
                assert!(
                    self.has_edge_so_far(host_clique[i], host_clique[j]),
                    "host nodes must form a clique"
                );
                assert!(
                    comp.has_edge(comp_clique[i], comp_clique[j]),
                    "component nodes must form a clique"
                );
            }
        }
        // The host clique must live inside a single existing bag.
        let parent = self
            .bags
            .iter()
            .position(|bag| host_clique.iter().all(|v| bag.binary_search(v).is_ok()))
            .expect("host clique must be contained in one existing bag");
        // Map component nodes to global ids.
        let mut map: Vec<Option<NodeId>> = vec![None; comp.n()];
        for (i, &c) in comp_clique.iter().enumerate() {
            map[c] = Some(host_clique[i]);
        }
        for slot in &mut map {
            if slot.is_none() {
                *slot = Some(self.builder.add_node());
            }
        }
        for (_, u, v) in comp.edges() {
            let (gu, gv) = (map[u].expect("mapped"), map[v].expect("mapped"));
            self.builder.add_edge(gu, gv).expect("glued edge");
            self.edges_so_far.push((gu.min(gv), gu.max(gv)));
        }
        let mut bag: Vec<NodeId> = map.iter().map(|m| m.expect("mapped")).collect();
        bag.sort_unstable();
        let child = self.bags.len();
        self.bags.push(bag);
        let mut shared = host_clique.to_vec();
        shared.sort_unstable();
        self.links.push((parent, child, shared));
        Ok(map.into_iter().map(|m| m.expect("mapped")).collect())
    }

    /// Finalizes into the glued graph and its [`CliqueSumRecord`].
    pub fn build(self) -> (Graph, CliqueSumRecord) {
        (
            self.builder.build(),
            CliqueSumRecord {
                k: self.k,
                bags: self.bags,
                links: self.links,
            },
        )
    }
}

/// Finds all cliques of the requested `size ∈ {1, 2, 3, 4}` in `g`.
pub fn find_cliques(g: &Graph, size: usize) -> Vec<Vec<NodeId>> {
    match size {
        1 => (0..g.n()).map(|v| vec![v]).collect(),
        2 => g.edges().map(|(_, u, v)| vec![u, v]).collect(),
        3 => {
            let mut out = Vec::new();
            for (_, u, v) in g.edges() {
                for (w, _) in g.neighbors(u) {
                    if w > v && g.has_edge(v, w) {
                        out.push(vec![u, v, w]);
                    }
                }
            }
            out
        }
        4 => {
            let mut out = Vec::new();
            for tri in find_cliques(g, 3) {
                let (a, b, c) = (tri[0], tri[1], tri[2]);
                for (w, _) in g.neighbors(a) {
                    if w > c && g.has_edge(b, w) && g.has_edge(c, w) {
                        out.push(vec![a, b, c, w]);
                    }
                }
            }
            out
        }
        _ => panic!("find_cliques supports sizes 1..=4, got {size}"),
    }
}

/// Glues `count` copies of randomly chosen `components` into one graph by
/// random clique-sums of size ≤ `k`, returning the glued graph and record.
///
/// Each step picks a random existing bag, finds a random clique of size
/// `min(k, best available)` inside it, and glues a random component there.
pub fn random_clique_sum<R: Rng + ?Sized>(
    components: &[Graph],
    count: usize,
    k: usize,
    rng: &mut R,
) -> (Graph, CliqueSumRecord) {
    assert!(!components.is_empty(), "need at least one component graph");
    assert!(count >= 1, "need at least one bag");
    let first = &components[rng.random_range(0..components.len())];
    let mut builder = CliqueSumBuilder::new(first, k);
    let mut bag_graphs: Vec<(Graph, Vec<NodeId>)> = vec![(first.clone(), (0..first.n()).collect())];
    for _ in 1..count {
        let comp = &components[rng.random_range(0..components.len())];
        // Pick a random host bag and a random clique inside it.
        let bag_idx = rng.random_range(0..bag_graphs.len());
        let (bag_g, bag_nodes) = &bag_graphs[bag_idx];
        // Search downward from k for a clique size available in both.
        let mut glued = false;
        for size in (1..=k).rev() {
            let host_cliques = find_cliques(bag_g, size);
            let comp_cliques = find_cliques(comp, size);
            if host_cliques.is_empty() || comp_cliques.is_empty() {
                continue;
            }
            let hc = &host_cliques[rng.random_range(0..host_cliques.len())];
            let cc = &comp_cliques[rng.random_range(0..comp_cliques.len())];
            let host_global: Vec<NodeId> = hc.iter().map(|&i| bag_nodes[i]).collect();
            let map = builder
                .glue(comp, &host_global, cc)
                .expect("random glue uses valid ids");
            bag_graphs.push((comp.clone(), map));
            glued = true;
            break;
        }
        assert!(glued, "components must contain at least a single node");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::{diameter_exact, is_connected};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn apex_collapses_diameter() {
        let g = generators::grid(8, 8);
        let base_d = diameter_exact(&g).unwrap();
        let (ag, apex) = add_apex(&g, &(0..g.n()).collect::<Vec<_>>());
        assert_eq!(diameter_exact(&ag), Some(2));
        assert_eq!(ag.degree(apex), 64);
        assert!(base_d > 2);
    }

    #[test]
    fn apex_grid_stride() {
        let (g, apex) = apex_grid(5, 5, 2);
        assert_eq!(g.n(), 26);
        assert_eq!(g.degree(apex), 13);
    }

    #[test]
    fn random_apices_connect_to_each_other() {
        let base = generators::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let (g, apices) = add_random_apices(&base, 3, 0.3, &mut rng);
        assert_eq!(apices.len(), 3);
        assert!(g.has_edge(apices[0], apices[1]));
        assert!(g.has_edge(apices[1], apices[2]));
        assert!(is_connected(&g));
    }

    #[test]
    fn vortex_respects_depth() {
        let g = generators::cycle(12);
        let cycle: Vec<NodeId> = (0..12).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let (vg, rec) = add_vortex(&g, &cycle, 6, 2, &mut rng).unwrap();
        assert_eq!(vg.n(), 18);
        assert!(rec.max_coverage() <= 2);
        assert!(is_connected(&vg));
        // Every internal node's neighbors on the boundary lie in its arc.
        for (i, &va) in rec.internal.iter().enumerate() {
            let arc = rec.arc_nodes(i);
            for (u, _) in vg.neighbors(va) {
                if rec.boundary.contains(&u) {
                    assert!(
                        arc.contains(&u),
                        "neighbor {u} outside arc of internal {va}"
                    );
                }
            }
        }
    }

    #[test]
    fn vortex_rejects_tiny_cycle() {
        let g = generators::path(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(add_vortex(&g, &[0, 1], 2, 2, &mut rng).is_err());
    }

    #[test]
    fn clique_sum_builder_identifies_nodes() {
        let a = generators::complete(4);
        let b = generators::complete(4);
        let mut builder = CliqueSumBuilder::new(&a, 3);
        let map = builder.glue(&b, &[0, 1, 2], &[1, 2, 3]).unwrap();
        let (g, rec) = builder.build();
        assert_eq!(g.n(), 5);
        assert_eq!(map[1], 0);
        assert_eq!(map[2], 1);
        assert_eq!(map[3], 2);
        assert_eq!(rec.bags.len(), 2);
        assert_eq!(rec.links.len(), 1);
        assert_eq!(rec.links[0].2, vec![0, 1, 2]);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "host nodes must form a clique")]
    fn clique_sum_validates_host_clique() {
        let a = generators::path(4);
        let b = generators::complete(3);
        let mut builder = CliqueSumBuilder::new(&a, 2);
        // Nodes 0 and 2 are not adjacent in the path.
        let _ = builder.glue(&b, &[0, 2], &[0, 1]);
    }

    #[test]
    fn clique_finding() {
        let g = generators::complete(5);
        assert_eq!(find_cliques(&g, 1).len(), 5);
        assert_eq!(find_cliques(&g, 2).len(), 10);
        assert_eq!(find_cliques(&g, 3).len(), 10);
        assert_eq!(find_cliques(&g, 4).len(), 5);
        let t = generators::triangulated_grid(3, 3);
        assert_eq!(find_cliques(&t, 4).len(), 0);
        assert_eq!(find_cliques(&t, 3).len(), 8);
    }

    #[test]
    fn random_clique_sum_connected() {
        let comps = vec![
            generators::triangulated_grid(3, 3),
            generators::complete(4),
            generators::cycle(5),
        ];
        let mut rng = StdRng::seed_from_u64(17);
        let (g, rec) = random_clique_sum(&comps, 8, 3, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(rec.bags.len(), 8);
        assert_eq!(rec.links.len(), 7);
        // Bags cover all nodes.
        let mut covered = vec![false; g.n()];
        for bag in &rec.bags {
            for &v in bag {
                covered[v] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }
}

//! Graph family generators.
//!
//! Every family named by the paper has a generator here, and families with
//! non-trivial structure return a *witness record* alongside the graph
//! (embedding, k-tree elimination order, clique-sum decomposition tree,
//! vortex decomposition, apex set). Witness-based shortcut constructions in
//! `minex-core` consume those records; the structure-oblivious construction
//! ignores them, exactly as the paper's distributed algorithm does.

mod adversarial;
mod basic;
mod minor_free;
pub(crate) mod planar;
mod structured;
mod surfaces;

pub use adversarial::{erdos_renyi, lower_bound_family, random_connected, LowerBoundLayout};
pub use basic::{
    binary_tree, comb, complete, complete_bipartite, cycle, hypercube, path, random_tree, spider,
    star, wheel,
};
pub use minor_free::{
    add_apex, add_random_apices, add_vortex, apex_grid, find_cliques, random_clique_sum,
    CliqueSumBuilder, CliqueSumRecord, VortexRecord,
};
pub use planar::{
    apollonian, cylinder, grid, grid_embedded, outerplanar_fan, random_triangulated_grid,
    triangulated_grid, triangulated_grid_embedded, ApollonianRecord,
};
pub use structured::{k_tree, partial_k_tree, series_parallel, KTreeRecord};
pub use surfaces::{toroidal_grid, toroidal_grid_with_rotation, torus_chain};

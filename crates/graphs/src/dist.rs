//! The workspace-wide distance sentinel contract.
//!
//! Every `u64` distance vector in the workspace reserves exactly one value:
//! [`UNREACHED`] (`u64::MAX`) means *no path found*, and nothing else.
//! Finite-distance arithmetic therefore saturates one below the sentinel, at
//! [`DIST_MAX`] (`u64::MAX - 1`): a real but astronomically long path clamps
//! to `DIST_MAX` and stays distinguishable from "unreached" through every
//! downstream pass (rescaling, stretch measurement, tier cross-checks).
//!
//! Before this contract, tiers disagreed on overflow-adjacent weights: a
//! plain `saturating_add` produced `u64::MAX` for a *reachable* node, which
//! `rescale`-style consumers then treated as unreached. All distance math in
//! `traversal::dijkstra`, the congest distance floods, and the `minex-algo`
//! SSSP tiers goes through [`dist_add`] / [`dist_mul`] so the tiers cannot
//! drift apart again.

/// The unique "no path found" sentinel. Nothing else may produce this value.
pub const UNREACHED: u64 = u64::MAX;

/// The largest representable *finite* distance — saturation clamps here,
/// one below [`UNREACHED`], so saturated real paths stay reached.
pub const DIST_MAX: u64 = u64::MAX - 1;

/// Whether `d` denotes a reached node.
#[inline]
pub fn is_reached(d: u64) -> bool {
    d != UNREACHED
}

/// Distance addition under the sentinel contract: [`UNREACHED`] absorbs
/// (no path plus anything is still no path), finite sums saturate at
/// [`DIST_MAX`].
#[inline]
pub fn dist_add(a: u64, b: u64) -> u64 {
    if a == UNREACHED {
        return UNREACHED;
    }
    a.saturating_add(b).min(DIST_MAX)
}

/// Distance scaling under the sentinel contract: [`UNREACHED`] maps to
/// itself, finite products saturate at [`DIST_MAX`].
#[inline]
pub fn dist_mul(a: u64, b: u64) -> u64 {
    if a == UNREACHED {
        return UNREACHED;
    }
    a.saturating_mul(b).min(DIST_MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreached_absorbs() {
        assert_eq!(dist_add(UNREACHED, 0), UNREACHED);
        assert_eq!(dist_add(UNREACHED, 123), UNREACHED);
        assert_eq!(dist_mul(UNREACHED, 7), UNREACHED);
        assert!(!is_reached(UNREACHED));
    }

    #[test]
    fn finite_math_saturates_below_sentinel() {
        assert_eq!(dist_add(1, 2), 3);
        assert_eq!(dist_add(DIST_MAX, 1), DIST_MAX);
        assert_eq!(dist_add(u64::MAX - 5, 100), DIST_MAX);
        assert_eq!(dist_mul(3, 4), 12);
        assert_eq!(dist_mul(1 << 40, 1 << 40), DIST_MAX);
        assert!(is_reached(DIST_MAX));
    }

    #[test]
    fn saturated_stays_distinguishable() {
        // The whole point of the contract: a saturated real path is not the
        // sentinel, even after further hops or rescaling.
        let d = dist_add(DIST_MAX, 42);
        assert!(is_reached(d));
        assert!(is_reached(dist_mul(d, 1 << 20)));
    }
}

//! # minex-graphs
//!
//! Graph substrate for the `minex` reproduction of *“Minor Excluded Network
//! Families Admit Fast Distributed Algorithms”* (Haeupler, Li, Zuzic;
//! PODC 2018).
//!
//! The crate provides:
//!
//! * [`Graph`] / [`WeightedGraph`] — immutable simple graphs with dense node
//!   and edge ids;
//! * [`generators`] — every graph family the paper names (planar, bounded
//!   genus, apex, vortex, clique-sums, series-parallel, k-trees, the
//!   `Ω̃(√n)` lower-bound family), each emitting a structure witness;
//! * [`embedding`] — rotation systems and straight-line lattice embeddings,
//!   with face tracing and Euler-genus computation;
//! * [`geometry`] — exact integer polygon primitives for the Lemma 7
//!   combinatorial-gate construction;
//! * [`traversal`], [`UnionFind`], [`minor`], [`weights`] — supporting
//!   algorithms.
//!
//! ## Example
//!
//! ```
//! use minex_graphs::{generators, traversal};
//!
//! let g = generators::triangulated_grid(8, 8);
//! assert!(traversal::is_connected(&g));
//! let d = traversal::diameter_exact(&g).expect("connected");
//! assert!(d <= 14);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod embedding;
pub mod generators;
pub mod geometry;
mod graph;
pub mod minor;
pub mod traversal;
mod union_find;
pub mod weights;

pub use graph::{EdgeId, Graph, GraphBuilder, GraphError, NodeId, WeightedGraph};
pub use union_find::UnionFind;
pub use weights::WeightModel;

//! # minex-graphs
//!
//! Graph substrate for the `minex` reproduction of *“Minor Excluded Network
//! Families Admit Fast Distributed Algorithms”* (Haeupler, Li, Zuzic;
//! PODC 2018).
//!
//! The crate provides:
//!
//! * [`Graph`] / [`WeightedGraph`] — immutable simple graphs with dense node
//!   and edge ids, stored in flat CSR arrays (`u32` offsets/targets/edge
//!   ids, ≈24 bytes per edge) so million-node instances stay cache-resident;
//! * [`DeltaGraph`] / [`EdgeMutation`] — a mutable delta-overlay for edge
//!   churn (tombstone bitmap + sorted insert buffer, threshold-triggered
//!   compaction back into flat CSR), sharing the read surface with [`Graph`]
//!   through the object-safe [`GraphView`] trait;
//! * [`mod@reference`] — the pre-CSR nested-`Vec` adjacency list and the
//!   pre-bucket `BinaryHeap` Dijkstra, kept as differential-testing and
//!   benchmarking baselines;
//! * [`mod@dist`] — the workspace-wide `u64` distance sentinel contract
//!   ([`dist::UNREACHED`] is the only "no path" value; finite math
//!   saturates at [`dist::DIST_MAX`]);
//! * [`generators`] — every graph family the paper names (planar, bounded
//!   genus, apex, vortex, clique-sums, series-parallel, k-trees, the
//!   `Ω̃(√n)` lower-bound family), each emitting a structure witness;
//! * [`embedding`] — rotation systems and straight-line lattice embeddings,
//!   with face tracing and Euler-genus computation;
//! * [`geometry`] — exact integer polygon primitives for the Lemma 7
//!   combinatorial-gate construction;
//! * [`traversal`], [`UnionFind`], [`minor`], [`weights`] — supporting
//!   algorithms.
//!
//! ## Example
//!
//! ```
//! use minex_graphs::{generators, traversal};
//!
//! let g = generators::triangulated_grid(8, 8);
//! assert!(traversal::is_connected(&g));
//! let d = traversal::diameter_exact(&g).expect("connected");
//! assert!(d <= 14);
//! ```
//!
//! ## CSR access
//!
//! Adjacency is compressed sparse row: a node's neighbors and incident edge
//! ids are two aligned `u32` slices, so hot loops walk raw memory instead
//! of chasing per-node `Vec`s. The iterator API sits on top of the same
//! slices.
//!
//! ```text
//! offsets:  [ 0 | 2 | 5 | ... | 2m ]      (n + 1 row starts)
//! targets:  [ v v | v v v | ...... ]      (2m entries, sorted per row)
//! edge_ids: [ e e | e e e | ...... ]      (2m entries, aligned)
//! edges:    [ (u,v) (u,v) ........ ]      (m canonical pairs, u < v, sorted)
//! ```
//!
//! The whole graph costs `24m + 4n + O(1)` heap bytes (≈ 24 bytes/edge on
//! meshes); `u32` ids cap instances at `n < 2³²` nodes, `m ≤ 2³¹` edges.
//! Edge ids are the lexicographic rank of the canonical endpoint pair, on
//! every construction path.
//!
//! ```
//! use minex_graphs::{Graph, NodeId};
//!
//! let g = Graph::from_edges(4, [(0, 1), (0, 2), (2, 3)])?;
//! // Zero-allocation slice access…
//! assert_eq!(g.neighbor_targets(0), &[1, 2]);
//! assert_eq!(g.neighbor_edge_ids(0), &[0, 1]);
//! // …agrees with the iterator view.
//! let via_iter: Vec<NodeId> = g.neighbors(0).map(|(w, _)| w).collect();
//! assert_eq!(via_iter, vec![1, 2]);
//! // Edge ids are the lexicographic rank of the canonical endpoint pair.
//! assert_eq!(g.endpoints(2), (2, 3));
//! assert_eq!(g.heap_bytes(), 4 * 5 + 4 * 6 + 4 * 6 + 8 * 3);
//! # Ok::<(), minex_graphs::GraphError>(())
//! ```
//!
//! Large deterministic generators build straight into CSR through
//! [`Graph::from_sorted_edge_stream`] (two passes over a restartable edge
//! stream, no intermediate edge list); RNG-driven families use
//! [`Graph::from_edge_stream`], which accepts any emission order.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod delta;
pub mod dist;
pub mod embedding;
pub mod generators;
pub mod geometry;
mod graph;
pub mod minor;
pub mod reference;
pub mod traversal;
mod union_find;
mod view;
pub mod weights;

pub use delta::{DeltaGraph, EdgeMutation, ParseEdgeMutationError};
pub use graph::{
    EdgeId, Graph, GraphBuilder, GraphError, NodeId, WeightedGraph, MAX_EDGES, MAX_NODES,
};
pub use union_find::UnionFind;
pub use view::GraphView;
pub use weights::WeightModel;

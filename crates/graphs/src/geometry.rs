//! Exact integer lattice geometry.
//!
//! The combinatorial-gate construction of Lemma 7 reasons about regions
//! enclosed by cycles of a plane graph. With straight-line embeddings on the
//! integer lattice, those regions are simple lattice polygons, and all
//! containment questions can be answered with exact `i64`/`i128` arithmetic —
//! no floating point, no epsilons.

/// Relation of a point to a closed polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    /// Strictly outside the polygon.
    Outside,
    /// On the polygon's boundary.
    Boundary,
    /// Strictly inside the polygon.
    Inside,
}

/// Twice the signed area of the triangle `(o, a, b)` (positive when `o→a→b`
/// turns counterclockwise).
#[inline]
pub fn cross(o: (i64, i64), a: (i64, i64), b: (i64, i64)) -> i128 {
    let (ox, oy) = o;
    let (ax, ay) = a;
    let (bx, by) = b;
    (ax - ox) as i128 * (by - oy) as i128 - (ay - oy) as i128 * (bx - ox) as i128
}

/// Whether `p` lies on the closed segment `[a, b]`.
pub fn on_segment(a: (i64, i64), b: (i64, i64), p: (i64, i64)) -> bool {
    if cross(a, b, p) != 0 {
        return false;
    }
    p.0 >= a.0.min(b.0) && p.0 <= a.0.max(b.0) && p.1 >= a.1.min(b.1) && p.1 <= a.1.max(b.1)
}

/// Classifies `p` against the simple polygon `poly` (vertices in order,
/// implicitly closed). Uses exact even–odd ray casting.
///
/// Degenerate "polygons" with fewer than 3 vertices are handled as follows:
/// a 2-gon is the closed segment between its endpoints (Boundary or Outside),
/// a 1-gon is a single point, and the empty polygon contains nothing. This
/// matches the paper's footnote 3, where the cycle between a pair of
/// identical extremal edges degenerates to the edge itself.
///
/// # Examples
///
/// ```
/// use minex_graphs::geometry::{point_in_polygon, Containment};
/// let square = [(0, 0), (4, 0), (4, 4), (0, 4)];
/// assert_eq!(point_in_polygon(&square, (2, 2)), Containment::Inside);
/// assert_eq!(point_in_polygon(&square, (4, 2)), Containment::Boundary);
/// assert_eq!(point_in_polygon(&square, (5, 2)), Containment::Outside);
/// ```
pub fn point_in_polygon(poly: &[(i64, i64)], p: (i64, i64)) -> Containment {
    match poly.len() {
        0 => return Containment::Outside,
        1 => {
            return if poly[0] == p {
                Containment::Boundary
            } else {
                Containment::Outside
            }
        }
        2 => {
            return if on_segment(poly[0], poly[1], p) {
                Containment::Boundary
            } else {
                Containment::Outside
            }
        }
        _ => {}
    }
    let n = poly.len();
    for i in 0..n {
        if on_segment(poly[i], poly[(i + 1) % n], p) {
            return Containment::Boundary;
        }
    }
    // Even-odd rule with a ray towards +x. The half-open test on y avoids
    // double counting at vertices.
    let mut inside = false;
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        if (a.1 > p.1) != (b.1 > p.1) {
            // x coordinate of the edge at height p.y, compared to p.x with
            // exact arithmetic: intersect_x - p.x has the sign of
            // ((b.x-a.x)(p.y-a.y) - (p.x-a.x)(b.y-a.y)) / (b.y-a.y).
            let num = (b.0 - a.0) as i128 * (p.1 - a.1) as i128
                - (p.0 - a.0) as i128 * (b.1 - a.1) as i128;
            let den = (b.1 - a.1) as i128;
            if (num > 0 && den > 0) || (num < 0 && den < 0) {
                inside = !inside;
            }
        }
    }
    if inside {
        Containment::Inside
    } else {
        Containment::Outside
    }
}

/// Twice the absolute area of the polygon (shoelace formula). Degenerate
/// polygons have area 0.
pub fn polygon_area2(poly: &[(i64, i64)]) -> i128 {
    if poly.len() < 3 {
        return 0;
    }
    let n = poly.len();
    let mut s: i128 = 0;
    for i in 0..n {
        let (x1, y1) = poly[i];
        let (x2, y2) = poly[(i + 1) % n];
        s += x1 as i128 * y2 as i128 - x2 as i128 * y1 as i128;
    }
    s.abs()
}

/// Whether a closed unit-ish segment `[a, b]` lies entirely within the closed
/// polygon, assuming no polygon vertex lies in the segment's relative
/// interior (true for lattice-neighbor segments). Checks both endpoints and
/// the midpoint (at doubled coordinates for exactness).
pub fn segment_in_polygon(poly: &[(i64, i64)], a: (i64, i64), b: (i64, i64)) -> bool {
    if point_in_polygon(poly, a) == Containment::Outside
        || point_in_polygon(poly, b) == Containment::Outside
    {
        return false;
    }
    // Midpoint test in doubled coordinates.
    let scaled: Vec<(i64, i64)> = poly.iter().map(|&(x, y)| (2 * x, 2 * y)).collect();
    let mid = (a.0 + b.0, a.1 + b.1);
    point_in_polygon(&scaled, mid) != Containment::Outside
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQUARE: [(i64, i64); 4] = [(0, 0), (4, 0), (4, 4), (0, 4)];

    #[test]
    fn cross_signs() {
        assert!(cross((0, 0), (1, 0), (0, 1)) > 0);
        assert!(cross((0, 0), (0, 1), (1, 0)) < 0);
        assert_eq!(cross((0, 0), (1, 1), (2, 2)), 0);
    }

    #[test]
    fn segment_membership() {
        assert!(on_segment((0, 0), (4, 4), (2, 2)));
        assert!(!on_segment((0, 0), (4, 4), (2, 3)));
        assert!(!on_segment((0, 0), (4, 4), (5, 5)));
        assert!(on_segment((0, 0), (4, 4), (0, 0)));
    }

    #[test]
    fn square_containment() {
        assert_eq!(point_in_polygon(&SQUARE, (1, 3)), Containment::Inside);
        assert_eq!(point_in_polygon(&SQUARE, (0, 0)), Containment::Boundary);
        assert_eq!(point_in_polygon(&SQUARE, (2, 0)), Containment::Boundary);
        assert_eq!(point_in_polygon(&SQUARE, (-1, 2)), Containment::Outside);
        assert_eq!(point_in_polygon(&SQUARE, (2, 5)), Containment::Outside);
    }

    #[test]
    fn concave_polygon() {
        // A "U" shape.
        let u = [
            (0, 0),
            (6, 0),
            (6, 4),
            (4, 4),
            (4, 2),
            (2, 2),
            (2, 4),
            (0, 4),
        ];
        assert_eq!(point_in_polygon(&u, (1, 3)), Containment::Inside);
        assert_eq!(point_in_polygon(&u, (3, 3)), Containment::Outside);
        assert_eq!(point_in_polygon(&u, (5, 3)), Containment::Inside);
        assert_eq!(point_in_polygon(&u, (3, 1)), Containment::Inside);
        assert_eq!(point_in_polygon(&u, (3, 2)), Containment::Boundary);
    }

    #[test]
    fn degenerate_polygons() {
        assert_eq!(point_in_polygon(&[], (0, 0)), Containment::Outside);
        assert_eq!(point_in_polygon(&[(1, 1)], (1, 1)), Containment::Boundary);
        assert_eq!(point_in_polygon(&[(1, 1)], (1, 2)), Containment::Outside);
        let seg = [(0, 0), (3, 3)];
        assert_eq!(point_in_polygon(&seg, (2, 2)), Containment::Boundary);
        assert_eq!(point_in_polygon(&seg, (2, 1)), Containment::Outside);
    }

    #[test]
    fn areas() {
        assert_eq!(polygon_area2(&SQUARE), 32);
        assert_eq!(polygon_area2(&[(0, 0), (1, 0)]), 0);
        let tri = [(0, 0), (4, 0), (0, 4)];
        assert_eq!(polygon_area2(&tri), 16);
    }

    #[test]
    fn segments_in_polygon() {
        assert!(segment_in_polygon(&SQUARE, (1, 1), (2, 1)));
        assert!(segment_in_polygon(&SQUARE, (0, 0), (1, 0))); // along boundary
        assert!(!segment_in_polygon(&SQUARE, (4, 2), (5, 2)));
        // Pinch case: both endpoints on the boundary of a U but the segment
        // crosses the notch outside.
        let u = [
            (0, 0),
            (6, 0),
            (6, 4),
            (4, 4),
            (4, 2),
            (2, 2),
            (2, 4),
            (0, 4),
        ];
        assert!(!segment_in_polygon(&u, (2, 4), (4, 4)));
    }
}

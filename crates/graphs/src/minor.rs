//! Minor operations and recognizers for small excluded minors.
//!
//! The paper's families are *generated together with a structure witness*,
//! so exact `H`-minor testing for arbitrary `H` is not needed (and no
//! practical algorithm exists). What we do provide:
//!
//! * edge contraction / node-set contraction — the minor operations used by
//!   the cell-assignment peeling argument (Lemma 5);
//! * exact recognizers for the two small excluded minors the paper names:
//!   `K3`-minor-free (forests) and `K4`-minor-free (series-parallel /
//!   treewidth ≤ 2);
//! * the Euler edge-count *necessary* condition for planarity and bounded
//!   genus, used as a cheap sanity check on generators.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::union_find::UnionFind;

/// Contracts each listed group of nodes to a single node (groups are merged
/// transitively if they overlap), drops the resulting self-loops, and
/// deduplicates parallel edges.
///
/// Returns the contracted graph together with `map[v] = new id of v`.
///
/// # Panics
///
/// Panics if any node id is out of range.
pub fn contract_groups(g: &Graph, groups: &[Vec<NodeId>]) -> (Graph, Vec<NodeId>) {
    let mut uf = UnionFind::new(g.n());
    for group in groups {
        for w in group.windows(2) {
            assert!(w[0] < g.n() && w[1] < g.n(), "node out of range");
            uf.union(w[0], w[1]);
        }
        if let Some(&v) = group.first() {
            assert!(v < g.n(), "node out of range");
        }
    }
    let (labels, k) = uf.labels();
    let mut b = GraphBuilder::new(k);
    for (_, u, v) in g.edges() {
        let (nu, nv) = (labels[u], labels[v]);
        if nu != nv {
            b.add_edge(nu, nv).expect("contracted edge valid");
        }
    }
    (b.build(), labels)
}

/// Contracts a single edge `{u, v}` (they need not actually be adjacent; the
/// operation is "identify `u` and `v`").
pub fn contract_pair(g: &Graph, u: NodeId, v: NodeId) -> (Graph, Vec<NodeId>) {
    contract_groups(g, &[vec![u, v]])
}

/// Whether `g` is a forest — equivalently, `K3`-minor-free.
pub fn is_forest(g: &Graph) -> bool {
    let (_, components) = crate::traversal::components(g);
    // A forest with c components has exactly n - c edges.
    g.m() + components == g.n()
}

/// Whether `g` has treewidth at most 2 — equivalently, is `K4`-minor-free
/// (every series-parallel graph satisfies this).
///
/// Uses the classic reduction: repeatedly remove a vertex of degree ≤ 2
/// (bridging its two neighbors when it has degree exactly 2); the graph has
/// treewidth ≤ 2 iff everything can be eliminated.
pub fn is_k4_minor_free(g: &Graph) -> bool {
    let n = g.n();
    // Mutable adjacency sets.
    let mut adj: Vec<std::collections::BTreeSet<NodeId>> = vec![Default::default(); n];
    for (_, u, v) in g.edges() {
        adj[u].insert(v);
        adj[v].insert(u);
    }
    let mut alive = vec![true; n];
    let mut queue: Vec<NodeId> = (0..n).filter(|&v| adj[v].len() <= 2).collect();
    let mut eliminated = 0;
    while let Some(v) = queue.pop() {
        if !alive[v] || adj[v].len() > 2 {
            continue;
        }
        let neighbors: Vec<NodeId> = adj[v].iter().copied().collect();
        alive[v] = false;
        eliminated += 1;
        for &u in &neighbors {
            adj[u].remove(&v);
        }
        if let [a, b] = neighbors[..] {
            // Smooth: connect the two neighbors (deduplicated by the set).
            adj[a].insert(b);
            adj[b].insert(a);
        }
        for &u in &neighbors {
            if alive[u] && adj[u].len() <= 2 {
                queue.push(u);
            }
        }
        adj[v].clear();
    }
    eliminated == n
}

/// The Euler bound `m ≤ 3n - 6 + 6g` — a necessary condition for a simple
/// graph with `n ≥ 3` to embed in an orientable surface of genus `g`.
pub fn satisfies_genus_edge_bound(g: &Graph, genus: usize) -> bool {
    if g.n() < 3 {
        return true;
    }
    g.m() as i64 <= 3 * g.n() as i64 - 6 + 6 * genus as i64
}

/// The planarity edge bound `m ≤ 3n - 6` (necessary, not sufficient).
pub fn satisfies_planar_edge_bound(g: &Graph) -> bool {
    satisfies_genus_edge_bound(g, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn contraction_merges_and_drops_loops() {
        let g = generators::cycle(4);
        let (c, map) = contract_pair(&g, 0, 1);
        assert_eq!(c.n(), 3);
        // Cycle 0-1-2-3-0 with 0=1 becomes triangle {01}-2-3.
        assert_eq!(c.m(), 3);
        assert_eq!(map[0], map[1]);
    }

    #[test]
    fn contraction_of_triangle_to_point() {
        let g = generators::complete(3);
        let (c, _) = contract_groups(&g, &[vec![0, 1, 2]]);
        assert_eq!(c.n(), 1);
        assert_eq!(c.m(), 0);
    }

    #[test]
    fn overlapping_groups_merge() {
        let g = generators::path(5);
        let (c, map) = contract_groups(&g, &[vec![0, 1], vec![1, 2]]);
        assert_eq!(c.n(), 3);
        assert_eq!(map[0], map[2]);
        assert_eq!(c.m(), 2);
    }

    #[test]
    fn forests_are_recognized() {
        assert!(is_forest(&generators::path(10)));
        assert!(is_forest(&generators::star(7)));
        assert!(!is_forest(&generators::cycle(3)));
        assert!(is_forest(&Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap()));
    }

    #[test]
    fn series_parallel_recognition() {
        assert!(is_k4_minor_free(&generators::path(10)));
        assert!(is_k4_minor_free(&generators::cycle(10)));
        assert!(!is_k4_minor_free(&generators::complete(4)));
        assert!(is_k4_minor_free(&generators::complete(3)));
        // K4 with one subdivided edge still has a K4 minor.
        let sub =
            Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 4), (4, 3)]).unwrap();
        assert!(!is_k4_minor_free(&sub));
        // Wheels beyond W3 contain K4.
        assert!(!is_k4_minor_free(&generators::wheel(6)));
    }

    #[test]
    fn grid_is_k4_minor_free_only_when_thin() {
        assert!(is_k4_minor_free(&generators::grid(2, 10)));
        assert!(!is_k4_minor_free(&generators::grid(3, 3)));
    }

    #[test]
    fn euler_bounds() {
        assert!(satisfies_planar_edge_bound(&generators::grid(5, 5)));
        assert!(!satisfies_planar_edge_bound(&generators::complete(5)));
        assert!(satisfies_genus_edge_bound(&generators::complete(5), 1));
        assert!(satisfies_planar_edge_bound(&generators::complete(2)));
    }
}

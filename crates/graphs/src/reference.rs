//! The nested-`Vec` adjacency-list graph the CSR core replaced, kept as an
//! executable specification.
//!
//! [`AdjListGraph`] is (a minimal cut of) the representation `minex`
//! shipped before the CSR rewrite: one heap-allocated `Vec<(node, edge)>`
//! per node plus an endpoint list. It exists for two jobs only:
//!
//! * the **differential property-test battery**
//!   (`crates/graphs/tests/proptest_csr.rs`) checks every [`Graph`]
//!   accessor against this implementation on random edge lists;
//! * the **E15 scale experiment** uses it as the memory/throughput baseline
//!   the CSR core is measured against.
//!
//! It is deliberately naive — per-node allocations, `usize` ids, no
//! streaming construction — and must stay that way: its value is being
//! obviously correct and representative of the pre-CSR cost model, not
//! being fast.
//!
//! [`dijkstra_heap`] plays the same role for the bucket-queue Dijkstra in
//! [`traversal`](crate::traversal): the pre-bucket `BinaryHeap`
//! implementation, kept verbatim as the differential oracle and as the
//! fallback for weight ranges the bucket ring cannot host. This module is
//! the *only* place in the result-affecting crates where `BinaryHeap` is
//! allowed (minex-lint rule D007 enforces that).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dist::{dist_add, UNREACHED};
use crate::graph::{EdgeId, Graph, GraphError, NodeId, WeightedGraph};
use crate::traversal::DijkstraResult;

/// Sequential Dijkstra on a binary heap — the implementation
/// [`traversal::dijkstra`](crate::traversal::dijkstra) shipped before the
/// bucket-queue rewrite, preserved bit for bit (modulo the shared
/// [`dist`](crate::dist) sentinel arithmetic).
///
/// Two jobs: the differential oracle the bucket queue is property-tested
/// against (`crates/graphs/tests/proptest_dijkstra.rs`), and the fallback
/// `traversal::dijkstra` takes when a zero weight or a weight above the
/// ring cap makes buckets degenerate. Ties are broken by node id: the heap
/// pops the smallest `(distance, node)` pair.
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn dijkstra_heap(wg: &WeightedGraph, src: NodeId) -> DijkstraResult {
    let g = wg.graph();
    assert!(src < g.n(), "source {src} out of range");
    let mut dist = vec![UNREACHED; g.n()];
    let mut parent = vec![None; g.n()];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (&w, &e) in g.neighbor_targets(v).iter().zip(g.neighbor_edge_ids(v)) {
            let w = w as NodeId;
            let cand = dist_add(d, wg.weight(e as usize));
            if cand < dist[w] {
                dist[w] = cand;
                parent[w] = Some(v);
                heap.push(Reverse((cand, w)));
            }
        }
    }
    DijkstraResult { dist, parent }
}

/// A simple undirected graph stored as one sorted `Vec<(neighbor, edge)>`
/// per node — the pre-CSR representation, preserved as a differential
/// baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjListGraph {
    /// `adj[v]` lists `(neighbor, edge id)` pairs, sorted by neighbor.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// `edges[e] = (u, v)` with `u < v`, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

impl AdjListGraph {
    /// Builds from an edge list with the same contract as
    /// [`Graph::from_edges`]: endpoints canonicalized, duplicates
    /// deduplicated, edge ids assigned by lexicographic rank.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]
    /// exactly when [`Graph::from_edges`] would.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut list: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            for w in [u, v] {
                if w >= n {
                    return Err(GraphError::NodeOutOfRange { node: w, n });
                }
            }
            list.push((u.min(v), u.max(v)));
        }
        list.sort_unstable();
        list.dedup();
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
        for (e, &(u, v)) in list.iter().enumerate() {
            adj[u].push((v, e));
            adj[v].push((u, e));
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        Ok(AdjListGraph { adj, edges: list })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// `(neighbor, edge id)` pairs of `v`, sorted by neighbor.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[v].iter().copied()
    }

    /// The endpoints `(u, v)` of edge `e`, with `u < v`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// The edge id between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n() || v >= self.n() {
            return None;
        }
        self.adj[u].iter().find(|&&(w, _)| w == v).map(|&(_, e)| e)
    }

    /// Whether an edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The subgraph induced by `keep` with the same contract as
    /// [`Graph::induced_subgraph`].
    ///
    /// # Panics
    ///
    /// Panics if a kept node is out of range.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (AdjListGraph, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.n()];
        let mut sorted: Vec<NodeId> = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (next, &v) in sorted.iter().enumerate() {
            assert!(v < self.n(), "node {v} out of range");
            map[v] = Some(next);
        }
        let edges = self.edges.iter().filter_map(|&(u, v)| {
            if let (Some(nu), Some(nv)) = (map[u], map[v]) {
                Some((nu, nv))
            } else {
                None
            }
        });
        let sub = AdjListGraph::from_edges(sorted.len(), edges).expect("mapped edges are valid");
        (sub, map)
    }

    /// Heap bytes of the nested representation: the per-node `Vec` headers
    /// plus `(usize, usize)` adjacency entries plus the endpoint list —
    /// the pre-CSR memory model E15 compares against. Capacity slack is
    /// excluded, so this is a *lower bound* on what the old layout paid.
    pub fn heap_bytes(&self) -> usize {
        let vec_header = std::mem::size_of::<Vec<(NodeId, EdgeId)>>();
        let entry = std::mem::size_of::<(NodeId, EdgeId)>();
        self.adj.len() * vec_header
            + self.adj.iter().map(|row| row.len() * entry).sum::<usize>()
            + self.edges.len() * std::mem::size_of::<(NodeId, NodeId)>()
    }
}

/// Converts a CSR [`Graph`] into the reference representation (used by the
/// E15 baseline so both sides describe the *same* graph).
impl From<&Graph> for AdjListGraph {
    fn from(g: &Graph) -> Self {
        AdjListGraph::from_edges(g.n(), g.edges().map(|(_, u, v)| (u, v)))
            .expect("a valid Graph converts losslessly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_small_example() {
        let edges = [(0, 1), (2, 1), (0, 3)];
        let r = AdjListGraph::from_edges(4, edges).unwrap();
        let g = Graph::from_edges(4, edges).unwrap();
        assert_eq!((r.n(), r.m()), (g.n(), g.m()));
        for v in 0..4 {
            assert_eq!(
                r.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>()
            );
        }
        assert_eq!(r.endpoints(1), g.endpoints(1));
        assert_eq!(r.edge_between(1, 2), g.edge_between(1, 2));
    }

    #[test]
    fn reference_rejects_bad_input_like_graph() {
        assert_eq!(
            AdjListGraph::from_edges(2, [(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            AdjListGraph::from_edges(2, [(0, 7)]),
            Err(GraphError::NodeOutOfRange { node: 7, n: 2 })
        );
    }

    #[test]
    fn heap_bytes_dwarf_csr() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let r = AdjListGraph::from(&g);
        assert!(r.heap_bytes() > g.heap_bytes());
    }
}

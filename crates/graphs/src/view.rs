//! [`GraphView`]: the object-safe read surface shared by the frozen CSR
//! [`Graph`] and the mutable [`DeltaGraph`](crate::DeltaGraph) overlay.
//!
//! Everything downstream of the graph substrate — BFS traversal, the
//! CONGEST simulator's `Ctx::broadcast`, `measure_quality` — consumes
//! adjacency through exactly four primitive accessors (`degree`,
//! `neighbor_targets`, `neighbor_edge_ids`, `endpoints`). This trait pins
//! that contract down so those consumers run unmodified on either
//! representation: the slices returned are borrowed, allocation-free rows,
//! sorted ascending by target and aligned pairwise, just like the raw CSR
//! arrays.
//!
//! Edge ids under a view are *dense for [`Graph`]* (`0..m`) but merely
//! *bounded for overlays*: a [`DeltaGraph`](crate::DeltaGraph) hands out
//! provisional ids past the base graph's range and retires tombstoned ids
//! without reuse, so consumers that index per-edge arrays must size them by
//! [`edge_id_bound`](GraphView::edge_id_bound), not [`m`](GraphView::m).

use crate::graph::{EdgeId, Graph, NodeId};

/// Object-safe, allocation-free read access to an undirected simple graph.
///
/// Implementations must uphold the CSR row contract:
///
/// * [`neighbor_targets`](Self::neighbor_targets) is sorted ascending and
///   aligned index-by-index with
///   [`neighbor_edge_ids`](Self::neighbor_edge_ids);
/// * every edge id appearing in a row is live, below
///   [`edge_id_bound`](Self::edge_id_bound), and round-trips through
///   [`endpoints`](Self::endpoints);
/// * adjacency is symmetric (`w ∈ row(v)` iff `v ∈ row(w)`, same edge id).
///
/// The trait is object-safe on purpose: the CONGEST runtime stores a
/// `&dyn GraphView` so `NodeProgram` implementations need no generic
/// plumbing.
pub trait GraphView: std::fmt::Debug {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Number of **live** edges.
    fn m(&self) -> usize;

    /// Exclusive upper bound on the edge ids this view can hand out.
    ///
    /// Equal to [`m`](Self::m) for a frozen [`Graph`]; an overlay with
    /// provisional or retired ids reports a larger bound. Size per-edge
    /// scratch arrays by this, never by `m`.
    fn edge_id_bound(&self) -> usize {
        self.m()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    fn degree(&self, v: NodeId) -> usize;

    /// The neighbors of `v` as a raw sorted `u32` slice, aligned with
    /// [`neighbor_edge_ids`](Self::neighbor_edge_ids).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    fn neighbor_targets(&self, v: NodeId) -> &[u32];

    /// The edge ids incident to `v`, aligned with
    /// [`neighbor_targets`](Self::neighbor_targets).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    fn neighbor_edge_ids(&self, v: NodeId) -> &[u32];

    /// The endpoints `(u, v)` of live edge `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a live edge id of this view.
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId);

    /// Given edge `e` incident to `v`, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not live or `v` is not an endpoint of `e`.
    fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Returns the edge id between `u` and `v`, if any. Out-of-range
    /// endpoints yield `None`.
    fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n() || v >= self.n() {
            return None;
        }
        // Search from the lower-degree endpoint; rows are sorted.
        let (from, to) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbor_targets(from)
            .binary_search(&(to as u32))
            .ok()
            .map(|i| self.neighbor_edge_ids(from)[i] as EdgeId)
    }

    /// Whether an edge `{u, v}` exists.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }
}

impl GraphView for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }

    #[inline]
    fn m(&self) -> usize {
        Graph::m(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn neighbor_targets(&self, v: NodeId) -> &[u32] {
        Graph::neighbor_targets(self, v)
    }

    #[inline]
    fn neighbor_edge_ids(&self, v: NodeId) -> &[u32] {
        Graph::neighbor_edge_ids(self, v)
    }

    #[inline]
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        Graph::endpoints(self, e)
    }

    #[inline]
    fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        Graph::edge_between(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap()
    }

    #[test]
    fn view_delegates_to_csr_accessors() {
        let g = sample();
        let v: &dyn GraphView = &g;
        assert_eq!(v.n(), g.n());
        assert_eq!(v.m(), g.m());
        assert_eq!(v.edge_id_bound(), g.m());
        for node in 0..g.n() {
            assert_eq!(v.degree(node), g.degree(node));
            assert_eq!(v.neighbor_targets(node), g.neighbor_targets(node));
            assert_eq!(v.neighbor_edge_ids(node), g.neighbor_edge_ids(node));
        }
        for e in 0..g.m() {
            assert_eq!(v.endpoints(e), g.endpoints(e));
            let (a, b) = g.endpoints(e);
            assert_eq!(v.other_endpoint(e, a), b);
        }
    }

    #[test]
    fn provided_edge_between_matches_inherent() {
        let g = sample();
        let v: &dyn GraphView = &g;
        for u in 0..g.n() + 2 {
            for w in 0..g.n() + 2 {
                assert_eq!(v.edge_between(u, w), g.edge_between(u, w), "({u},{w})");
                assert_eq!(v.has_edge(u, w), g.has_edge(u, w));
            }
        }
    }
}

//! Breadth-first search, connectivity, and distance utilities.
//!
//! The unweighted traversals are generic over [`GraphView`], so they run
//! unmodified on the frozen CSR [`Graph`](crate::Graph) and on the
//! [`DeltaGraph`](crate::DeltaGraph) churn overlay. [`dijkstra`] stays on
//! [`WeightedGraph`] (weights are indexed by dense CSR edge ids) and runs on
//! a monotone bucket queue whenever the weight range permits, falling back
//! to the preserved heap reference
//! ([`reference::dijkstra_heap`](crate::reference::dijkstra_heap)) otherwise.

use std::collections::VecDeque;

use crate::dist::{dist_add, UNREACHED};
use crate::graph::{NodeId, WeightedGraph};
use crate::view::GraphView;

/// The result of a (multi-source) BFS: distances and BFS-tree parents.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the nearest source, or `usize::MAX`
    /// if `v` is unreachable.
    pub dist: Vec<usize>,
    /// `parent[v]` is the BFS-tree parent, `None` for sources and unreachable
    /// nodes.
    pub parent: Vec<Option<NodeId>>,
    /// `parent_edge[v]` is the edge id used to reach `v`, aligned with
    /// `parent`.
    pub parent_edge: Vec<Option<usize>>,
    /// `source_of[v]` is the source that reached `v` first (ties broken by
    /// queue order, i.e. by source order then node id), or `usize::MAX` when
    /// unreachable. This realizes the “concurrent BFS” cell partition used in
    /// Section 2.3.3 of the paper.
    pub source_of: Vec<usize>,
    /// Nodes in visit order (sources first).
    pub order: Vec<NodeId>,
}

impl BfsResult {
    /// Whether node `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v] != usize::MAX
    }

    /// The largest finite distance.
    pub fn eccentricity(&self) -> usize {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// BFS from a single source.
///
/// # Panics
///
/// Panics if `src >= g.n()`.
///
/// # Examples
///
/// ```
/// use minex_graphs::{generators, traversal};
/// let g = generators::path(5);
/// let bfs = traversal::bfs(&g, 0);
/// assert_eq!(bfs.dist[4], 4);
/// ```
pub fn bfs<G: GraphView + ?Sized>(g: &G, src: NodeId) -> BfsResult {
    multi_source_bfs(g, &[src])
}

/// BFS from several sources simultaneously.
///
/// Each node is labelled with the source whose wavefront reaches it first,
/// which yields the concurrent-BFS *cell partition* of Section 2.3.3.
///
/// # Panics
///
/// Panics if any source is out of range or `sources` is empty while the graph
/// is non-empty (an empty graph with no sources is fine).
pub fn multi_source_bfs<G: GraphView + ?Sized>(g: &G, sources: &[NodeId]) -> BfsResult {
    let n = g.n();
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut source_of = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for (i, &s) in sources.iter().enumerate() {
        assert!(s < n, "source {s} out of range");
        if dist[s] == usize::MAX {
            dist[s] = 0;
            source_of[s] = i;
            queue.push_back(s);
            order.push(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        // Walk the raw CSR row: the hot loop of every BFS in the workspace.
        for (&w, &e) in g.neighbor_targets(v).iter().zip(g.neighbor_edge_ids(v)) {
            let w = w as NodeId;
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                parent[w] = Some(v);
                parent_edge[w] = Some(e as usize);
                source_of[w] = source_of[v];
                queue.push_back(w);
                order.push(w);
            }
        }
    }
    BfsResult {
        dist,
        parent,
        parent_edge,
        source_of,
        order,
    }
}

/// Whether the graph is connected. Empty graphs count as connected.
pub fn is_connected<G: GraphView + ?Sized>(g: &G) -> bool {
    if g.n() == 0 {
        return true;
    }
    bfs(g, 0).order.len() == g.n()
}

/// Connected components: returns `(component_of, component_count)`.
pub fn components<G: GraphView + ?Sized>(g: &G) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        comp[start] = count;
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbor_targets(v) {
                let w = w as NodeId;
                if comp[w] == usize::MAX {
                    comp[w] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Whether the node set `set` induces a connected subgraph of `g`.
///
/// An empty set is considered connected (matching the convention that parts
/// are non-empty anyway and keeping the check total).
pub fn is_connected_subset<G: GraphView + ?Sized>(g: &G, set: &[NodeId]) -> bool {
    if set.is_empty() {
        return true;
    }
    let mut member = vec![false; g.n()];
    for &v in set {
        assert!(v < g.n(), "node {v} out of range");
        member[v] = true;
    }
    let mut seen = vec![false; g.n()];
    let mut queue = VecDeque::from([set[0]]);
    seen[set[0]] = true;
    let mut reached = 1;
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbor_targets(v) {
            let w = w as NodeId;
            if member[w] && !seen[w] {
                seen[w] = true;
                reached += 1;
                queue.push_back(w);
            }
        }
    }
    reached == set.iter().collect::<std::collections::HashSet<_>>().len()
}

/// Exact diameter by running a BFS from every node. `O(n·m)` — fine up to a
/// few tens of thousands of edges; use [`diameter_double_sweep`] beyond that.
///
/// # Errors-like behaviour
///
/// Returns `None` for an empty or disconnected graph.
pub fn diameter_exact<G: GraphView + ?Sized>(g: &G) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..g.n() {
        let r = bfs(g, v);
        if r.order.len() != g.n() {
            return None;
        }
        best = best.max(r.eccentricity());
    }
    Some(best)
}

/// Double-sweep lower bound on the diameter (exact on trees, and a very good
/// estimate on the mesh-like graphs used here). Returns `None` when the graph
/// is empty or disconnected.
pub fn diameter_double_sweep<G: GraphView + ?Sized>(g: &G) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let first = bfs(g, 0);
    if first.order.len() != g.n() {
        return None;
    }
    let far = *first.order.last().expect("non-empty BFS order");
    let second = bfs(g, far);
    Some(second.eccentricity())
}

/// The result of a sequential Dijkstra run: the weighted-distance reference
/// for every distributed SSSP tier in `minex-algo`.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    /// `dist[v]` is the weighted distance from the source, or
    /// [`UNREACHED`](crate::dist::UNREACHED) (`u64::MAX`) if `v` is
    /// unreachable. Finite distances saturate at
    /// [`DIST_MAX`](crate::dist::DIST_MAX), one below the sentinel.
    pub dist: Vec<u64>,
    /// `parent[v]` is the shortest-path-tree parent, `None` for the source
    /// and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
}

impl DijkstraResult {
    /// Whether node `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v] != UNREACHED
    }
}

/// Largest edge weight the bucket queue accepts: the Dial ring needs
/// `w_max + 1` slots, so anything past this cap would blow the ring up for
/// no gain and falls back to the heap reference instead.
const BUCKET_WEIGHT_CAP: u64 = 1 << 16;

/// Sequential Dijkstra from `src` — the centralized correctness reference
/// for the distributed SSSP algorithms.
///
/// Runs on a monotone (Dial-style) bucket queue when every weight is in
/// `1..=2^16`: tentative distances land in a ring of `w_max + 1` linked
/// buckets, and because weights are positive the current bucket is frozen
/// once its level is reached, so draining it in ascending node-id order
/// reproduces the classic heap's `(distance, node)` pop order *exactly* —
/// `dist` and `parent` are byte-identical to
/// [`reference::dijkstra_heap`](crate::reference::dijkstra_heap), without
/// the stale-entry heap blowup on heavy-hub families. Zero weights (which
/// unfreeze the current bucket) or weights above the cap fall back to the
/// heap reference.
///
/// Weights may be zero; ties are broken deterministically by node id (the
/// frontier is processed in ascending `(distance, node)` order on both
/// paths).
///
/// # Panics
///
/// Panics if `src >= g.n()`.
///
/// # Examples
///
/// ```
/// use minex_graphs::{traversal, Graph, WeightedGraph};
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
/// // Edge ids are sorted by endpoints: (0,1)=0, (0,2)=1, (1,2)=2.
/// let wg = WeightedGraph::new(g, vec![1, 10, 2]);
/// let d = traversal::dijkstra(&wg, 0);
/// assert_eq!(d.dist, vec![0, 1, 3]);
/// assert_eq!(d.parent[2], Some(1));
/// ```
pub fn dijkstra(wg: &WeightedGraph, src: NodeId) -> DijkstraResult {
    let g = wg.graph();
    assert!(src < g.n(), "source {src} out of range");
    if g.m() == 0 {
        let mut dist = vec![UNREACHED; g.n()];
        dist[src] = 0;
        return DijkstraResult {
            dist,
            parent: vec![None; g.n()],
        };
    }
    let mut w_min = u64::MAX;
    let mut w_max = 0u64;
    for &w in wg.weights() {
        w_min = w_min.min(w);
        w_max = w_max.max(w);
    }
    if w_min == 0 || w_max > BUCKET_WEIGHT_CAP {
        return crate::reference::dijkstra_heap(wg, src);
    }
    dijkstra_buckets(wg, src, w_max)
}

/// The bucket-queue fast path. Requires `1 <= w <= w_max` for every weight.
///
/// Entries live in a flat pool chained through `next` (a node is re-pushed
/// on every improvement; stale entries are skipped by the `dist` check on
/// drain). Ring occupancy is tracked in a two-level bitmap so advancing to
/// the next non-empty level is a word scan, not a slot walk — total queue
/// overhead is `O(m + n·ring/64)` instead of the heap's `O(m log n)`.
fn dijkstra_buckets(wg: &WeightedGraph, src: NodeId, w_max: u64) -> DijkstraResult {
    const NIL: u32 = u32::MAX;
    let g = wg.graph();
    let n = g.n();
    let ring = w_max as usize + 1;
    let mut dist = vec![UNREACHED; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut head: Vec<u32> = vec![NIL; ring];
    let mut pool_node: Vec<u32> = Vec::with_capacity(n);
    let mut pool_next: Vec<u32> = Vec::with_capacity(n);
    let mut occupied = vec![0u64; ring.div_ceil(64)];
    let mut summary = vec![0u64; occupied.len().div_ceil(64)];
    let mut batch: Vec<u32> = Vec::new();

    dist[src] = 0;
    pool_node.push(src as u32);
    pool_next.push(NIL);
    head[0] = 0;
    occupied[0] |= 1;
    summary[0] |= 1;
    let mut live: usize = 1;
    let mut level: u64 = 0;
    let mut slot: usize = 0;

    while live > 0 {
        // Advance to the next occupied slot, wrapping the ring at most once
        // (all in-flight levels sit within `level ..= level + w_max`).
        let found = next_occupied(&occupied, &summary, slot)
            .or_else(|| next_occupied(&occupied, &summary, 0))
            .expect("live entries imply an occupied slot");
        level += if found >= slot {
            (found - slot) as u64
        } else {
            (ring - slot + found) as u64
        };
        slot = found;

        // Drain the slot: collect live entries, clear occupancy, then
        // process in ascending node id. Weights are >= 1, so no relaxation
        // can land back in this level — the batch is frozen.
        batch.clear();
        let mut e = head[slot];
        head[slot] = NIL;
        occupied[slot / 64] &= !(1u64 << (slot % 64));
        if occupied[slot / 64] == 0 {
            summary[slot / 4096] &= !(1u64 << ((slot / 64) % 64));
        }
        while e != NIL {
            let v = pool_node[e as usize];
            live -= 1;
            if dist[v as usize] == level {
                batch.push(v);
            }
            e = pool_next[e as usize];
        }
        batch.sort_unstable();
        batch.dedup();
        for &settled in &batch {
            let v = settled as NodeId;
            for (&w, &eid) in g.neighbor_targets(v).iter().zip(g.neighbor_edge_ids(v)) {
                let w = w as NodeId;
                let cand = dist_add(level, wg.weight(eid as usize));
                if cand < dist[w] {
                    dist[w] = cand;
                    parent[w] = Some(v);
                    let s = (cand % ring as u64) as usize;
                    pool_node.push(w as u32);
                    pool_next.push(head[s]);
                    head[s] = (pool_node.len() - 1) as u32;
                    occupied[s / 64] |= 1u64 << (s % 64);
                    summary[s / 4096] |= 1u64 << ((s / 64) % 64);
                    live += 1;
                }
            }
        }
    }
    DijkstraResult { dist, parent }
}

/// First occupied ring slot at index `start` or later (no wrap), via the
/// two-level occupancy bitmap.
fn next_occupied(occupied: &[u64], summary: &[u64], start: usize) -> Option<usize> {
    let wi = start / 64;
    if wi >= occupied.len() {
        return None;
    }
    let first = occupied[wi] & (!0u64 << (start % 64));
    if first != 0 {
        return Some(wi * 64 + first.trailing_zeros() as usize);
    }
    let from = wi + 1;
    if from >= occupied.len() {
        return None;
    }
    let mut si = from / 64;
    let mut mask = !0u64 << (from % 64);
    while si < summary.len() {
        let s = summary[si] & mask;
        if s != 0 {
            let w = si * 64 + s.trailing_zeros() as usize;
            return Some(w * 64 + occupied[w].trailing_zeros() as usize);
        }
        mask = !0;
        si += 1;
    }
    None
}

/// Single-source shortest path distances restricted to a subgraph given by an
/// edge mask: only edges `e` with `allowed[e] == true` may be traversed.
pub fn bfs_masked<G: GraphView + ?Sized>(g: &G, src: NodeId, allowed: &[bool]) -> Vec<usize> {
    assert_eq!(
        allowed.len(),
        g.edge_id_bound(),
        "edge mask length mismatch"
    );
    let n = g.n();
    let mut dist = vec![usize::MAX; n];
    dist[src] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        for (&w, &e) in g.neighbor_targets(v).iter().zip(g.neighbor_edge_ids(v)) {
            let w = w as NodeId;
            if allowed[e as usize] && dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(6);
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.parent[3], Some(2));
        assert!(r.reached(5));
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let r = bfs(&g, 0);
        assert!(!r.reached(2));
        assert_eq!(r.dist[2], usize::MAX);
        assert_eq!(r.eccentricity(), 1);
    }

    #[test]
    fn multi_source_labels() {
        let g = generators::path(7);
        let r = multi_source_bfs(&g, &[0, 6]);
        assert_eq!(r.source_of[1], 0);
        assert_eq!(r.source_of[5], 1);
        // Middle node distance 3 from both; source 0 enqueued first wins.
        assert_eq!(r.dist[3], 3);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&generators::cycle(5)));
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!is_connected(&g));
        let (comp, k) = components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::from_edges(0, []).unwrap();
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), None);
    }

    #[test]
    fn connected_subset() {
        let g = generators::path(5);
        assert!(is_connected_subset(&g, &[1, 2, 3]));
        assert!(!is_connected_subset(&g, &[0, 2]));
        assert!(is_connected_subset(&g, &[]));
        assert!(is_connected_subset(&g, &[4]));
    }

    #[test]
    fn diameters() {
        let g = generators::path(10);
        assert_eq!(diameter_exact(&g), Some(9));
        assert_eq!(diameter_double_sweep(&g), Some(9));
        let c = generators::cycle(8);
        assert_eq!(diameter_exact(&c), Some(4));
        let disc = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(diameter_exact(&disc), None);
        assert_eq!(diameter_double_sweep(&disc), None);
    }

    #[test]
    fn dijkstra_on_weighted_cycle() {
        let g = generators::cycle(5);
        // Edges sorted: (0,1)=0, (0,4)=1, (1,2)=2, (2,3)=3, (3,4)=4.
        let wg = WeightedGraph::new(g, vec![1, 10, 1, 1, 1]);
        let r = dijkstra(&wg, 0);
        // Going the long way round (total 4) beats the weight-10 edge.
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.parent[4], Some(3));
        assert_eq!(r.parent[0], None);
    }

    #[test]
    fn dijkstra_unreachable_and_unit_matches_bfs() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let wg = WeightedGraph::unit(g.clone());
        let r = dijkstra(&wg, 0);
        assert!(!r.reached(2));
        assert_eq!(r.dist[2], u64::MAX);
        assert_eq!(r.parent[2], None);
        let grid = generators::triangulated_grid(5, 6);
        let r2 = dijkstra(&WeightedGraph::unit(grid.clone()), 3);
        let b = bfs(&grid, 3);
        for v in 0..grid.n() {
            assert_eq!(r2.dist[v], b.dist[v] as u64);
        }
    }

    #[test]
    fn dijkstra_tree_edges_realize_distances() {
        let g = generators::triangulated_grid(4, 5);
        let weights: Vec<u64> = (0..g.m() as u64).map(|e| 1 + (e * 7) % 13).collect();
        let wg = WeightedGraph::new(g.clone(), weights);
        let r = dijkstra(&wg, 0);
        for v in 1..g.n() {
            let p = r.parent[v].expect("connected");
            let e = g.edge_between(p, v).expect("tree edge exists");
            assert_eq!(r.dist[p] + wg.weight(e), r.dist[v]);
        }
    }

    #[test]
    fn dijkstra_bucket_matches_heap_on_mixed_weights() {
        let g = generators::triangulated_grid(6, 7);
        let weights: Vec<u64> = (0..g.m() as u64).map(|e| 1 + (e * 31) % 97).collect();
        let wg = WeightedGraph::new(g, weights);
        for src in [0, 3, 20] {
            let b = dijkstra(&wg, src);
            let h = crate::reference::dijkstra_heap(&wg, src);
            assert_eq!(b.dist, h.dist, "src {src}");
            assert_eq!(b.parent, h.parent, "src {src}");
        }
    }

    #[test]
    fn dijkstra_at_ring_cap_boundary() {
        // All weights exactly at the cap: bucket path with the largest
        // admissible ring. One notch above: heap fallback. Same answers.
        let g = generators::path(4);
        for w in [BUCKET_WEIGHT_CAP, BUCKET_WEIGHT_CAP + 1] {
            let wg = WeightedGraph::new(g.clone(), vec![w; 3]);
            let r = dijkstra(&wg, 0);
            assert_eq!(r.dist, vec![0, w, 2 * w, 3 * w]);
            assert_eq!(r.parent[3], Some(2));
        }
    }

    #[test]
    fn dijkstra_zero_weights_use_heap_fallback() {
        let g = generators::cycle(5);
        // Edges sorted: (0,1)=0, (0,4)=1, (1,2)=2, (2,3)=3, (3,4)=4.
        let wg = WeightedGraph::new(g, vec![1, 10, 0, 1, 1]);
        let r = dijkstra(&wg, 0);
        assert_eq!(r.dist, vec![0, 1, 1, 2, 3]);
        assert_eq!(r.parent[2], Some(1));
    }

    #[test]
    fn dijkstra_saturated_paths_stay_reached() {
        // Overflow-adjacent weights: the sum over the path saturates at
        // DIST_MAX (one below the UNREACHED sentinel), so node 2 is
        // reachable-with-huge-distance, not silently unreached.
        let g = generators::path(3);
        let wg = WeightedGraph::new(g, vec![u64::MAX / 2 + 10, u64::MAX / 2 + 10]);
        let r = dijkstra(&wg, 0);
        assert_eq!(r.dist[2], crate::dist::DIST_MAX);
        assert!(r.reached(2));
        assert_eq!(r.parent[2], Some(1));
    }

    #[test]
    fn masked_bfs_respects_mask() {
        let g = generators::cycle(6);
        // Forbid the edge between 0 and 5 (the wrap-around edge).
        let wrap = g.edge_between(0, 5).unwrap();
        let mut allowed = vec![true; g.m()];
        allowed[wrap] = false;
        let dist = bfs_masked(&g, 0, &allowed);
        assert_eq!(dist[5], 5);
    }
}

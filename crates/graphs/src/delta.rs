//! [`DeltaGraph`]: a mutable delta-overlay on the frozen CSR [`Graph`].
//!
//! The CSR core is immutable by design — edge ids are lexicographic ranks
//! and every array is packed — so edge churn cannot be applied in place.
//! `DeltaGraph` layers mutations on top of a frozen base instead:
//!
//! ```text
//!             ┌──────────────────────────────┐
//!   reads ──▶ │ overlay rows (touched nodes) │──▶ merged, sorted slices
//!             ├──────────────┬───────────────┤
//!             │ tombstone    │ sorted insert │   deletes set a bit;
//!             │ bitmap       │ buffer        │   inserts get provisional
//!             ├──────────────┴───────────────┤   ids past `base.m()`
//!             │        frozen CSR base       │
//!             └──────────────────────────────┘
//! ```
//!
//! * [`delete_edge`](DeltaGraph::delete_edge) sets one bit in a tombstone
//!   bitmap over base edge ids; [`insert_edge`](DeltaGraph::insert_edge)
//!   appends to a sorted insert buffer and hands out a **provisional** edge
//!   id `base.m() + k` (never reused, even after the insert is deleted
//!   again — size per-edge arrays by
//!   [`edge_id_bound`](GraphView::edge_id_bound)).
//! * For each node touched by a mutation the merged adjacency row is
//!   materialized once, so the [`GraphView`] accessors stay
//!   allocation-free borrowed slices at read time; untouched nodes read
//!   straight from the base CSR.
//! * Once `pending() = tombstones + buffered inserts` reaches the
//!   compaction threshold (default `max(64, base.m() / 4)`), the overlay
//!   [`compact`](DeltaGraph::compact)s back into a flat CSR through
//!   [`Graph::from_sorted_edge_stream`] — one merge of two sorted runs, no
//!   intermediate edge list. Compaction renumbers edge ids back to dense
//!   lexicographic ranks; the [`epoch`](DeltaGraph::epoch) counter (one
//!   tick per successful mutation) and
//!   [`compactions`](DeltaGraph::compactions) counter let callers detect
//!   both.
//!
//! The node set is fixed at construction; only the edge set churns.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{canonical, EdgeId, Graph, GraphError, NodeId, MAX_EDGES};
use crate::view::GraphView;

/// One edge mutation, the unit of churn streams fed to
/// [`DeltaGraph::apply_mutation`] and `Solver::apply` downstream.
///
/// The `weight` on [`Insert`](EdgeMutation::Insert) is carried for weighted
/// consumers (the solver layer); the graph layer itself is unweighted and
/// ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMutation {
    /// Insert edge `{u, v}` (with the given weight, where weights apply).
    Insert {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Weight for weighted consumers; ignored at the graph layer.
        weight: u64,
    },
    /// Delete edge `{u, v}`.
    Delete {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

impl fmt::Display for EdgeMutation {
    /// Compact wire form, `insert(u,v,weight)` / `delete(u,v)` — the
    /// inverse of the [`FromStr`](std::str::FromStr) impl.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeMutation::Insert { u, v, weight } => write!(f, "insert({u},{v},{weight})"),
            EdgeMutation::Delete { u, v } => write!(f, "delete({u},{v})"),
        }
    }
}

/// Error parsing an [`EdgeMutation`] from its compact wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEdgeMutationError {
    msg: String,
}

impl fmt::Display for ParseEdgeMutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ParseEdgeMutationError {}

impl std::str::FromStr for EdgeMutation {
    type Err = ParseEdgeMutationError;

    /// Parses the compact wire form produced by `Display`:
    /// `insert(u,v,weight)` or `delete(u,v)` (whitespace around arguments
    /// tolerated).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |msg: &str| ParseEdgeMutationError {
            msg: format!("bad edge mutation {s:?}: {msg}"),
        };
        let s = s.trim();
        let (head, rest) = s
            .split_once('(')
            .ok_or_else(|| err("expected `insert(…)` or `delete(…)`"))?;
        let body = rest
            .strip_suffix(')')
            .ok_or_else(|| err("missing closing parenthesis"))?;
        let args: Vec<&str> = body.split(',').map(str::trim).collect();
        let num = |a: &str| {
            a.parse::<u64>()
                .map_err(|_| err(&format!("bad number {a:?}")))
        };
        match (head.trim(), args.as_slice()) {
            ("insert", [u, v, w]) => Ok(EdgeMutation::Insert {
                u: num(u)? as NodeId,
                v: num(v)? as NodeId,
                weight: num(w)?,
            }),
            ("delete", [u, v]) => Ok(EdgeMutation::Delete {
                u: num(u)? as NodeId,
                v: num(v)? as NodeId,
            }),
            ("insert", _) => Err(err("insert takes exactly (u,v,weight)")),
            ("delete", _) => Err(err("delete takes exactly (u,v)")),
            _ => Err(err("unknown mutation kind")),
        }
    }
}

/// A materialized merged adjacency row for one overlay-touched node.
#[derive(Debug, Clone, Default)]
struct OverlayRow {
    targets: Vec<u32>,
    edge_ids: Vec<u32>,
}

/// A mutable edge-churn overlay over a frozen CSR [`Graph`]: a tombstone
/// bitmap over base edge ids plus a sorted insert buffer, with merged
/// per-node rows materialized on first touch (see the layout diagram at
/// the top of `delta.rs`).
///
/// # Examples
///
/// ```
/// use minex_graphs::{DeltaGraph, Graph, GraphError, GraphView};
///
/// let base = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let mut dg = DeltaGraph::new(base);
/// dg.delete_edge(1, 2)?;
/// dg.insert_edge(0, 3)?;
/// assert_eq!(dg.m(), 3);
/// assert_eq!(dg.neighbor_targets(0), &[1, 3]);
/// // Compaction freezes the overlay back into a flat CSR.
/// let flat = dg.snapshot();
/// assert_eq!(flat, Graph::from_edges(4, [(0, 1), (0, 3), (2, 3)])?);
/// # Ok::<(), GraphError>(())
/// ```
#[derive(Clone)]
pub struct DeltaGraph {
    base: Graph,
    /// One bit per base edge id; set = deleted.
    tombstones: Vec<u64>,
    /// Number of set tombstone bits.
    dead: usize,
    /// Buffered inserts as canonical pairs, sorted lexicographically.
    inserts: Vec<(u32, u32)>,
    /// Provisional edge ids aligned with `inserts`.
    insert_ids: Vec<u32>,
    /// Provisional id allocation record: slot `k` is id `base.m() + k`;
    /// `None` once that insert was deleted again (ids are never reused).
    issued: Vec<Option<(u32, u32)>>,
    /// Mutation counter: one tick per successful insert/delete.
    epoch: u64,
    /// Number of threshold-triggered or explicit compactions so far.
    compactions: u64,
    /// Pending-mutation count that triggers compaction.
    threshold: usize,
    /// Structured-error edge cap enforced on the insert path.
    max_edges: usize,
    /// Merged rows for nodes touched by at least one pending mutation.
    overlay: HashMap<NodeId, OverlayRow>,
}

impl fmt::Debug for DeltaGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeltaGraph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("pending", &self.pending())
            .field("epoch", &self.epoch)
            .field("compactions", &self.compactions)
            .finish()
    }
}

impl DeltaGraph {
    /// Wraps a frozen base graph with the default compaction threshold
    /// `max(64, base.m() / 4)` and the [`MAX_EDGES`] capacity limit.
    pub fn new(base: Graph) -> Self {
        let threshold = (base.m() / 4).max(64);
        Self::with_limits(base, threshold, MAX_EDGES)
    }

    /// Wraps a base graph with an explicit compaction `threshold` (clamped
    /// to at least 1) and an explicit `max_edges` cap (clamped to
    /// [`MAX_EDGES`]). The cap makes the structured
    /// [`GraphError::TooManyEdges`] boundary testable without building a
    /// 2³¹-edge graph.
    pub fn with_limits(base: Graph, threshold: usize, max_edges: usize) -> Self {
        let words = base.m().div_ceil(64);
        DeltaGraph {
            tombstones: vec![0; words],
            dead: 0,
            inserts: Vec::new(),
            insert_ids: Vec::new(),
            issued: Vec::new(),
            epoch: 0,
            compactions: 0,
            threshold: threshold.max(1),
            max_edges: max_edges.min(MAX_EDGES),
            overlay: HashMap::new(),
            base,
        }
    }

    /// The frozen base CSR under the overlay (pending mutations excluded).
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Mutation counter: increments once per successful
    /// [`insert_edge`](Self::insert_edge) / [`delete_edge`](Self::delete_edge).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How many times the overlay has been compacted back into flat CSR.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Pending mutations against the base: tombstoned base edges plus
    /// buffered inserts. Reaching [`threshold`](Self::threshold) triggers
    /// compaction.
    pub fn pending(&self) -> usize {
        self.dead + self.inserts.len()
    }

    /// The pending-mutation count at which mutations auto-compact.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The structured-error edge cap enforced by
    /// [`insert_edge`](Self::insert_edge).
    pub fn max_edges(&self) -> usize {
        self.max_edges
    }

    #[inline]
    fn is_tombstoned(&self, e: EdgeId) -> bool {
        (self.tombstones[e >> 6] >> (e & 63)) & 1 == 1
    }

    /// Inserts edge `{u, v}`, returning its edge id: the original base id
    /// if this resurrects a tombstoned base edge, else a fresh provisional
    /// id `>= base().m()`. Ids stay valid only until the next compaction.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] / [`GraphError::NodeOutOfRange`] for invalid
    /// endpoints, [`GraphError::DuplicateEdge`] if the edge is already
    /// live, and [`GraphError::TooManyEdges`] if the insert would push the
    /// live edge count past [`max_edges`](Self::max_edges).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let (cu, cv) = canonical(u, v, self.n())?;
        if let Some(e) = self.base.edge_between(cu as NodeId, cv as NodeId) {
            if !self.is_tombstoned(e) {
                return Err(GraphError::DuplicateEdge {
                    u: cu as NodeId,
                    v: cv as NodeId,
                });
            }
            if self.m() >= self.max_edges {
                return Err(GraphError::TooManyEdges {
                    limit: self.max_edges,
                });
            }
            // Resurrect: clear the tombstone, the base id comes back.
            self.tombstones[e >> 6] &= !(1u64 << (e & 63));
            self.dead -= 1;
            self.epoch += 1;
            self.refresh_rows(cu as NodeId, cv as NodeId);
            return Ok(e);
        }
        if self.inserts.binary_search(&(cu, cv)).is_ok() {
            return Err(GraphError::DuplicateEdge {
                u: cu as NodeId,
                v: cv as NodeId,
            });
        }
        if self.m() >= self.max_edges {
            return Err(GraphError::TooManyEdges {
                limit: self.max_edges,
            });
        }
        let id = (self.base.m() + self.issued.len()) as u32;
        self.issued.push(Some((cu, cv)));
        let at = self.inserts.partition_point(|&p| p < (cu, cv));
        self.inserts.insert(at, (cu, cv));
        self.insert_ids.insert(at, id);
        self.epoch += 1;
        self.refresh_rows(cu as NodeId, cv as NodeId);
        self.maybe_compact();
        Ok(id as EdgeId)
    }

    /// Deletes edge `{u, v}`, returning the id it had: a tombstoned base id
    /// or a retired provisional id (neither is handed out again before the
    /// next compaction).
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeNotFound`] if no live edge `{u, v}` exists — this
    /// covers self-loops and out-of-range endpoints too, since such edges
    /// can never exist.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let not_found = GraphError::EdgeNotFound { u, v };
        let Ok((cu, cv)) = canonical(u, v, self.n()) else {
            return Err(not_found);
        };
        if let Some(e) = self.base.edge_between(cu as NodeId, cv as NodeId) {
            if self.is_tombstoned(e) {
                return Err(not_found);
            }
            self.tombstones[e >> 6] |= 1u64 << (e & 63);
            self.dead += 1;
            self.epoch += 1;
            self.refresh_rows(cu as NodeId, cv as NodeId);
            self.maybe_compact();
            return Ok(e);
        }
        match self.inserts.binary_search(&(cu, cv)) {
            Ok(at) => {
                let id = self.insert_ids[at] as EdgeId;
                self.inserts.remove(at);
                self.insert_ids.remove(at);
                self.issued[id - self.base.m()] = None;
                self.epoch += 1;
                self.refresh_rows(cu as NodeId, cv as NodeId);
                Ok(id)
            }
            Err(_) => Err(not_found),
        }
    }

    /// Applies one [`EdgeMutation`], returning the affected edge id. The
    /// weight on inserts is ignored here (the graph layer is unweighted).
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`insert_edge`](Self::insert_edge) /
    /// [`delete_edge`](Self::delete_edge).
    pub fn apply_mutation(&mut self, mutation: &EdgeMutation) -> Result<EdgeId, GraphError> {
        match *mutation {
            EdgeMutation::Insert { u, v, .. } => self.insert_edge(u, v),
            EdgeMutation::Delete { u, v } => self.delete_edge(u, v),
        }
    }

    /// Rebuilds the materialized overlay rows of the two endpoints of a
    /// mutated edge. Only the mutated edge's endpoints can have changed, so
    /// every other row — materialized or base — stays valid.
    fn refresh_rows(&mut self, a: NodeId, b: NodeId) {
        for v in [a, b] {
            let mut row: Vec<(u32, u32)> = self
                .base
                .neighbor_targets(v)
                .iter()
                .zip(self.base.neighbor_edge_ids(v))
                .filter(|&(_, &e)| !self.is_tombstoned(e as EdgeId))
                .map(|(&w, &e)| (w, e))
                .collect();
            for (i, &(cu, cv)) in self.inserts.iter().enumerate() {
                if cu as NodeId == v {
                    row.push((cv, self.insert_ids[i]));
                } else if cv as NodeId == v {
                    row.push((cu, self.insert_ids[i]));
                }
            }
            row.sort_unstable();
            let entry = self.overlay.entry(v).or_default();
            entry.targets.clear();
            entry.edge_ids.clear();
            for (w, e) in row {
                entry.targets.push(w);
                entry.edge_ids.push(e);
            }
        }
    }

    fn maybe_compact(&mut self) {
        if self.pending() >= self.threshold {
            self.compact();
        }
    }

    /// Freezes the current live edge set into a flat CSR [`Graph`] without
    /// touching the overlay: one merge of the (sorted) surviving base edges
    /// with the (sorted) insert buffer, streamed twice through
    /// [`Graph::from_sorted_edge_stream`]. Edge ids in the snapshot are
    /// dense lexicographic ranks again.
    pub fn snapshot(&self) -> Graph {
        Graph::from_sorted_edge_stream(self.n(), || {
            let mut live = self
                .base
                .edges()
                .filter(|&(e, _, _)| !self.is_tombstoned(e))
                .map(|(_, u, v)| (u, v))
                .peekable();
            let mut ins = self
                .inserts
                .iter()
                .map(|&(u, v)| (u as NodeId, v as NodeId))
                .peekable();
            std::iter::from_fn(move || match (live.peek(), ins.peek()) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        live.next()
                    } else {
                        ins.next()
                    }
                }
                (Some(_), None) => live.next(),
                (None, _) => ins.next(),
            })
        })
        .expect("overlay invariants keep the live edge set a valid simple graph")
    }

    /// Compacts the overlay back into a flat CSR base, clearing tombstones,
    /// the insert buffer and all materialized rows. Edge ids are renumbered
    /// to dense lexicographic ranks; [`compactions`](Self::compactions)
    /// increments, [`epoch`](Self::epoch) does not (the edge set is
    /// unchanged).
    pub fn compact(&mut self) {
        self.base = self.snapshot();
        self.tombstones = vec![0; self.base.m().div_ceil(64)];
        self.dead = 0;
        self.inserts.clear();
        self.insert_ids.clear();
        self.issued.clear();
        self.overlay.clear();
        self.compactions += 1;
    }
}

impl GraphView for DeltaGraph {
    #[inline]
    fn n(&self) -> usize {
        self.base.n()
    }

    #[inline]
    fn m(&self) -> usize {
        self.base.m() - self.dead + self.inserts.len()
    }

    #[inline]
    fn edge_id_bound(&self) -> usize {
        self.base.m() + self.issued.len()
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        match self.overlay.get(&v) {
            Some(row) => row.targets.len(),
            None => self.base.degree(v),
        }
    }

    #[inline]
    fn neighbor_targets(&self, v: NodeId) -> &[u32] {
        match self.overlay.get(&v) {
            Some(row) => &row.targets,
            None => self.base.neighbor_targets(v),
        }
    }

    #[inline]
    fn neighbor_edge_ids(&self, v: NodeId) -> &[u32] {
        match self.overlay.get(&v) {
            Some(row) => &row.edge_ids,
            None => self.base.neighbor_edge_ids(v),
        }
    }

    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        if e < self.base.m() {
            assert!(!self.is_tombstoned(e), "edge {e} is tombstoned");
            self.base.endpoints(e)
        } else {
            let (u, v) = self.issued[e - self.base.m()].expect("edge id was retired");
            (u as NodeId, v as NodeId)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Graph {
        // A 4-cycle with one chord: {0,1} {0,3} {1,2} {1,3} {2,3}.
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]).unwrap()
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut dg = DeltaGraph::new(base());
        assert_eq!(dg.m(), 5);
        let e = dg.delete_edge(1, 2).unwrap();
        assert_eq!(e, 2); // lexicographic rank of (1, 2)
        assert_eq!(dg.m(), 4);
        assert!(!dg.has_edge(1, 2));
        assert_eq!(dg.neighbor_targets(1), &[0, 3]);
        // Resurrecting returns the original base id.
        assert_eq!(dg.insert_edge(2, 1).unwrap(), 2);
        assert_eq!(dg.m(), 5);
        assert_eq!(dg.epoch(), 2);
        assert_eq!(dg.snapshot(), base());
    }

    #[test]
    fn provisional_ids_are_dense_from_base_m_and_never_reused() {
        let mut dg = DeltaGraph::new(base());
        let a = dg.insert_edge(0, 2).unwrap();
        assert_eq!(a, 5);
        assert_eq!(dg.delete_edge(0, 2).unwrap(), 5);
        // The retired id 5 is not handed out again.
        let b = dg.insert_edge(2, 0).unwrap();
        assert_eq!(b, 6);
        assert_eq!(dg.edge_id_bound(), 7);
        assert_eq!(dg.endpoints(6), (0, 2));
        assert_eq!(dg.m(), 6);
    }

    #[test]
    fn merged_rows_stay_sorted_and_aligned() {
        let mut dg = DeltaGraph::new(base());
        dg.insert_edge(0, 2).unwrap();
        dg.delete_edge(0, 3).unwrap();
        assert_eq!(dg.neighbor_targets(0), &[1, 2]);
        assert_eq!(dg.neighbor_targets(2), &[0, 1, 3]);
        assert_eq!(dg.neighbor_targets(3), &[1, 2]);
        for v in 0..dg.n() {
            let (ts, es) = (dg.neighbor_targets(v), dg.neighbor_edge_ids(v));
            assert_eq!(ts.len(), es.len());
            assert!(ts.windows(2).all(|w| w[0] < w[1]), "row {v} sorted");
            for (&w, &e) in ts.iter().zip(es) {
                let (x, y) = dg.endpoints(e as EdgeId);
                assert_eq!((x.min(y), x.max(y)), (v.min(w as usize), v.max(w as usize)));
            }
        }
    }

    #[test]
    fn threshold_triggers_compaction() {
        let mut dg = DeltaGraph::with_limits(base(), 2, MAX_EDGES);
        dg.delete_edge(1, 3).unwrap();
        assert_eq!(dg.compactions(), 0);
        dg.insert_edge(0, 2).unwrap(); // pending reaches 2
        assert_eq!(dg.compactions(), 1);
        assert_eq!(dg.pending(), 0);
        assert_eq!(
            dg.base(),
            &Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]).unwrap()
        );
        // Post-compaction ids are dense ranks again.
        assert_eq!(dg.edge_between(0, 2), Some(1));
    }

    #[test]
    fn duplicate_and_missing_edges_are_structured_errors() {
        let mut dg = DeltaGraph::new(base());
        assert_eq!(
            dg.insert_edge(3, 1).unwrap_err(),
            GraphError::DuplicateEdge { u: 1, v: 3 }
        );
        dg.insert_edge(0, 2).unwrap();
        assert_eq!(
            dg.insert_edge(2, 0).unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 2 }
        );
        assert_eq!(
            dg.delete_edge(0, 9).unwrap_err(),
            GraphError::EdgeNotFound { u: 0, v: 9 }
        );
        assert_eq!(
            dg.delete_edge(2, 2).unwrap_err(),
            GraphError::EdgeNotFound { u: 2, v: 2 }
        );
        assert_eq!(dg.insert_edge(1, 1).unwrap_err(), GraphError::SelfLoop(1));
        assert_eq!(
            dg.insert_edge(1, 7).unwrap_err(),
            GraphError::NodeOutOfRange { node: 7, n: 4 }
        );
        // Deleting a tombstoned edge twice fails the second time.
        dg.delete_edge(0, 1).unwrap();
        assert_eq!(
            dg.delete_edge(0, 1).unwrap_err(),
            GraphError::EdgeNotFound { u: 0, v: 1 }
        );
    }

    #[test]
    fn edge_cap_is_a_structured_error_at_the_boundary() {
        // An injected cap stands in for the untestable 2³¹ CSR limit; the
        // default cap is asserted to be exactly MAX_EDGES below.
        let mut dg = DeltaGraph::with_limits(base(), usize::MAX, 6);
        dg.insert_edge(0, 2).unwrap(); // m reaches the cap of 6
        assert_eq!(
            dg.insert_edge(1, 3),
            Err(GraphError::DuplicateEdge { u: 1, v: 3 }),
            "duplicate detection outranks the cap"
        );
        let err = dg.insert_edge(0, 2).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 2 });
        // A genuinely new edge at the boundary: structured error, no panic.
        // (4 nodes are full; grow via a larger base.)
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]).unwrap();
        let mut capped = DeltaGraph::with_limits(g, usize::MAX, 2);
        assert_eq!(
            capped.insert_edge(3, 4),
            Err(GraphError::TooManyEdges { limit: 2 })
        );
        // Deleting first makes room again.
        capped.delete_edge(0, 1).unwrap();
        capped.insert_edge(3, 4).unwrap();
        assert_eq!(
            capped.insert_edge(0, 1),
            Err(GraphError::TooManyEdges { limit: 2 }),
            "resurrection is capped too"
        );
        assert_eq!(DeltaGraph::new(base()).max_edges(), MAX_EDGES);
    }

    #[test]
    fn snapshot_matches_from_edges_rebuild() {
        let mut dg = DeltaGraph::new(base());
        dg.delete_edge(2, 3).unwrap();
        dg.insert_edge(0, 2).unwrap();
        dg.delete_edge(0, 1).unwrap();
        let expect = Graph::from_edges(4, [(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        assert_eq!(dg.snapshot(), expect);
        dg.compact();
        assert_eq!(dg.base(), &expect);
        assert_eq!(dg.epoch(), 3);
    }
}

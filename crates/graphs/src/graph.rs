//! Core graph representation.
//!
//! [`Graph`] is a simple, undirected, immutable graph over dense node ids
//! `0..n`. Edges carry dense ids `0..m` so that parallel structures (weights,
//! shortcut assignments, congestion counters) can be stored in flat vectors.
//!
//! Graphs are built through [`GraphBuilder`], which validates input
//! (self-loops rejected, duplicate edges deduplicated) so that every
//! constructed [`Graph`] upholds its invariants for its whole lifetime.

use std::error::Error;
use std::fmt;

/// Dense node identifier in `0..n`.
pub type NodeId = usize;
/// Dense edge identifier in `0..m`.
pub type EdgeId = usize;

/// Error produced when constructing or combining graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the CONGEST model ignores these.
    SelfLoop(NodeId),
    /// An operation required a connected graph but the input was not.
    Disconnected,
    /// An operation required a non-empty graph.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::Disconnected => write!(f, "graph must be connected"),
            GraphError::Empty => write!(f, "graph must be non-empty"),
        }
    }
}

impl Error for GraphError {}

/// An immutable, simple, undirected graph.
///
/// # Examples
///
/// ```
/// use minex_graphs::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g: Graph = b.build();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// # Ok::<(), minex_graphs::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `adj[v]` lists `(neighbor, edge id)` pairs, sorted by neighbor.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(NodeId, NodeId)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list, deduplicating
    /// duplicates and canonicalizing endpoint order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]
    /// when the edge list is invalid.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Iterates over `(neighbor, edge id)` pairs of `v`, sorted by neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[v].iter().copied()
    }

    /// The endpoints `(u, v)` of edge `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// Given edge `e` incident to `v`, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m` or `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.edges[e];
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Returns the edge id between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n() || v >= self.n() {
            return None;
        }
        // Search from the lower-degree endpoint.
        let (from, to) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[from]
            .binary_search_by_key(&to, |&(w, _)| w)
            .ok()
            .map(|i| self.adj[from][i].1)
    }

    /// Whether an edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Iterates over all edges as `(edge id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n()
    }

    /// The subgraph induced by `keep`, together with the mapping from old
    /// node ids to new node ids (dense, in increasing old-id order).
    ///
    /// Nodes not in `keep` and edges with an endpoint outside `keep` are
    /// dropped. `keep` may contain duplicates; they are ignored.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.n()];
        let mut next = 0;
        let mut sorted: Vec<NodeId> = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &v in &sorted {
            assert!(v < self.n(), "node {v} out of range");
            map[v] = Some(next);
            next += 1;
        }
        let mut b = GraphBuilder::new(next);
        for &(u, v) in &self.edges {
            if let (Some(nu), Some(nv)) = (map[u], map[v]) {
                b.add_edge(nu, nv).expect("mapped edge is valid");
            }
        }
        (b.build(), map)
    }

    /// Total degree sum (`2m`).
    pub fn degree_sum(&self) -> usize {
        2 * self.m()
    }
}

/// Incremental builder for [`Graph`].
///
/// Duplicate edges are silently deduplicated at [`build`](Self::build) time,
/// which keeps generator code simple (grids and clique-sums naturally try to
/// add the same edge twice).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grows the node count to at least `n`.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.n += 1;
        self.n - 1
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        for w in [u, v] {
            if w >= self.n {
                return Err(GraphError::NodeOutOfRange { node: w, n: self.n });
            }
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(())
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); self.n];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            adj[u].push((v, e));
            adj[v].push((u, e));
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Graph {
            adj,
            edges: self.edges,
        }
    }
}

/// An undirected graph with `u64` edge weights.
///
/// # Examples
///
/// ```
/// use minex_graphs::{Graph, WeightedGraph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let wg = WeightedGraph::new(g, vec![5, 7]);
/// assert_eq!(wg.weight(0), 5);
/// assert_eq!(wg.total_weight(), 12);
/// # Ok::<(), minex_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<u64>,
}

impl WeightedGraph {
    /// Wraps `graph` with per-edge `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != graph.m()`.
    pub fn new(graph: Graph, weights: Vec<u64>) -> Self {
        assert_eq!(
            weights.len(),
            graph.m(),
            "weight vector length must equal edge count"
        );
        WeightedGraph { graph, weights }
    }

    /// Wraps `graph` with all weights equal to 1.
    pub fn unit(graph: Graph) -> Self {
        let m = graph.m();
        WeightedGraph {
            graph,
            weights: vec![1; m],
        }
    }

    /// The underlying unweighted graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e]
    }

    /// All weights, indexed by edge id.
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Consumes the pair back into `(graph, weights)`.
    pub fn into_parts(self) -> (Graph, Vec<u64>) {
        (self.graph, self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn single_node() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(Graph::from_edges(2, [(1, 1)]), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, [(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn deduplicates_parallel_edges() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn endpoints_are_canonical() {
        let g = Graph::from_edges(3, [(2, 0)]).unwrap();
        assert_eq!(g.endpoints(0), (0, 2));
        assert_eq!(g.other_endpoint(0, 0), 2);
        assert_eq!(g.other_endpoint(0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_panics_for_non_endpoint() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        g.other_endpoint(0, 1);
    }

    #[test]
    fn edge_between_finds_edges_both_ways() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.edge_between(2, 1), Some(1));
        assert_eq!(g.edge_between(1, 2), Some(1));
        assert_eq!(g.edge_between(0, 3), None);
        assert_eq!(g.edge_between(0, 99), None);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let ns: Vec<NodeId> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(ns, vec![0, 1, 3, 4]);
    }

    #[test]
    fn induced_subgraph_maps_ids() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[1, 3, 4]);
        assert_eq!(sub.n(), 3);
        // Edges kept: (1,3) -> (0,1), (3,4) -> (1,2).
        assert_eq!(sub.m(), 2);
        assert_eq!(map[1], Some(0));
        assert_eq!(map[3], Some(1));
        assert_eq!(map[4], Some(2));
        assert_eq!(map[0], None);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let (sub, _) = g.induced_subgraph(&[0, 1, 1, 0]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 1);
    }

    #[test]
    fn builder_add_node() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, 1);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn weighted_graph_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let wg = WeightedGraph::new(g.clone(), vec![3, 9]);
        assert_eq!(wg.weight(1), 9);
        assert_eq!(wg.total_weight(), 12);
        let unit = WeightedGraph::unit(g);
        assert_eq!(unit.total_weight(), 2);
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn weighted_graph_length_mismatch_panics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let _ = WeightedGraph::new(g, vec![1]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            GraphError::SelfLoop(3).to_string(),
            "self-loop at node 3 is not allowed"
        );
        assert_eq!(
            GraphError::NodeOutOfRange { node: 9, n: 4 }.to_string(),
            "node 9 out of range for graph with 4 nodes"
        );
    }
}

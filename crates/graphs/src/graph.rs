//! Core graph representation.
//!
//! [`Graph`] is a simple, undirected, immutable graph over dense node ids
//! `0..n`. Edges carry dense ids `0..m` so that parallel structures (weights,
//! shortcut assignments, congestion counters) can be stored in flat vectors.
//!
//! # CSR layout
//!
//! Adjacency is stored in **compressed sparse row** form — three flat `u32`
//! arrays instead of one `Vec` per node:
//!
//! ```text
//! offsets:  [ 0 | 2 | 5 | ... | 2m ]          (n + 1 entries)
//! targets:  [ v v | v v v | ......... ]       (2m entries, sorted per node)
//! edge_ids: [ e e | e e e | ......... ]       (2m entries, aligned)
//! edges:    [ (u,v) (u,v) ... ]               (m entries, u < v, sorted)
//! ```
//!
//! Node `v`'s neighbors live in `targets[offsets[v]..offsets[v+1]]`, sorted
//! ascending, with the incident edge ids in the aligned `edge_ids` slice, so
//! [`neighbors`](Graph::neighbors), [`degree`](Graph::degree), and the raw
//! [`neighbor_targets`](Graph::neighbor_targets) /
//! [`neighbor_edge_ids`](Graph::neighbor_edge_ids) slice accessors are
//! allocation-free pointer walks. Edge ids are the lexicographic rank of the
//! canonical `(u, v)` pair (`u < v`), which keeps every id stable across
//! construction paths.
//!
//! The whole structure costs `24m + 4n + O(1)` heap bytes (`≈ 24` bytes per
//! edge on mesh-like graphs) versus `≥ 48m + 24n` for the nested-`Vec`
//! representation it replaced (kept as [`crate::reference::AdjListGraph`]
//! for differential testing). The `u32` ids bound graphs at `n < 2³²` nodes
//! and `m ≤ 2³¹` edges (~4.2 billion directed adjacency entries); both
//! limits are asserted at construction.
//!
//! Graphs are built through [`GraphBuilder`], which validates input
//! (self-loops rejected, duplicate edges deduplicated) so that every
//! constructed [`Graph`] upholds its invariants for its whole lifetime.
//! Million-node generators can skip the intermediate edge list entirely via
//! the two-pass streaming constructors
//! [`Graph::from_sorted_edge_stream`] / [`Graph::from_edge_stream`].

use std::error::Error;
use std::fmt;

/// Dense node identifier in `0..n`.
pub type NodeId = usize;
/// Dense edge identifier in `0..m`.
pub type EdgeId = usize;

/// Largest supported node count: node ids are stored as `u32`.
pub const MAX_NODES: usize = u32::MAX as usize;
/// Largest supported edge count: CSR offsets address `2m` `u32` entries.
pub const MAX_EDGES: usize = (u32::MAX / 2) as usize;

/// Error produced when constructing or combining graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the CONGEST model ignores these.
    SelfLoop(NodeId),
    /// A streaming constructor received the same undirected edge twice
    /// (the buffered [`GraphBuilder`] path deduplicates instead).
    DuplicateEdge {
        /// Lower endpoint of the duplicated edge.
        u: NodeId,
        /// Higher endpoint of the duplicated edge.
        v: NodeId,
    },
    /// An operation required a connected graph but the input was not.
    Disconnected,
    /// An operation required a non-empty graph.
    Empty,
    /// A mutation would push the edge count past the `u32` CSR capacity
    /// ([`MAX_EDGES`]) or a configured lower cap.
    TooManyEdges {
        /// The edge-count limit that would have been exceeded.
        limit: usize,
    },
    /// A deletion named an edge `{u, v}` that does not exist (or no longer
    /// exists) in the graph.
    EdgeNotFound {
        /// One endpoint as supplied.
        u: NodeId,
        /// The other endpoint as supplied.
        v: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge {{{u}, {v}}} was streamed twice")
            }
            GraphError::Disconnected => write!(f, "graph must be connected"),
            GraphError::Empty => write!(f, "graph must be non-empty"),
            GraphError::TooManyEdges { limit } => {
                write!(f, "edge count would exceed the limit of {limit} edges")
            }
            GraphError::EdgeNotFound { u, v } => {
                write!(f, "edge {{{u}, {v}}} does not exist")
            }
        }
    }
}

impl Error for GraphError {}

/// An immutable, simple, undirected graph in CSR (compressed sparse row)
/// form — see the [crate docs](crate) for the memory layout.
///
/// # Examples
///
/// ```
/// use minex_graphs::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g: Graph = b.build();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// // Allocation-free slice access to node 1's row:
/// assert_eq!(g.neighbor_targets(1), &[0, 2]);
/// assert_eq!(g.neighbor_edge_ids(1), &[0, 1]);
/// # Ok::<(), minex_graphs::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row starts: node `v`'s adjacency occupies
    /// `targets[offsets[v] as usize .. offsets[v+1] as usize]`.
    offsets: Vec<u32>,
    /// Flattened neighbor lists, sorted ascending within each node's row.
    targets: Vec<u32>,
    /// Incident edge ids, aligned with `targets`.
    edge_ids: Vec<u32>,
    /// `edges[e] = (u, v)` with `u < v`, sorted lexicographically (edge ids
    /// are exactly the ranks in this order).
    edges: Vec<(u32, u32)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

/// Validates one endpoint pair, returning the canonical `(min, max)` form.
#[inline]
pub(crate) fn canonical(u: NodeId, v: NodeId, n: usize) -> Result<(u32, u32), GraphError> {
    if u == v {
        return Err(GraphError::SelfLoop(u));
    }
    for w in [u, v] {
        if w >= n {
            return Err(GraphError::NodeOutOfRange { node: w, n });
        }
    }
    Ok((u.min(v) as u32, u.max(v) as u32))
}

/// Asserts the `u32` capacity limits documented on [`MAX_NODES`] /
/// [`MAX_EDGES`].
fn assert_capacity(n: usize, m: usize) {
    assert!(n <= MAX_NODES, "graph node count {n} exceeds u32 ids");
    assert!(
        m <= MAX_EDGES,
        "graph edge count {m} exceeds the 2^31 CSR limit"
    );
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge list, deduplicating
    /// duplicates and canonicalizing endpoint order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]
    /// when the edge list is invalid.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Assembles the CSR arrays from a canonical edge list that is already
    /// **sorted and deduplicated**. This is the single point every
    /// construction path funnels through.
    ///
    /// One scatter pass in lexicographic edge order yields per-node rows
    /// that are already sorted: node `w`'s row receives first the edges
    /// `(u, w)` with `u < w` (ascending `u`, because the list is sorted by
    /// first endpoint), then the edges `(w, v)` (ascending `v`) — and every
    /// `(·, w)` pair precedes every `(w, ·)` pair in the lexicographic
    /// order.
    fn from_canonical_sorted(n: usize, edges: Vec<(u32, u32)>) -> Self {
        let m = edges.len();
        assert_capacity(n, m);
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; 2 * m];
        let mut edge_ids = vec![0u32; 2 * m];
        let mut cursor = offsets.clone();
        for (e, &(u, v)) in edges.iter().enumerate() {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            edge_ids[cu] = e as u32;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            edge_ids[cv] = e as u32;
            cursor[v as usize] += 1;
        }
        Graph {
            offsets,
            targets,
            edge_ids,
            edges,
        }
    }

    /// Builds directly into CSR from a **restartable** stream of canonical
    /// edges in strictly increasing lexicographic order (`u < v`, pairs
    /// strictly ascending). The stream is consumed twice — once to count
    /// degrees, once to fill the arrays — so no intermediate edge list is
    /// ever materialized beyond the graph's own storage.
    ///
    /// This is the fast path for the deterministic large-`n` generators
    /// (grids, triangulated grids, combs): peak memory is the final graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] / [`GraphError::NodeOutOfRange`] for
    /// invalid endpoints and [`GraphError::DuplicateEdge`] if a pair
    /// repeats.
    ///
    /// # Panics
    ///
    /// Panics if the stream is not sorted, or if the two passes disagree.
    pub fn from_sorted_edge_stream<I, F>(n: usize, stream: F) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
        F: Fn() -> I,
    {
        // Pass 1: validate, count degrees and edges.
        let mut offsets = vec![0u32; n + 1];
        let mut m = 0usize;
        let mut prev: Option<(u32, u32)> = None;
        for (u, v) in stream() {
            let (cu, cv) = canonical(u, v, n)?;
            // Canonical order is part of the sortedness contract.
            assert!(
                u < v,
                "stream edge ({u}, {v}) is not in canonical u < v form"
            );
            match prev {
                Some(p) if p == (cu, cv) => {
                    return Err(GraphError::DuplicateEdge {
                        u: cu as NodeId,
                        v: cv as NodeId,
                    })
                }
                Some(p) => assert!(
                    p < (cu, cv),
                    "stream must be strictly increasing: ({}, {}) after ({}, {})",
                    cu,
                    cv,
                    p.0,
                    p.1
                ),
                None => {}
            }
            prev = Some((cu, cv));
            offsets[cu as usize + 1] += 1;
            offsets[cv as usize + 1] += 1;
            m += 1;
        }
        assert_capacity(n, m);
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Pass 2: scatter (sortedness per row follows exactly as in
        // `from_canonical_sorted`).
        let mut targets = vec![0u32; 2 * m];
        let mut edge_ids = vec![0u32; 2 * m];
        let mut edges = Vec::with_capacity(m);
        let mut cursor = offsets.clone();
        for (u, v) in stream() {
            let (u, v) = (u as u32, v as u32);
            let e = edges.len();
            assert!(e < m, "stream yielded more edges on the second pass");
            edges.push((u, v));
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            edge_ids[cu] = e as u32;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            edge_ids[cv] = e as u32;
            cursor[v as usize] += 1;
        }
        assert_eq!(edges.len(), m, "stream yielded fewer edges on pass two");
        Ok(Graph {
            offsets,
            targets,
            edge_ids,
            edges,
        })
    }

    /// Builds directly into CSR from a **restartable** stream of unique
    /// edges in *any* order (endpoints need not be canonical). Two counting
    /// passes plus one per-row sort replace the intermediate edge list;
    /// edge ids still come out as the lexicographic rank of the canonical
    /// pair, identical to every other construction path.
    ///
    /// This is the fast path for generators whose natural emission order is
    /// not sorted (e.g. random k-trees, whose attachment edges `(u, v)` run
    /// backwards in `u`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] / [`GraphError::NodeOutOfRange`] for
    /// invalid endpoints and [`GraphError::DuplicateEdge`] if the same
    /// undirected edge appears twice.
    ///
    /// # Panics
    ///
    /// Panics if the two passes disagree on the edge multiset.
    pub fn from_edge_stream<I, F>(n: usize, stream: F) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
        F: Fn() -> I,
    {
        // Pass 1: validate, count degrees and edges.
        let mut offsets = vec![0u32; n + 1];
        let mut m = 0usize;
        for (u, v) in stream() {
            let (cu, cv) = canonical(u, v, n)?;
            offsets[cu as usize + 1] += 1;
            offsets[cv as usize + 1] += 1;
            m += 1;
        }
        assert_capacity(n, m);
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Pass 2: scatter neighbors only (ids are unknown until sorted).
        let mut targets = vec![0u32; 2 * m];
        let mut cursor = offsets.clone();
        let mut seen = 0usize;
        for (u, v) in stream() {
            let (cu, cv) = canonical(u, v, n).expect("pass one validated this edge");
            seen += 1;
            assert!(seen <= m, "stream yielded more edges on the second pass");
            let pu = cursor[cu as usize] as usize;
            targets[pu] = cv;
            cursor[cu as usize] += 1;
            let pv = cursor[cv as usize] as usize;
            targets[pv] = cu;
            cursor[cv as usize] += 1;
        }
        assert_eq!(seen, m, "stream yielded fewer edges on pass two");
        // Sort each row; a duplicate edge shows up as equal adjacent targets.
        let mut lower = vec![0u32; n];
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            let row = &mut targets[lo..hi];
            row.sort_unstable();
            if let Some(w) = row.windows(2).find(|w| w[0] == w[1]) {
                let (a, b) = (v.min(w[0] as usize), v.max(w[0] as usize));
                return Err(GraphError::DuplicateEdge { u: a, v: b });
            }
            lower[v] = row.partition_point(|&t| (t as usize) < v) as u32;
        }
        // Edge ids are lexicographic ranks: node u owns the id range
        // `base[u] ..` for its higher neighbors, in ascending target order.
        let mut base = vec![0u32; n + 1];
        for v in 0..n {
            let hi_deg = (offsets[v + 1] - offsets[v]) - lower[v];
            base[v + 1] = base[v] + hi_deg;
        }
        let mut edge_ids = vec![0u32; 2 * m];
        let mut edges = vec![(0u32, 0u32); m];
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            let split = lo + lower[v] as usize;
            // Higher neighbors: ids are consecutive from base[v].
            for (rank, i) in (split..hi).enumerate() {
                let e = base[v] + rank as u32;
                edge_ids[i] = e;
                edges[e as usize] = (v as u32, targets[i]);
            }
            // Lower neighbors: locate this node in the neighbor's row.
            for i in lo..split {
                let w = targets[i] as usize;
                let (wlo, whi) = (offsets[w] as usize, offsets[w + 1] as usize);
                let wsplit = wlo + lower[w] as usize;
                let rank = targets[wsplit..whi]
                    .binary_search(&(v as u32))
                    .expect("symmetric entry exists");
                edge_ids[i] = base[w] + rank as u32;
            }
        }
        Ok(Graph {
            offsets,
            targets,
            edge_ids,
            edges,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The neighbors of `v` as a raw sorted `u32` slice — the zero-cost CSR
    /// row, aligned with [`neighbor_edge_ids`](Self::neighbor_edge_ids).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbor_targets(&self, v: NodeId) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The edge ids incident to `v`, aligned with
    /// [`neighbor_targets`](Self::neighbor_targets).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbor_edge_ids(&self, v: NodeId) -> &[u32] {
        &self.edge_ids[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates over `(neighbor, edge id)` pairs of `v`, sorted by neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.neighbor_targets(v)
            .iter()
            .zip(self.neighbor_edge_ids(v))
            .map(|(&w, &e)| (w as NodeId, e as EdgeId))
    }

    /// The endpoints `(u, v)` of edge `e`, with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (u, v) = self.edges[e];
        (u as NodeId, v as NodeId)
    }

    /// Given edge `e` incident to `v`, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m` or `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Returns the edge id between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n() || v >= self.n() {
            return None;
        }
        // Search from the lower-degree endpoint.
        let (from, to) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbor_targets(from)
            .binary_search(&(to as u32))
            .ok()
            .map(|i| self.neighbor_edge_ids(from)[i] as EdgeId)
    }

    /// Whether an edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Iterates over all edges as `(edge id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e, u as NodeId, v as NodeId))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n()
    }

    /// The subgraph induced by `keep`, together with the mapping from old
    /// node ids to new node ids (dense, in increasing old-id order).
    ///
    /// Nodes not in `keep` and edges with an endpoint outside `keep` are
    /// dropped. `keep` may contain duplicates; they are ignored.
    ///
    /// The node map is monotone, so the surviving canonical edges stay in
    /// lexicographic order and the CSR arrays are assembled in one pass —
    /// no re-sort, no intermediate builder.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.n()];
        let mut sorted: Vec<NodeId> = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (next, &v) in sorted.iter().enumerate() {
            assert!(v < self.n(), "node {v} out of range");
            map[v] = Some(next);
        }
        let edges: Vec<(u32, u32)> = self
            .edges
            .iter()
            .filter_map(|&(u, v)| match (map[u as usize], map[v as usize]) {
                (Some(nu), Some(nv)) => Some((nu as u32, nv as u32)),
                _ => None,
            })
            .collect();
        (Graph::from_canonical_sorted(sorted.len(), edges), map)
    }

    /// Total degree sum (`2m`).
    pub fn degree_sum(&self) -> usize {
        2 * self.m()
    }

    /// Heap bytes held by the CSR arrays (`4(n+1) + 24m`): the number the
    /// E15 scale experiment reports as "graph memory". Capacity slack is
    /// excluded — every array is built exactly-sized.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.targets.len() * 4
            + self.edge_ids.len() * 4
            + self.edges.len() * 8
    }
}

/// Incremental builder for [`Graph`].
///
/// Duplicate edges are silently deduplicated at [`build`](Self::build) time,
/// which keeps generator code simple (grids and clique-sums naturally try to
/// add the same edge twice). The duplicate-heavy worst case is a single
/// `sort_unstable + dedup` over the buffered pairs — `O(m log m)` time and
/// 8 bytes per buffered pair, regardless of how skewed the duplication is —
/// followed by the linear counting-sort CSR assembly.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    /// Buffered edges, canonicalized to `(min, max)` on insertion.
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder expecting about `m` edges, reserving the buffer up
    /// front so large generators do not pay for repeated regrowth.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grows the node count to at least `n`.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.n += 1;
        self.n - 1
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.edges.push(canonical(u, v, self.n)?);
        Ok(())
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_canonical_sorted(self.n, self.edges)
    }
}

/// An undirected graph with `u64` edge weights.
///
/// # Examples
///
/// ```
/// use minex_graphs::{Graph, WeightedGraph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let wg = WeightedGraph::new(g, vec![5, 7]);
/// assert_eq!(wg.weight(0), 5);
/// assert_eq!(wg.total_weight(), 12);
/// # Ok::<(), minex_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<u64>,
}

impl WeightedGraph {
    /// Wraps `graph` with per-edge `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != graph.m()`.
    pub fn new(graph: Graph, weights: Vec<u64>) -> Self {
        assert_eq!(
            weights.len(),
            graph.m(),
            "weight vector length must equal edge count"
        );
        WeightedGraph { graph, weights }
    }

    /// Wraps `graph` with all weights equal to 1.
    pub fn unit(graph: Graph) -> Self {
        let m = graph.m();
        WeightedGraph {
            graph,
            weights: vec![1; m],
        }
    }

    /// The underlying unweighted graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e]
    }

    /// All weights, indexed by edge id.
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Sum of all edge weights, saturating at `u64::MAX` (the total is used
    /// as an a-priori distance bound, so clamping is the right overflow
    /// behaviour on overflow-adjacent weight sets).
    pub fn total_weight(&self) -> u64 {
        self.weights
            .iter()
            .fold(0u64, |acc, &w| acc.saturating_add(w))
    }

    /// Consumes the pair back into `(graph, weights)`.
    pub fn into_parts(self) -> (Graph, Vec<u64>) {
        (self.graph, self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn single_node() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(Graph::from_edges(2, [(1, 1)]), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, [(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn deduplicates_parallel_edges() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(1), 2);
    }

    /// The dedup-path regression: a pathological duplicate blow-up (every
    /// edge of a small cycle added thousands of times, in alternating
    /// endpoint orders) must collapse to the simple graph in one
    /// `O(m log m)` sort+dedup — no quadratic scan, no duplicate survivors.
    #[test]
    fn duplicate_blowup_collapses() {
        let cycle = 64usize;
        let mut b = GraphBuilder::with_capacity(cycle, cycle * 2_000);
        for rep in 0..2_000 {
            for i in 0..cycle {
                let (u, v) = (i, (i + 1) % cycle);
                // Alternate endpoint order so canonicalization is exercised.
                if rep % 2 == 0 {
                    b.add_edge(u, v).unwrap();
                } else {
                    b.add_edge(v, u).unwrap();
                }
            }
        }
        let g = b.build();
        assert_eq!(g.n(), cycle);
        assert_eq!(g.m(), cycle);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        // Edge ids stay the lexicographic ranks of the deduped list.
        assert_eq!(g.endpoints(0), (0, 1));
        assert_eq!(g.endpoints(1), (0, 63));
        assert_eq!(g.endpoints(cycle - 1), (62, 63));
    }

    #[test]
    fn endpoints_are_canonical() {
        let g = Graph::from_edges(3, [(2, 0)]).unwrap();
        assert_eq!(g.endpoints(0), (0, 2));
        assert_eq!(g.other_endpoint(0, 0), 2);
        assert_eq!(g.other_endpoint(0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_panics_for_non_endpoint() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        g.other_endpoint(0, 1);
    }

    #[test]
    fn edge_between_finds_edges_both_ways() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.edge_between(2, 1), Some(1));
        assert_eq!(g.edge_between(1, 2), Some(1));
        assert_eq!(g.edge_between(0, 3), None);
        assert_eq!(g.edge_between(0, 99), None);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let ns: Vec<NodeId> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(ns, vec![0, 1, 3, 4]);
        assert_eq!(g.neighbor_targets(2), &[0, 1, 3, 4]);
        assert_eq!(g.neighbor_edge_ids(2).len(), 4);
    }

    #[test]
    fn csr_rows_match_iterator_everywhere() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 6),
                (1, 2),
                (2, 6),
                (3, 4),
                (4, 5),
                (5, 6),
                (1, 5),
            ],
        )
        .unwrap();
        for v in g.nodes() {
            let from_iter: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            let from_slices: Vec<(NodeId, EdgeId)> = g
                .neighbor_targets(v)
                .iter()
                .zip(g.neighbor_edge_ids(v))
                .map(|(&w, &e)| (w as NodeId, e as EdgeId))
                .collect();
            assert_eq!(from_iter, from_slices);
            assert_eq!(g.degree(v), from_iter.len());
            // Rows are sorted and consistent with `endpoints`.
            for (w, e) in from_iter {
                assert_eq!(g.other_endpoint(e, v), w);
            }
        }
    }

    #[test]
    fn sorted_stream_matches_builder() {
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)];
        let a = Graph::from_sorted_edge_stream(5, || edges.iter().copied()).unwrap();
        let b = Graph::from_edges(5, edges).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sorted_stream_rejects_duplicates() {
        let edges = [(0, 1), (0, 1)];
        assert_eq!(
            Graph::from_sorted_edge_stream(2, || edges.iter().copied()),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn sorted_stream_rejects_disorder() {
        let edges = [(1, 2), (0, 1)];
        let _ = Graph::from_sorted_edge_stream(3, || edges.iter().copied());
    }

    #[test]
    fn unsorted_stream_matches_builder() {
        // Backwards, interleaved, non-canonical endpoint order.
        let edges = [(4, 3), (3, 1), (2, 0), (3, 2), (1, 0), (4, 0)];
        let a = Graph::from_edge_stream(5, || edges.iter().copied()).unwrap();
        let b = Graph::from_edges(5, edges).unwrap();
        assert_eq!(a, b);
        // Edge ids are lexicographic ranks on both paths.
        assert_eq!(a.endpoints(0), (0, 1));
        assert_eq!(a.endpoints(5), (3, 4));
    }

    #[test]
    fn unsorted_stream_rejects_duplicates_and_loops() {
        let dup = [(0, 1), (2, 1), (1, 0)];
        assert_eq!(
            Graph::from_edge_stream(3, || dup.iter().copied()),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
        let looped = [(0, 1), (2, 2)];
        assert_eq!(
            Graph::from_edge_stream(3, || looped.iter().copied()),
            Err(GraphError::SelfLoop(2))
        );
    }

    #[test]
    fn induced_subgraph_maps_ids() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[1, 3, 4]);
        assert_eq!(sub.n(), 3);
        // Edges kept: (1,3) -> (0,1), (3,4) -> (1,2).
        assert_eq!(sub.m(), 2);
        assert_eq!(map[1], Some(0));
        assert_eq!(map[3], Some(1));
        assert_eq!(map[4], Some(2));
        assert_eq!(map[0], None);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let (sub, _) = g.induced_subgraph(&[0, 1, 1, 0]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 1);
    }

    #[test]
    fn builder_add_node() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, 1);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn heap_bytes_tracks_csr_arrays() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        // 4·(n+1) offsets + 4·2m targets + 4·2m edge ids + 8·m endpoints.
        assert_eq!(g.heap_bytes(), 4 * 5 + 4 * 6 + 4 * 6 + 8 * 3);
    }

    #[test]
    fn weighted_graph_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let wg = WeightedGraph::new(g.clone(), vec![3, 9]);
        assert_eq!(wg.weight(1), 9);
        assert_eq!(wg.total_weight(), 12);
        let unit = WeightedGraph::unit(g);
        assert_eq!(unit.total_weight(), 2);
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn weighted_graph_length_mismatch_panics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let _ = WeightedGraph::new(g, vec![1]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            GraphError::SelfLoop(3).to_string(),
            "self-loop at node 3 is not allowed"
        );
        assert_eq!(
            GraphError::NodeOutOfRange { node: 9, n: 4 }.to_string(),
            "node 9 out of range for graph with 4 nodes"
        );
        assert_eq!(
            GraphError::DuplicateEdge { u: 1, v: 2 }.to_string(),
            "edge {1, 2} was streamed twice"
        );
        assert_eq!(
            GraphError::TooManyEdges { limit: 7 }.to_string(),
            "edge count would exceed the limit of 7 edges"
        );
        assert_eq!(
            GraphError::EdgeNotFound { u: 4, v: 0 }.to_string(),
            "edge {4, 0} does not exist"
        );
    }
}

//! The telemetry determinism and reconciliation contracts:
//!
//! * a [`CongestionProfile`] recorded from a successful run is
//!   byte-identical ([`CongestionProfile::render`]) across the sequential
//!   and parallel engines for any thread count, and
//! * its aggregates exactly reconcile with the run's [`RunStats`]
//!   (Σ per-edge messages == `stats.messages`, Σ per-edge bits ==
//!   `stats.total_bits`, the max recorded message == `max_message_bits`),
//!
//! property-tested over random graphs × programs × engines, plus directed
//! coverage of the rejection path and the per-edge validator bound that
//! E17's analytic check leans on (≤ 2 messages per edge per round).

use proptest::prelude::*;

use minex_congest::telemetry::{self, CongestionProfile};
use minex_congest::{run, run_with_sink, CongestConfig, Ctx, NodeProgram, SimError};
use minex_graphs::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Floods the minimum id seen so far (leader election).
#[derive(Debug, Clone, PartialEq, Eq)]
struct MinFlood {
    best: usize,
    dirty: bool,
}

impl MinFlood {
    fn fresh() -> Self {
        MinFlood {
            best: usize::MAX,
            dirty: true,
        }
    }
}

impl NodeProgram for MinFlood {
    type Msg = usize;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 {
            self.best = ctx.node();
            self.dirty = true;
        }
        for &(_, msg) in ctx.inbox() {
            if msg < self.best {
                self.best = msg;
                self.dirty = true;
            }
        }
        if self.dirty {
            self.dirty = false;
            ctx.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        !self.dirty
    }
}

/// Irregular data-dependent gossip (mirrors `proptest_engine.rs`): uneven
/// per-node work, selective sends, reawakening — the traffic shapes where a
/// sloppy shard merge would break profile determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Gossip {
    acc: u64,
    bursts_left: usize,
}

impl NodeProgram for Gossip {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        for &(from, msg) in ctx.inbox() {
            self.acc = self
                .acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(msg ^ from as u64);
        }
        if self.bursts_left > 0 {
            self.bursts_left -= 1;
            let v = ctx.node() as u64;
            let targets: Vec<NodeId> = ctx
                .neighbors()
                .filter(|&(w, _)| (self.acc ^ w as u64 ^ v) % 3 != 0)
                .map(|(w, _)| w)
                .collect();
            for w in targets {
                ctx.send(w, self.acc ^ w as u64);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.bursts_left == 0
    }
}

/// Records `fresh.clone()` under both engines and checks the determinism
/// contract; returns the (identical) profile and stats.
fn profile_both<P>(
    graph: &minex_graphs::Graph,
    fresh: &[P],
    config: CongestConfig,
    threads: usize,
) -> (CongestionProfile, minex_congest::RunStats)
where
    P: NodeProgram + Send + Clone + PartialEq + std::fmt::Debug,
    P::Msg: Send,
{
    let mut seq = fresh.to_vec();
    let mut par = fresh.to_vec();
    let mut seq_profile = CongestionProfile::new();
    let mut par_profile = CongestionProfile::new();
    let a = telemetry::record(&mut seq_profile, || {
        run(graph, &mut seq, config.with_threads(1))
    })
    .expect("sequential run succeeds");
    let b = telemetry::record(&mut par_profile, || {
        run(graph, &mut par, config.with_threads(threads))
    })
    .expect("parallel run succeeds");
    assert_eq!(a, b, "RunStats diverge (threads={threads})");
    assert_eq!(
        seq_profile, par_profile,
        "profiles diverge (threads={threads})"
    );
    assert_eq!(
        seq_profile.render(),
        par_profile.render(),
        "profile renderings diverge (threads={threads})"
    );
    (seq_profile, a)
}

/// The satellite reconciliation contract between a profile and the
/// `RunStats` of the runs it recorded.
fn assert_reconciles(
    profile: &CongestionProfile,
    stats: minex_congest::RunStats,
    graph: &minex_graphs::Graph,
) {
    assert_eq!(profile.total_messages(), stats.messages);
    assert_eq!(profile.total_bits(), stats.total_bits);
    assert_eq!(profile.max_message_bits(), stats.max_message_bits);
    // Per-edge and per-round decompositions re-sum to the totals.
    let edge_msgs: u64 = profile.edge_loads().iter().map(|l| l.messages).sum();
    let edge_bits: u64 = profile.edge_loads().iter().map(|l| l.bits).sum();
    assert_eq!(edge_msgs, stats.messages);
    assert_eq!(edge_bits, stats.total_bits);
    let round_msgs: u64 = profile.round_loads().iter().map(|l| l.messages).sum();
    assert_eq!(round_msgs, stats.messages);
    // Every sent message was delivered (successful runs quiesce empty).
    assert_eq!(profile.delivered(), stats.messages);
    // The profile saw the final, uncounted quiescent round too.
    assert_eq!(profile.rounds_started(), stats.rounds as u64 + 1);
    // Recorded edge ids are real, and the validator's one-message-per
    // (sender, dest)-per-round rule caps each edge at two messages (one
    // per direction) per started round — the hard bound under E17's
    // analytic quality check.
    assert!(profile.edge_loads().len() <= graph.m());
    assert!(profile.max_edge_messages() <= 2 * profile.rounds_started());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn min_flood_profile_is_engine_independent_and_reconciles(
        n in 4usize..80, extra in 0usize..60, seed in 0u64..1000, threads in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let fresh = vec![MinFlood::fresh(); n];
        let (profile, stats) = profile_both(&g, &fresh, CongestConfig::for_nodes(n), threads);
        assert_reconciles(&profile, stats, &g);
    }

    #[test]
    fn gossip_profile_is_engine_independent_and_reconciles(
        n in 4usize..60, extra in 0usize..40, seed in 0u64..1000, threads in 2usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let fresh: Vec<Gossip> = (0..n)
            .map(|v| Gossip { acc: v as u64, bursts_left: 1 + v % 5 })
            .collect();
        let (profile, stats) = profile_both(&g, &fresh, CongestConfig::for_nodes(n), threads);
        assert_reconciles(&profile, stats, &g);
    }
}

/// One oversized blast from node 0 in round 0.
#[derive(Debug, Clone)]
struct Blaster;
impl NodeProgram for Blaster {
    type Msg = (u64, u64);
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 && ctx.node() == 0 {
            ctx.broadcast((1, 2));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

#[test]
fn rejections_are_recorded_identically_on_both_engines() {
    let g = generators::cycle(16);
    let config = CongestConfig::for_nodes(16).with_bandwidth(64);
    let mut rendered = Vec::new();
    for threads in [1usize, 4] {
        let mut profile = CongestionProfile::new();
        let mut programs = vec![Blaster; 16];
        let err = telemetry::record(&mut profile, || {
            run(&g, &mut programs, config.with_threads(threads))
        })
        .expect_err("the blast must be rejected");
        assert!(matches!(err, SimError::BandwidthExceeded { from: 0, .. }));
        assert_eq!(profile.rejections(), [err.to_string()]);
        rendered.push(profile.render());
    }
    // The whole profile — not just the rejection — matches here because the
    // error fires in round 0 before any engine-dependent divergence.
    assert_eq!(rendered[0], rendered[1]);
}

#[test]
fn explicit_sink_matches_scoped_recording() {
    let g = generators::grid(5, 7);
    let n = g.n();
    let config = CongestConfig::for_nodes(n);
    let mut scoped = CongestionProfile::new();
    let mut programs = vec![MinFlood::fresh(); n];
    let a = telemetry::record(&mut scoped, || run(&g, &mut programs, config)).unwrap();
    let mut explicit = CongestionProfile::new();
    let mut programs = vec![MinFlood::fresh(); n];
    let b = run_with_sink(&g, &mut programs, config, &mut explicit).unwrap();
    assert_eq!(a, b);
    assert_eq!(scoped, explicit);
    assert_eq!(scoped.render(), explicit.render());
}

#[test]
fn profile_accumulates_across_runs_in_one_scope() {
    let g = generators::path(6);
    let config = CongestConfig::for_nodes(6);
    let mut profile = CongestionProfile::new();
    let (a, b) = telemetry::record(&mut profile, || {
        let mut programs = vec![MinFlood::fresh(); 6];
        let a = run(&g, &mut programs, config).unwrap();
        let mut programs = vec![MinFlood::fresh(); 6];
        let b = run(&g, &mut programs, config).unwrap();
        (a, b)
    });
    assert_eq!(profile.total_messages(), a.messages + b.messages);
    assert_eq!(
        profile.rounds_started(),
        (a.rounds + b.rounds) as u64 + 2,
        "both runs' quiescent rounds are counted"
    );
}

//! The zero-cost-when-off guard: [`minex_congest::run`] (which checks the
//! thread-local telemetry slot once per call and dispatches to the
//! `NoopSink` monomorphization) must cost within 2% of calling
//! [`minex_congest::run_with_sink`] with [`NoopSink`] directly — i.e. the
//! instrumented round loop with the no-op sink *is* the uninstrumented
//! round loop.
//!
//! Wall-clock comparisons follow the repo's timing-assert convention
//! (E14/E15/E16): best-of-several measurements, three attempts before a
//! failure counts, skipped on debug builds (no inlining) and under
//! `MINEX_SKIP_TIMING_ASSERTS=1`.

use std::time::Instant;

use minex_congest::{run, run_with_sink, CongestConfig, Ctx, NodeProgram, NoopSink, RunStats};
use minex_graphs::generators;

/// A bounded broadcast storm: every node broadcasts every round until its
/// budget runs out — the engine's full per-round machinery at a
/// predictable round count (mirrors E15's throughput workload).
#[derive(Debug, Clone)]
struct Storm {
    rounds_left: usize,
}

impl NodeProgram for Storm {
    type Msg = u32;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.broadcast(ctx.node() as u32 & 0xFFFF);
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Best seconds over `reps` runs of a fresh storm under `f`.
fn best_secs(
    g: &minex_graphs::Graph,
    config: CongestConfig,
    reps: usize,
    mut f: impl FnMut(&mut Vec<Storm>) -> RunStats,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut programs = vec![Storm { rounds_left: 24 }; g.n()];
        // minex-lint: allow(D002) measuring the sinks' wall-clock overhead is this test's purpose
        let start = Instant::now();
        let stats = f(&mut programs);
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
        assert_eq!(stats.rounds, 24);
        let _ = config;
    }
    best
}

#[test]
fn noop_sink_run_is_free() {
    let timing_asserts =
        std::env::var_os("MINEX_SKIP_TIMING_ASSERTS").is_none() && !cfg!(debug_assertions);
    let g = generators::triangulated_grid(48, 48);
    let config = CongestConfig::for_nodes(g.n()).with_bandwidth(192);
    if !timing_asserts {
        // Correctness-only pass: both entry points agree on the result.
        let mut a = vec![Storm { rounds_left: 24 }; g.n()];
        let mut b = a.clone();
        let sa = run(&g, &mut a, config).unwrap();
        let sb = run_with_sink(&g, &mut b, config, &mut NoopSink).unwrap();
        assert_eq!(sa, sb);
        return;
    }
    let reps = 7;
    let attempt = || {
        // Interleave the legs so slow-machine drift hits both equally.
        let with_dispatch = best_secs(&g, config, reps, |p| run(&g, p, config).unwrap());
        let direct = best_secs(&g, config, reps, |p| {
            run_with_sink(&g, p, config, &mut NoopSink).unwrap()
        });
        with_dispatch <= direct * 1.02
    };
    assert!(
        attempt() || attempt() || attempt(),
        "run() exceeded 2% overhead over the direct NoopSink loop in three consecutive attempts"
    );
}

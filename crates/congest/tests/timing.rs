//! Timing-semantics tests: the simulator must deliver a message sent in
//! round `r` at round `r + 1`, exactly once, and count rounds accordingly.

use minex_congest::{run, CongestConfig, Ctx, NodeProgram};
use minex_graphs::generators;

/// Sends a token down a path, recording at each node the round it arrived.
#[derive(Debug, Clone)]
struct Relay {
    arrived_at_round: Option<usize>,
    forwarded: bool,
    is_source: bool,
    next: Option<usize>,
}

impl NodeProgram for Relay {
    type Msg = u32;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 && self.is_source {
            self.arrived_at_round = Some(0);
        }
        if !ctx.inbox().is_empty() && self.arrived_at_round.is_none() {
            self.arrived_at_round = Some(ctx.round());
            assert_eq!(ctx.inbox().len(), 1, "exactly one delivery");
        }
        if self.arrived_at_round.is_some() && !self.forwarded {
            self.forwarded = true;
            if let Some(next) = self.next {
                ctx.send(next, 1);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.forwarded
    }
}

#[test]
fn messages_take_exactly_one_round_per_hop() {
    let n = 12;
    let g = generators::path(n);
    let mut programs: Vec<Relay> = (0..n)
        .map(|v| Relay {
            arrived_at_round: None,
            forwarded: false,
            is_source: v == 0,
            next: if v + 1 < n { Some(v + 1) } else { None },
        })
        .collect();
    let stats = run(&g, &mut programs, CongestConfig::for_nodes(n)).unwrap();
    for (v, p) in programs.iter().enumerate() {
        assert_eq!(
            p.arrived_at_round,
            Some(v),
            "node {v} must receive the token in round {v}"
        );
    }
    // The last hop arrives in round n-1; quiescence detected right after.
    assert_eq!(stats.rounds, n - 1);
    assert_eq!(stats.messages, (n - 1) as u64);
}

/// Every node pings all neighbors each round for 3 rounds; the per-edge
/// accounting must be exact.
#[derive(Debug, Clone)]
struct Pinger {
    rounds_left: usize,
}

impl NodeProgram for Pinger {
    type Msg = u32;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.broadcast(7);
        }
    }

    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

#[test]
fn message_counters_are_exact() {
    let g = generators::cycle(10);
    let mut programs = vec![Pinger { rounds_left: 3 }; 10];
    let stats = run(&g, &mut programs, CongestConfig::for_nodes(10)).unwrap();
    // 10 nodes × 2 neighbors × 3 rounds.
    assert_eq!(stats.messages, 60);
    assert_eq!(stats.max_message_bits, 32);
    assert_eq!(stats.total_bits, 60 * 32);
    // Rounds 0-2 send; the last deliveries land in round 3, which is the
    // final active round the counter reports.
    assert_eq!(stats.rounds, 3);
}

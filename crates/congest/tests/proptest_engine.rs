//! Property tests of the engine equivalence contract: for any graph,
//! program, and thread count, the multi-threaded engine must produce the
//! same [`RunStats`], the same final program states, and the same error as
//! the sequential engine.

use proptest::prelude::*;

use minex_congest::{run, CongestConfig, Ctx, NodeProgram, RunStats, SimError};
use minex_graphs::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Floods the minimum id seen so far (leader election).
#[derive(Debug, Clone, PartialEq, Eq)]
struct MinFlood {
    best: usize,
    dirty: bool,
}

impl MinFlood {
    fn fresh() -> Self {
        MinFlood {
            best: usize::MAX,
            dirty: true,
        }
    }
}

impl NodeProgram for MinFlood {
    type Msg = usize;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 {
            self.best = ctx.node();
            self.dirty = true;
        }
        for &(_, msg) in ctx.inbox() {
            if msg < self.best {
                self.best = msg;
                self.dirty = true;
            }
        }
        if self.dirty {
            self.dirty = false;
            ctx.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        !self.dirty
    }
}

/// A deliberately irregular gossip: every node accumulates a rolling hash of
/// `(sender, payload)` pairs and keeps chattering to a data-dependent subset
/// of neighbors for a node-dependent number of bursts. Exercises uneven
/// per-node work, selective sends, and reawakening of done nodes — the
/// cases where a sloppy parallel engine would diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Gossip {
    acc: u64,
    bursts_left: usize,
}

impl NodeProgram for Gossip {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        for &(from, msg) in ctx.inbox() {
            self.acc = self
                .acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(msg ^ from as u64);
        }
        if self.bursts_left > 0 {
            self.bursts_left -= 1;
            let v = ctx.node() as u64;
            let targets: Vec<NodeId> = ctx
                .neighbors()
                .filter(|&(w, _)| (self.acc ^ w as u64 ^ v) % 3 != 0)
                .map(|(w, _)| w)
                .collect();
            for w in targets {
                ctx.send(w, self.acc ^ w as u64);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.bursts_left == 0
    }
}

/// Every node whose id is `node_mod - 1 (mod node_mod)` blasts an oversized
/// broadcast in round 0, so many nodes across many shards violate the
/// bandwidth budget in the same round and the engines must agree on which
/// single violation gets reported.
#[derive(Debug, Clone)]
struct Offender {
    node_mod: usize,
}

impl NodeProgram for Offender {
    type Msg = (u64, u64);
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 && ctx.node() % self.node_mod == self.node_mod - 1 {
            ctx.broadcast((1, 2));
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

fn run_both<P: NodeProgram + Send + Clone + PartialEq + std::fmt::Debug>(
    graph: &minex_graphs::Graph,
    fresh: &[P],
    config: CongestConfig,
    threads: usize,
) -> (Result<RunStats, SimError>, Result<RunStats, SimError>)
where
    P::Msg: Send,
{
    let mut seq = fresh.to_vec();
    let mut par = fresh.to_vec();
    let a = run(graph, &mut seq, config.with_threads(1));
    let b = run(graph, &mut par, config.with_threads(threads));
    assert_eq!(seq, par, "final program states diverge (threads={threads})");
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn min_flood_is_engine_independent(
        n in 4usize..80, extra in 0usize..60, seed in 0u64..1000, threads in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let fresh = vec![MinFlood::fresh(); n];
        let (a, b) = run_both(&g, &fresh, CongestConfig::for_nodes(n), threads);
        prop_assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn gossip_is_engine_independent(
        n in 4usize..60, extra in 0usize..40, seed in 0u64..1000, threads in 2usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let fresh: Vec<Gossip> = (0..n)
            .map(|v| Gossip { acc: v as u64, bursts_left: 1 + v % 5 })
            .collect();
        let (a, b) = run_both(&g, &fresh, CongestConfig::for_nodes(n), threads);
        prop_assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn error_selection_is_engine_independent(
        n in 4usize..60, extra in 0usize..40, seed in 0u64..1000,
        threads in 2usize..9, node_mod in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        let fresh = vec![Offender { node_mod }; n];
        // 64-bit budget: the (u64, u64) blast is twice over it.
        let config = CongestConfig::for_nodes(n).with_bandwidth(64);
        let mut seq = fresh.clone();
        let mut par = fresh;
        let a = run(&g, &mut seq, config.with_threads(1));
        let b = run(&g, &mut par, config.with_threads(threads));
        prop_assert_eq!(a.clone().unwrap_err(), b.unwrap_err());
        let SimError::BandwidthExceeded { from, .. } = a.unwrap_err() else {
            panic!("expected a bandwidth violation");
        };
        // The reported offender is the smallest violating node id.
        prop_assert_eq!(from, node_mod - 1);
    }
}

//! Node programs: the per-node state machines executed by the runtime.

use minex_graphs::{EdgeId, GraphView, NodeId};

use crate::message::Payload;
use crate::soa::Outbox;

/// The per-round view a node program gets of its surroundings.
///
/// A node knows: its own id, the current round number, its incident edges
/// (ids and the neighbor on the other side — "ports" in the CONGEST model),
/// and the messages that arrived this round. It acts by calling
/// [`send`](Ctx::send) / [`broadcast`](Ctx::broadcast).
#[derive(Debug)]
pub struct Ctx<'a, M: Payload> {
    graph: &'a (dyn GraphView + Sync),
    node: NodeId,
    round: usize,
    inbox: &'a [(NodeId, M)],
    outbox: &'a mut Outbox<M>,
}

impl<'a, M: Payload> Ctx<'a, M> {
    pub(crate) fn new(
        graph: &'a (dyn GraphView + Sync),
        node: NodeId,
        round: usize,
        inbox: &'a [(NodeId, M)],
        outbox: &'a mut Outbox<M>,
    ) -> Self {
        Ctx {
            graph,
            node,
            round,
            inbox,
            outbox,
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current round (starting from 0).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Messages delivered this round, as `(sender, message)` pairs.
    pub fn inbox(&self) -> &[(NodeId, M)] {
        self.inbox
    }

    /// This node's neighbors, as `(neighbor, edge id)` pairs.
    pub fn neighbors(&self) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.graph
            .neighbor_targets(self.node)
            .iter()
            .zip(self.graph.neighbor_edge_ids(self.node))
            .map(|(&w, &e)| (w as NodeId, e as EdgeId))
    }

    /// This node's neighbors as the raw sorted CSR slice — the
    /// allocation-free "port list" for hot per-round loops.
    pub fn neighbor_targets(&self) -> &[u32] {
        self.graph.neighbor_targets(self.node)
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Queues `msg` for delivery to `to` next round. The runtime validates
    /// neighborship, per-edge uniqueness, and bandwidth after the callback
    /// returns.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(to, msg);
    }

    /// Sends `msg` to every neighbor, walking the CSR row directly (no
    /// intermediate target buffer). The row's targets and edge ids memcpy
    /// straight into the outbox id columns; the edge ids double as
    /// validation hints, so broadcast messages skip the per-message
    /// `edge_between` lookup in the validation sweep.
    pub fn broadcast(&mut self, msg: M) {
        let targets = self.graph.neighbor_targets(self.node);
        self.outbox.dsts.extend_from_slice(targets);
        self.outbox
            .hints
            .extend_from_slice(self.graph.neighbor_edge_ids(self.node));
        self.outbox
            .payloads
            .extend(std::iter::repeat_with(|| msg.clone()).take(targets.len()));
    }
}

/// A distributed algorithm, from one node's point of view.
///
/// The runtime calls [`on_round`](Self::on_round) every round (round 0 acts
/// as initialization; the inbox is empty then). A node that is
/// [`is_done`](Self::is_done) *and* has an empty inbox is skipped — it can be
/// reawakened by incoming messages. The run terminates when every node is
/// done and no messages are in flight.
pub trait NodeProgram {
    /// The message type exchanged by this algorithm.
    type Msg: Payload;

    /// One synchronous round: read `ctx.inbox()`, update local state, send.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Whether this node currently has nothing more to do.
    fn is_done(&self) -> bool;
}

//! Struct-of-arrays message buffers for the round-loop hot paths.
//!
//! The engines used to move `Vec<(NodeId, M)>` (and triples of the same
//! shape) between the outbox, the shard send buffers, and the delivery
//! buckets. For small payloads the tuple layout interleaves ids and
//! payloads, so the validation sweep and the shard merge — which only look
//! at the *ids* — stride over payload bytes they never read. These types
//! split every buffer into parallel columns: the id columns are dense
//! `u32` arrays the sweeps can walk branch-light (and the compiler can
//! vectorize), and the payload column is only touched by the final move
//! into the per-node inboxes.
//!
//! Per-node *inboxes* deliberately stay `Vec<(NodeId, M)>`: `Ctx::inbox()`
//! exposes `&[(NodeId, M)]` publicly, and per-node fan-in is small — the
//! SoA win is in the per-round aggregate buffers, which see every message
//! of the round.
//!
//! [`Outbox`] additionally carries an *edge-id hint* column:
//! `Ctx::broadcast` walks the CSR row, so it knows the edge id of every
//! target already and the validator can skip the per-message
//! `edge_between` binary search ([`NO_HINT`] marks plain `send`s, which
//! still pay the lookup). Hints never change observable behaviour — a hint
//! is only ever the edge id `edge_between` would have found — and the
//! naive AoS reference in the runtime tests re-validates them against
//! `edge_between` on every message.
//!
//! Node ids in columns are `u32` (the graph core caps `n < 2^32`); a
//! destination id that does not even fit `u32` is clamped to `u32::MAX`,
//! which no graph can have as a node, so it still fails validation as the
//! not-a-neighbor it is.

use minex_graphs::NodeId;

/// Hint-column sentinel: "sender did not know the edge id, look it up".
pub(crate) const NO_HINT: u32 = u32::MAX;

/// Clamps a program-supplied destination into the `u32` id column.
#[inline]
fn clamp_id(v: NodeId) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// One node's queued sends for the current round, as parallel columns.
#[derive(Debug)]
pub(crate) struct Outbox<M> {
    /// Destination node ids.
    pub(crate) dsts: Vec<u32>,
    /// CSR edge-id hints aligned with `dsts` ([`NO_HINT`] = unknown).
    pub(crate) hints: Vec<u32>,
    /// Payloads aligned with `dsts`.
    pub(crate) payloads: Vec<M>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Outbox<M> {
    pub(crate) fn new() -> Self {
        Outbox {
            dsts: Vec::new(),
            hints: Vec::new(),
            payloads: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.dsts.len()
    }

    /// Empties the id columns (payloads are drained by the consumer, but
    /// clearing is idempotent and keeps the buffers warm).
    pub(crate) fn clear(&mut self) {
        self.dsts.clear();
        self.hints.clear();
        self.payloads.clear();
    }

    /// Queues one targeted send with no edge hint.
    #[inline]
    pub(crate) fn push(&mut self, to: NodeId, msg: M) {
        self.dsts.push(clamp_id(to));
        self.hints.push(NO_HINT);
        self.payloads.push(msg);
    }
}

/// A shard's validated sends of one round: `(src, dst, payload)` columns in
/// (sender id, outbox position) order — ready for the coordinator's
/// id-order merge sweep.
#[derive(Debug)]
pub(crate) struct SendColumns<M> {
    pub(crate) srcs: Vec<u32>,
    pub(crate) dsts: Vec<u32>,
    pub(crate) payloads: Vec<M>,
}

impl<M> Default for SendColumns<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SendColumns<M> {
    pub(crate) fn new() -> Self {
        SendColumns {
            srcs: Vec::new(),
            dsts: Vec::new(),
            payloads: Vec::new(),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.srcs.clear();
        self.dsts.clear();
        self.payloads.clear();
    }
}

/// One shard's incoming mail for a round: `(local index, sender, payload)`
/// columns in global ascending-sender order.
#[derive(Debug)]
pub(crate) struct DeliveryColumns<M> {
    pub(crate) locals: Vec<u32>,
    pub(crate) srcs: Vec<u32>,
    pub(crate) payloads: Vec<M>,
}

impl<M> Default for DeliveryColumns<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> DeliveryColumns<M> {
    pub(crate) fn new() -> Self {
        DeliveryColumns {
            locals: Vec::new(),
            srcs: Vec::new(),
            payloads: Vec::new(),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.locals.clear();
        self.srcs.clear();
        self.payloads.clear();
    }

    #[inline]
    pub(crate) fn push(&mut self, local: usize, src: NodeId, msg: M) {
        self.locals.push(local as u32);
        self.srcs.push(src as u32);
        self.payloads.push(msg);
    }
}

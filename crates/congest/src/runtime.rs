//! The synchronous round loop.

use std::error::Error;
use std::fmt;

use minex_graphs::{Graph, NodeId};

use crate::message::{bits_for, Payload};
use crate::program::{Ctx, NodeProgram};

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CongestConfig {
    /// Per-edge, per-direction, per-round bandwidth in bits.
    pub bandwidth_bits: usize,
    /// Abort the run after this many rounds (guards against livelock).
    pub max_rounds: usize,
}

impl CongestConfig {
    /// The standard model parameters for an `n`-node network:
    /// `B = 8·⌈log₂(n+1)⌉` bits (a generous constant, enough for a tagged
    /// id/weight pair) and a `64·n + 1024` round guard.
    ///
    /// `n = 0` (an empty network) is clamped to `n = 1` so degenerate inputs
    /// still produce the same well-formed budgets as a singleton network
    /// instead of a `bits_for(1)`-derived artifact. At the other extreme the
    /// round guard saturates instead of wrapping, so absurd `n` (e.g.
    /// `usize::MAX`) yields a maximal guard rather than a tiny one.
    pub fn for_nodes(n: usize) -> Self {
        let n = n.max(1);
        CongestConfig {
            bandwidth_bits: 8 * bits_for(n.saturating_add(1)).max(8),
            max_rounds: n.saturating_mul(64).saturating_add(1024),
        }
    }

    /// Overrides the bandwidth.
    pub fn with_bandwidth(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Overrides the round guard.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }
}

/// Cost and volume statistics of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of synchronous rounds executed until global quiescence.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Sum of message sizes, in bits.
    pub total_bits: u64,
}

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message exceeded the per-edge bandwidth.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Offending message size.
        bits: usize,
        /// Configured budget.
        budget: usize,
    },
    /// A node sent two messages over one edge in one round.
    DuplicateSend {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// A node tried to message a non-neighbor.
    NotANeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// The round guard fired before quiescence.
    MaxRoundsExceeded {
        /// The configured guard.
        limit: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BandwidthExceeded {
                from,
                to,
                bits,
                budget,
            } => write!(
                f,
                "message {from}->{to} of {bits} bits exceeds the {budget}-bit budget"
            ),
            SimError::DuplicateSend { from, to } => {
                write!(f, "node {from} sent two messages to {to} in one round")
            }
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} attempted to message non-neighbor {to}")
            }
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "simulation did not quiesce within {limit} rounds")
            }
        }
    }
}

impl Error for SimError {}

/// Runs one node program per node until global quiescence: every program
/// reports [`NodeProgram::is_done`] and no messages are in flight.
///
/// Returns the run statistics. Programs can be inspected afterwards to
/// extract their outputs.
///
/// # Errors
///
/// Returns a [`SimError`] if a program violates the CONGEST constraints or
/// the round guard fires.
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run<P: NodeProgram>(
    graph: &Graph,
    programs: &mut [P],
    config: CongestConfig,
) -> Result<RunStats, SimError> {
    assert_eq!(
        programs.len(),
        graph.n(),
        "one program per node is required"
    );
    let n = graph.n();
    let mut stats = RunStats::default();
    // Batched delivery via double-buffered inboxes: `inboxes[v]` holds the
    // messages delivered to `v` this round, `next_inboxes[v]` collects the
    // sends for the next one. Both sides (and the scratch buffers below) are
    // allocated once; each round consumes in place and swaps the buffers, so
    // the steady-state loop performs no allocation.
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
    let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
    let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
    // Tracks (from) -> set of destinations used this round, reset per node.
    let mut seen_dest: Vec<bool> = vec![false; n];
    let mut used: Vec<NodeId> = Vec::new();
    for round in 0..config.max_rounds {
        let mut any_message = false;
        for v in 0..n {
            // Quiescence fast path: a done node with no mail does not act.
            // Round 0 always runs so programs can initialize.
            if round > 0 && inboxes[v].is_empty() && programs[v].is_done() {
                continue;
            }
            outbox.clear();
            {
                let mut ctx = Ctx::new(graph, v, round, &inboxes[v], &mut outbox);
                programs[v].on_round(&mut ctx);
            }
            // The inbox is consumed; empty it in place, keeping its capacity
            // for the swap two rounds from now.
            inboxes[v].clear();
            // Validate and enqueue.
            used.clear();
            for (to, msg) in outbox.drain(..) {
                if graph.edge_between(v, to).is_none() {
                    return Err(SimError::NotANeighbor { from: v, to });
                }
                if seen_dest[to] {
                    return Err(SimError::DuplicateSend { from: v, to });
                }
                seen_dest[to] = true;
                used.push(to);
                let bits = msg.bit_size();
                if bits > config.bandwidth_bits {
                    return Err(SimError::BandwidthExceeded {
                        from: v,
                        to,
                        bits,
                        budget: config.bandwidth_bits,
                    });
                }
                stats.messages += 1;
                stats.total_bits += bits as u64;
                stats.max_message_bits = stats.max_message_bits.max(bits);
                next_inboxes[to].push((v, msg));
                any_message = true;
            }
            for &to in &used {
                seen_dest[to] = false;
            }
        }
        let all_done = (0..n).all(|v| programs[v].is_done());
        // Every processed slot of `inboxes` was cleared above and skipped
        // slots were already empty, so after the swap `next_inboxes` is all
        // empty (but warm) for the round after next.
        std::mem::swap(&mut inboxes, &mut next_inboxes);
        if all_done && !any_message {
            stats.rounds = round;
            return Ok(stats);
        }
        stats.rounds = round + 1;
    }
    Err(SimError::MaxRoundsExceeded {
        limit: config.max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Ctx, NodeProgram};
    use minex_graphs::generators;

    /// Floods the minimum id seen so far; classic leader election.
    #[derive(Debug, Clone)]
    struct MinFlood {
        best: usize,
        dirty: bool,
    }

    impl NodeProgram for MinFlood {
        type Msg = usize;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 {
                self.best = ctx.node();
                self.dirty = true;
            }
            for &(_, msg) in ctx.inbox() {
                if msg < self.best {
                    self.best = msg;
                    self.dirty = true;
                }
            }
            if self.dirty {
                self.dirty = false;
                ctx.broadcast(self.best);
            }
        }
        fn is_done(&self) -> bool {
            !self.dirty
        }
    }

    #[test]
    fn min_flood_elects_node_zero() {
        let g = generators::cycle(16);
        let mut programs = vec![
            MinFlood {
                best: usize::MAX,
                dirty: true
            };
            16
        ];
        let stats = run(&g, &mut programs, CongestConfig::for_nodes(16)).unwrap();
        assert!(programs.iter().all(|p| p.best == 0));
        // Flooding a cycle of 16 takes about half the cycle.
        assert!(
            stats.rounds >= 8 && stats.rounds <= 10,
            "rounds={}",
            stats.rounds
        );
        assert!(stats.messages > 0);
    }

    /// A program that violates bandwidth on purpose.
    #[derive(Debug, Clone)]
    struct Blaster;
    impl NodeProgram for Blaster {
        type Msg = (u64, u64);
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.broadcast((1, 2));
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn bandwidth_is_enforced() {
        let g = generators::path(4);
        let mut programs = vec![Blaster; 4];
        let err = run(
            &g,
            &mut programs,
            CongestConfig::for_nodes(4).with_bandwidth(64),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { bits: 128, .. }));
    }

    /// Sends twice to the same neighbor.
    #[derive(Debug, Clone)]
    struct DoubleSend;
    impl NodeProgram for DoubleSend {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.send(1, 5);
                ctx.send(1, 6);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn duplicate_sends_rejected() {
        let g = generators::path(2);
        let mut programs = vec![DoubleSend; 2];
        let err = run(&g, &mut programs, CongestConfig::for_nodes(2)).unwrap_err();
        assert_eq!(err, SimError::DuplicateSend { from: 0, to: 1 });
    }

    /// Messages a non-neighbor.
    #[derive(Debug, Clone)]
    struct Teleporter;
    impl NodeProgram for Teleporter {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.send(3, 1);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn non_neighbor_rejected() {
        let g = generators::path(4);
        let mut programs = vec![Teleporter; 4];
        let err = run(&g, &mut programs, CongestConfig::for_nodes(4)).unwrap_err();
        assert_eq!(err, SimError::NotANeighbor { from: 0, to: 3 });
    }

    /// Never finishes.
    #[derive(Debug, Clone)]
    struct Livelock;
    impl NodeProgram for Livelock {
        type Msg = u32;
        fn on_round(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_guard_fires() {
        let g = generators::path(2);
        let mut programs = vec![Livelock; 2];
        let err = run(
            &g,
            &mut programs,
            CongestConfig::for_nodes(2).with_max_rounds(10),
        )
        .unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
    }

    /// The seed's per-round-allocating delivery loop, kept verbatim as the
    /// reference semantics the batched runtime must reproduce exactly.
    fn run_naive<P: NodeProgram>(
        graph: &Graph,
        programs: &mut [P],
        config: CongestConfig,
    ) -> Result<RunStats, SimError> {
        let n = graph.n();
        let mut stats = RunStats::default();
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut seen_dest: Vec<bool> = vec![false; n];
        for round in 0..config.max_rounds {
            let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
            let mut any_message = false;
            for v in 0..n {
                let inbox = std::mem::take(&mut inboxes[v]);
                if round > 0 && inbox.is_empty() && programs[v].is_done() {
                    continue;
                }
                outbox.clear();
                {
                    let mut ctx = Ctx::new(graph, v, round, &inbox, &mut outbox);
                    programs[v].on_round(&mut ctx);
                }
                let mut used: Vec<NodeId> = Vec::with_capacity(outbox.len());
                for (to, msg) in outbox.drain(..) {
                    if graph.edge_between(v, to).is_none() {
                        return Err(SimError::NotANeighbor { from: v, to });
                    }
                    if seen_dest[to] {
                        return Err(SimError::DuplicateSend { from: v, to });
                    }
                    seen_dest[to] = true;
                    used.push(to);
                    let bits = msg.bit_size();
                    if bits > config.bandwidth_bits {
                        return Err(SimError::BandwidthExceeded {
                            from: v,
                            to,
                            bits,
                            budget: config.bandwidth_bits,
                        });
                    }
                    stats.messages += 1;
                    stats.total_bits += bits as u64;
                    stats.max_message_bits = stats.max_message_bits.max(bits);
                    next_inboxes[to].push((v, msg));
                    any_message = true;
                }
                for to in used {
                    seen_dest[to] = false;
                }
            }
            let all_done = (0..n).all(|v| programs[v].is_done());
            inboxes = next_inboxes;
            if all_done && !any_message {
                stats.rounds = round;
                return Ok(stats);
            }
            stats.rounds = round + 1;
        }
        Err(SimError::MaxRoundsExceeded {
            limit: config.max_rounds,
        })
    }

    #[test]
    fn batched_delivery_matches_naive_reference() {
        for g in [
            generators::cycle(16),
            generators::path(12),
            generators::grid(6, 9),
            generators::complete(9),
            generators::wheel(17),
        ] {
            let n = g.n();
            let mut batched = vec![
                MinFlood {
                    best: usize::MAX,
                    dirty: true
                };
                n
            ];
            let mut naive = batched.clone();
            let a = run(&g, &mut batched, CongestConfig::for_nodes(n)).unwrap();
            let b = run_naive(&g, &mut naive, CongestConfig::for_nodes(n)).unwrap();
            assert_eq!(a, b, "MinFlood stats diverge on n={n}");

            let mut batched = vec![Pinger3 { rounds_left: 3 }; n];
            let mut naive = batched.clone();
            let a = run(&g, &mut batched, CongestConfig::for_nodes(n)).unwrap();
            let b = run_naive(&g, &mut naive, CongestConfig::for_nodes(n)).unwrap();
            assert_eq!(a, b, "Pinger stats diverge on n={n}");
        }
    }

    /// Broadcasts for three rounds (used by the equivalence test).
    #[derive(Debug, Clone)]
    struct Pinger3 {
        rounds_left: usize,
    }

    impl NodeProgram for Pinger3 {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.broadcast(7);
            }
        }
        fn is_done(&self) -> bool {
            self.rounds_left == 0
        }
    }

    #[test]
    fn for_nodes_small_n_is_pinned() {
        // n = 0 clamps to the singleton configuration.
        let c0 = CongestConfig::for_nodes(0);
        let c1 = CongestConfig::for_nodes(1);
        assert_eq!((c0.bandwidth_bits, c0.max_rounds), (64, 1088));
        assert_eq!((c1.bandwidth_bits, c1.max_rounds), (64, 1088));
        // n = 2: bits_for(3) = 2, floored to the 8-bit minimum word.
        let c2 = CongestConfig::for_nodes(2);
        assert_eq!((c2.bandwidth_bits, c2.max_rounds), (64, 1152));
    }

    #[test]
    fn for_nodes_huge_n_saturates_instead_of_wrapping() {
        // 64·n + 1024 would wrap for n near usize::MAX and leave a tiny (or
        // zero) round guard; the saturating form pins it to the maximum.
        for n in [usize::MAX, usize::MAX / 2, usize::MAX / 64 + 1] {
            let c = CongestConfig::for_nodes(n);
            assert_eq!(c.max_rounds, usize::MAX, "n={n}");
            assert!(c.bandwidth_bits >= 64);
        }
        // Just below the saturation point the exact formula still applies.
        let n = (usize::MAX - 1024) / 64;
        let c = CongestConfig::for_nodes(n);
        assert_eq!(c.max_rounds, n * 64 + 1024);
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let g = minex_graphs::Graph::from_edges(0, std::iter::empty()).unwrap();
        let mut programs: Vec<MinFlood> = Vec::new();
        let stats = run(&g, &mut programs, CongestConfig::for_nodes(0)).unwrap();
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn immediate_quiescence_costs_zero_rounds() {
        #[derive(Debug, Clone)]
        struct Noop;
        impl NodeProgram for Noop {
            type Msg = u32;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(3);
        let mut programs = vec![Noop; 3];
        let stats = run(&g, &mut programs, CongestConfig::for_nodes(3)).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }
}

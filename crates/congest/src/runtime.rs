//! The synchronous round loop.

use std::error::Error;
use std::fmt;

use minex_graphs::{EdgeId, GraphView, NodeId};

use crate::message::{bits_for, Payload};
use crate::program::{Ctx, NodeProgram};
use crate::soa::{Outbox, NO_HINT};
use crate::telemetry::{self, NoopSink, Sink};

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CongestConfig {
    /// Per-edge, per-direction, per-round bandwidth in bits.
    pub bandwidth_bits: usize,
    /// Abort the run after this many rounds (guards against livelock).
    pub max_rounds: usize,
    /// Worker threads for the execution engine: `1` runs the sequential
    /// engine, larger values shard each round across that many workers, and
    /// `0` resolves to the machine's available parallelism. Both engines
    /// produce byte-identical [`RunStats`], program outputs, and errors.
    pub threads: usize,
}

/// The process-wide default thread count used by
/// [`CongestConfig::for_nodes`]: the `MINEX_THREADS` environment variable if
/// set to a parseable integer (read once, at first use), else `1`.
fn default_threads() -> usize {
    static ENV_DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("MINEX_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(1)
    })
}

impl CongestConfig {
    /// The standard model parameters for an `n`-node network:
    /// `B = 8·⌈log₂(n+1)⌉` bits (a generous constant, enough for a tagged
    /// id/weight pair) and a `64·n + 1024` round guard. The engine thread
    /// count defaults to the `MINEX_THREADS` environment variable (else 1),
    /// so a test matrix can exercise the parallel engine without touching
    /// call sites.
    ///
    /// `n = 0` (an empty network) is clamped to `n = 1` so degenerate inputs
    /// still produce the same well-formed budgets as a singleton network
    /// instead of a `bits_for(1)`-derived artifact. At the other extreme the
    /// round guard saturates instead of wrapping, so absurd `n` (e.g.
    /// `usize::MAX`) yields a maximal guard rather than a tiny one.
    pub fn for_nodes(n: usize) -> Self {
        let n = n.max(1);
        CongestConfig {
            bandwidth_bits: 8 * bits_for(n.saturating_add(1)).max(8),
            max_rounds: n.saturating_mul(64).saturating_add(1024),
            threads: default_threads(),
        }
    }

    /// Overrides the bandwidth.
    pub fn with_bandwidth(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Overrides the round guard.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Overrides the engine thread count (`1` = sequential engine, `0` =
    /// available parallelism). Results are identical either way; threads only
    /// trade wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker count the engine will actually use: `0` resolves to
    /// [`std::thread::available_parallelism`] (or 1 if that is unknowable).
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        }
    }
}

/// Cost and volume statistics of a completed run.
///
/// Every counter is **engine-independent**: the sequential and the
/// multi-threaded engine produce byte-identical `RunStats` for the same
/// graph, programs, and config — [`threads`](CongestConfig::threads) only
/// changes wall-clock time, never what is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of synchronous rounds executed until global quiescence.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Sum of message sizes, in bits.
    pub total_bits: u64,
}

impl RunStats {
    /// Accumulates `other` into `self`: rounds, messages, and bits add up;
    /// the maximum message size takes the max. This is how multi-phase
    /// drivers (and the `minex::Solver` session reports) aggregate the cost
    /// of several sequential simulator runs into one figure.
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.total_bits += other.total_bits;
    }

    /// The cost of running the same simulation `k` times in sequence:
    /// rounds, messages, and bits scale by `k`; the maximum message size is
    /// unchanged. Used for analytically charged repetitions (e.g. tree
    /// packing charges one Borůvka profile per packed tree).
    #[must_use]
    pub fn repeated(mut self, k: usize) -> RunStats {
        self.rounds *= k;
        self.messages *= k as u64;
        self.total_bits *= k as u64;
        self
    }
}

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message exceeded the per-edge bandwidth.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Offending message size.
        bits: usize,
        /// Configured budget.
        budget: usize,
    },
    /// A node sent two messages over one edge in one round.
    DuplicateSend {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// A node tried to message a non-neighbor.
    NotANeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// The round guard fired before quiescence.
    MaxRoundsExceeded {
        /// The configured guard.
        limit: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BandwidthExceeded {
                from,
                to,
                bits,
                budget,
            } => write!(
                f,
                "message {from}->{to} of {bits} bits exceeds the {budget}-bit budget"
            ),
            SimError::DuplicateSend { from, to } => {
                write!(f, "node {from} sent two messages to {to} in one round")
            }
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} attempted to message non-neighbor {to}")
            }
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "simulation did not quiesce within {limit} rounds")
            }
        }
    }
}

impl Error for SimError {}

/// Per-sender send validation shared by both engines, so the CONGEST
/// constraints are checked in exactly the same order (neighborship, then
/// per-edge-per-round uniqueness, then bandwidth) regardless of engine.
#[derive(Debug)]
pub(crate) struct SendValidator {
    /// Destinations already used by the current sender this round.
    seen_dest: Vec<bool>,
    /// The set bits of `seen_dest`, for O(degree) reset.
    used: Vec<NodeId>,
}

impl SendValidator {
    pub(crate) fn new(n: usize) -> Self {
        SendValidator {
            seen_dest: vec![false; n],
            used: Vec::new(),
        }
    }

    /// Validates one queued send of `bits` bits from `from` to `to`,
    /// returning the id of the edge it crosses (the neighborship lookup
    /// already pays for it, and telemetry sinks key per-link load by it).
    ///
    /// `hint` is the outbox's edge-id hint column entry: broadcasts record
    /// the CSR edge id at queue time, so the `edge_between` binary search
    /// is skipped for them; [`NO_HINT`] (plain `send`) pays the lookup.
    /// Hints originate from the graph's own CSR row, so taking them at
    /// face value cannot change which sends are accepted — the check order
    /// (neighborship, duplicate, bandwidth) is observably identical either
    /// way.
    #[inline]
    pub(crate) fn check(
        &mut self,
        graph: &dyn GraphView,
        config: &CongestConfig,
        from: NodeId,
        to: NodeId,
        hint: u32,
        bits: usize,
    ) -> Result<EdgeId, SimError> {
        let edge = if hint == NO_HINT {
            match graph.edge_between(from, to) {
                Some(edge) => edge,
                None => return Err(SimError::NotANeighbor { from, to }),
            }
        } else {
            debug_assert_eq!(graph.edge_between(from, to), Some(hint as EdgeId));
            hint as EdgeId
        };
        if self.seen_dest[to] {
            return Err(SimError::DuplicateSend { from, to });
        }
        self.seen_dest[to] = true;
        self.used.push(to);
        if bits > config.bandwidth_bits {
            return Err(SimError::BandwidthExceeded {
                from,
                to,
                bits,
                budget: config.bandwidth_bits,
            });
        }
        Ok(edge)
    }

    /// Clears the per-sender state; call once the sender's outbox is drained.
    #[inline]
    pub(crate) fn finish_sender(&mut self) {
        for &to in &self.used {
            self.seen_dest[to] = false;
        }
        self.used.clear();
    }
}

/// Runs one node program per node until global quiescence: every program
/// reports [`NodeProgram::is_done`] and no messages are in flight.
///
/// Returns the run statistics. Programs can be inspected afterwards to
/// extract their outputs.
///
/// [`CongestConfig::threads`] selects the execution engine: `1` (the
/// default) is the sequential round loop, anything larger shards each round
/// across that many worker threads. On every successful run the engines are
/// observationally identical — same `RunStats`, same program states — because
/// CONGEST rounds are embarrassingly parallel: every node reads only its own
/// inbox and writes only its own outbox, and the parallel engine merges
/// outboxes into the next round's inboxes in node-id order.
///
/// # Errors
///
/// Returns a [`SimError`] if a program violates the CONGEST constraints or
/// the round guard fires. Error selection is deterministic on both engines:
/// the violation with the smallest sender id (and, within one sender, the
/// earliest queued message) is the one reported. After an `Err`, though,
/// the *program states* are engine-dependent (the sequential engine stops
/// mid-round at the offender; a parallel run's other shards finish their
/// nodes first) — only inspect `programs` after an `Ok`.
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run<P>(
    graph: &(dyn GraphView + Sync),
    programs: &mut [P],
    config: CongestConfig,
) -> Result<RunStats, SimError>
where
    P: NodeProgram + Send,
    P::Msg: Send,
{
    // One branch per run decides between the recording and the no-op
    // monomorphization; the no-op leg compiles to the uninstrumented round
    // loop (every `NoopSink` hook is an empty inline default).
    match telemetry::take_active() {
        Some(mut profile) => {
            let result = run_with_sink(graph, programs, config, &mut profile);
            telemetry::put_active(profile);
            result
        }
        None => run_with_sink(graph, programs, config, &mut NoopSink),
    }
}

/// [`run`] with an explicit telemetry [`Sink`] receiving every engine
/// event. Semantics, determinism, and error selection are identical to
/// `run`; see the [`telemetry`](crate::telemetry) module docs for the
/// hook order and the recorder determinism contract.
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run_with_sink<P, S>(
    graph: &(dyn GraphView + Sync),
    programs: &mut [P],
    config: CongestConfig,
    sink: &mut S,
) -> Result<RunStats, SimError>
where
    P: NodeProgram + Send,
    P::Msg: Send,
    S: Sink,
{
    assert_eq!(
        programs.len(),
        graph.n(),
        "one program per node is required"
    );
    // More workers than nodes cannot help; empty networks and singletons
    // always take the sequential path.
    let threads = config.resolved_threads().min(graph.n().max(1));
    let result = if threads <= 1 {
        run_sequential(graph, programs, config, sink)
    } else {
        crate::parallel::run_parallel(graph, programs, config, threads, sink)
    };
    // Rejections are reported here, after the parallel engine has merged
    // its shard sinks, so both engines fire exactly one deterministic
    // rejection event on the root sink.
    if let Err(ref err) = result {
        sink.on_reject(err);
    }
    result
}

/// The single-threaded engine: the reference semantics.
fn run_sequential<P: NodeProgram, S: Sink>(
    graph: &(dyn GraphView + Sync),
    programs: &mut [P],
    config: CongestConfig,
    sink: &mut S,
) -> Result<RunStats, SimError> {
    let n = graph.n();
    let mut stats = RunStats::default();
    // Batched delivery via double-buffered inboxes: `inboxes[v]` holds the
    // messages delivered to `v` this round, `next_inboxes[v]` collects the
    // sends for the next one. Both sides (and the scratch buffers below) are
    // allocated once; each round consumes in place and swaps the buffers, so
    // the steady-state loop performs no allocation.
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
    let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
    let mut outbox: Outbox<P::Msg> = Outbox::new();
    let mut validator = SendValidator::new(n);
    for round in 0..config.max_rounds {
        sink.on_round_start(round);
        let mut any_message = false;
        for v in 0..n {
            // Quiescence fast path: a done node with no mail does not act.
            // Round 0 always runs so programs can initialize.
            if round > 0 && inboxes[v].is_empty() && programs[v].is_done() {
                continue;
            }
            for (from, msg) in &inboxes[v] {
                sink.on_deliver(round, *from, v, msg.bit_size());
            }
            outbox.clear();
            {
                let mut ctx = Ctx::new(graph, v, round, &inboxes[v], &mut outbox);
                programs[v].on_round(&mut ctx);
            }
            // The inbox is consumed; empty it in place, keeping its capacity
            // for the swap two rounds from now.
            inboxes[v].clear();
            // Validation sweep: a branch-light pass over just the id/hint
            // columns (payloads untouched — only `bit_size` is read).
            for i in 0..outbox.len() {
                let to = outbox.dsts[i] as NodeId;
                let bits = outbox.payloads[i].bit_size();
                let edge = validator.check(graph, &config, v, to, outbox.hints[i], bits)?;
                sink.on_send(round, v, to, edge, bits);
                stats.messages += 1;
                stats.total_bits += bits as u64;
                stats.max_message_bits = stats.max_message_bits.max(bits);
                any_message = true;
            }
            validator.finish_sender();
            // Every send validated: move the payload column into the
            // destination inboxes. Deferring the moves past the sweep is
            // unobservable — an `Err` above returns immediately and all
            // engine state is discarded.
            for (&to, msg) in outbox.dsts.iter().zip(outbox.payloads.drain(..)) {
                next_inboxes[to as usize].push((v, msg));
            }
            outbox.clear();
        }
        let all_done = (0..n).all(|v| programs[v].is_done());
        // Every processed slot of `inboxes` was cleared above and skipped
        // slots were already empty, so after the swap `next_inboxes` is all
        // empty (but warm) for the round after next.
        std::mem::swap(&mut inboxes, &mut next_inboxes);
        sink.on_round_end(round);
        if all_done && !any_message {
            stats.rounds = round;
            return Ok(stats);
        }
        stats.rounds = round + 1;
    }
    Err(SimError::MaxRoundsExceeded {
        limit: config.max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Ctx, NodeProgram};
    use minex_graphs::generators;

    /// Floods the minimum id seen so far; classic leader election.
    #[derive(Debug, Clone)]
    struct MinFlood {
        best: usize,
        dirty: bool,
    }

    impl NodeProgram for MinFlood {
        type Msg = usize;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 {
                self.best = ctx.node();
                self.dirty = true;
            }
            for &(_, msg) in ctx.inbox() {
                if msg < self.best {
                    self.best = msg;
                    self.dirty = true;
                }
            }
            if self.dirty {
                self.dirty = false;
                ctx.broadcast(self.best);
            }
        }
        fn is_done(&self) -> bool {
            !self.dirty
        }
    }

    #[test]
    fn min_flood_elects_node_zero() {
        let g = generators::cycle(16);
        let mut programs = vec![
            MinFlood {
                best: usize::MAX,
                dirty: true
            };
            16
        ];
        let stats = run(&g, &mut programs, CongestConfig::for_nodes(16)).unwrap();
        assert!(programs.iter().all(|p| p.best == 0));
        // Flooding a cycle of 16 takes about half the cycle.
        assert!(
            stats.rounds >= 8 && stats.rounds <= 10,
            "rounds={}",
            stats.rounds
        );
        assert!(stats.messages > 0);
    }

    /// A program that violates bandwidth on purpose.
    #[derive(Debug, Clone)]
    struct Blaster;
    impl NodeProgram for Blaster {
        type Msg = (u64, u64);
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.broadcast((1, 2));
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn bandwidth_is_enforced() {
        let g = generators::path(4);
        let mut programs = vec![Blaster; 4];
        let err = run(
            &g,
            &mut programs,
            CongestConfig::for_nodes(4).with_bandwidth(64),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { bits: 128, .. }));
    }

    /// Sends twice to the same neighbor.
    #[derive(Debug, Clone)]
    struct DoubleSend;
    impl NodeProgram for DoubleSend {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.send(1, 5);
                ctx.send(1, 6);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn duplicate_sends_rejected() {
        let g = generators::path(2);
        let mut programs = vec![DoubleSend; 2];
        let err = run(&g, &mut programs, CongestConfig::for_nodes(2)).unwrap_err();
        assert_eq!(err, SimError::DuplicateSend { from: 0, to: 1 });
    }

    /// Messages a non-neighbor.
    #[derive(Debug, Clone)]
    struct Teleporter;
    impl NodeProgram for Teleporter {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.send(3, 1);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn non_neighbor_rejected() {
        let g = generators::path(4);
        let mut programs = vec![Teleporter; 4];
        let err = run(&g, &mut programs, CongestConfig::for_nodes(4)).unwrap_err();
        assert_eq!(err, SimError::NotANeighbor { from: 0, to: 3 });
    }

    /// Never finishes.
    #[derive(Debug, Clone)]
    struct Livelock;
    impl NodeProgram for Livelock {
        type Msg = u32;
        fn on_round(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_guard_fires() {
        let g = generators::path(2);
        let mut programs = vec![Livelock; 2];
        let err = run(
            &g,
            &mut programs,
            CongestConfig::for_nodes(2).with_max_rounds(10),
        )
        .unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
    }

    /// The seed's per-round-allocating delivery loop, kept verbatim as the
    /// reference semantics the batched runtime must reproduce exactly.
    fn run_naive<P: NodeProgram>(
        graph: &(dyn GraphView + Sync),
        programs: &mut [P],
        config: CongestConfig,
    ) -> Result<RunStats, SimError> {
        let n = graph.n();
        let mut stats = RunStats::default();
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut outbox: Outbox<P::Msg> = Outbox::new();
        let mut seen_dest: Vec<bool> = vec![false; n];
        for round in 0..config.max_rounds {
            let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
            let mut any_message = false;
            for v in 0..n {
                let inbox = std::mem::take(&mut inboxes[v]);
                if round > 0 && inbox.is_empty() && programs[v].is_done() {
                    continue;
                }
                outbox.clear();
                {
                    let mut ctx = Ctx::new(graph, v, round, &inbox, &mut outbox);
                    programs[v].on_round(&mut ctx);
                }
                let mut used: Vec<NodeId> = Vec::with_capacity(outbox.len());
                let hints = std::mem::take(&mut outbox.hints);
                for (i, (&to32, msg)) in outbox
                    .dsts
                    .iter()
                    .zip(outbox.payloads.drain(..))
                    .enumerate()
                {
                    let to = to32 as NodeId;
                    // Validate every message from scratch — the reference
                    // never trusts the hint column, it *audits* it.
                    match graph.edge_between(v, to) {
                        None => return Err(SimError::NotANeighbor { from: v, to }),
                        Some(edge) => {
                            if hints[i] != NO_HINT {
                                assert_eq!(
                                    hints[i] as EdgeId, edge,
                                    "outbox hint disagrees with edge_between for {v}->{to}"
                                );
                            }
                        }
                    }
                    if seen_dest[to] {
                        return Err(SimError::DuplicateSend { from: v, to });
                    }
                    seen_dest[to] = true;
                    used.push(to);
                    let bits = msg.bit_size();
                    if bits > config.bandwidth_bits {
                        return Err(SimError::BandwidthExceeded {
                            from: v,
                            to,
                            bits,
                            budget: config.bandwidth_bits,
                        });
                    }
                    stats.messages += 1;
                    stats.total_bits += bits as u64;
                    stats.max_message_bits = stats.max_message_bits.max(bits);
                    next_inboxes[to].push((v, msg));
                    any_message = true;
                }
                for to in used {
                    seen_dest[to] = false;
                }
            }
            let all_done = (0..n).all(|v| programs[v].is_done());
            inboxes = next_inboxes;
            if all_done && !any_message {
                stats.rounds = round;
                return Ok(stats);
            }
            stats.rounds = round + 1;
        }
        Err(SimError::MaxRoundsExceeded {
            limit: config.max_rounds,
        })
    }

    #[test]
    fn batched_delivery_matches_naive_reference() {
        for g in [
            generators::cycle(16),
            generators::path(12),
            generators::grid(6, 9),
            generators::complete(9),
            generators::wheel(17),
        ] {
            let n = g.n();
            let mut batched = vec![
                MinFlood {
                    best: usize::MAX,
                    dirty: true
                };
                n
            ];
            let mut naive = batched.clone();
            let a = run(&g, &mut batched, CongestConfig::for_nodes(n)).unwrap();
            let b = run_naive(&g, &mut naive, CongestConfig::for_nodes(n)).unwrap();
            assert_eq!(a, b, "MinFlood stats diverge on n={n}");

            let mut batched = vec![Pinger3 { rounds_left: 3 }; n];
            let mut naive = batched.clone();
            let a = run(&g, &mut batched, CongestConfig::for_nodes(n)).unwrap();
            let b = run_naive(&g, &mut naive, CongestConfig::for_nodes(n)).unwrap();
            assert_eq!(a, b, "Pinger stats diverge on n={n}");
        }
    }

    /// Broadcasts for three rounds (used by the equivalence test).
    #[derive(Debug, Clone)]
    struct Pinger3 {
        rounds_left: usize,
    }

    impl NodeProgram for Pinger3 {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.broadcast(7);
            }
        }
        fn is_done(&self) -> bool {
            self.rounds_left == 0
        }
    }

    /// Sends one oversized message from a configurable node — used to plant
    /// violations at several places in one round.
    #[derive(Debug, Clone)]
    struct BlastFrom {
        active: bool,
    }
    impl NodeProgram for BlastFrom {
        type Msg = (u64, u64);
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.round() == 0 && self.active {
                ctx.broadcast((1, 2));
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    /// Mixes hinted broadcasts with unhinted targeted sends,
    /// data-dependently, so the SoA engines drive both validator paths
    /// against the AoS reference in one run.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Mixer {
        acc: u64,
        bursts_left: usize,
    }

    impl NodeProgram for Mixer {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            for &(from, msg) in ctx.inbox() {
                self.acc = self
                    .acc
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(msg ^ from as u64);
            }
            if self.bursts_left > 0 {
                self.bursts_left -= 1;
                if self.acc % 2 == 0 {
                    ctx.broadcast(self.acc);
                } else {
                    let targets: Vec<NodeId> = ctx
                        .neighbors()
                        .filter(|&(w, _)| (self.acc ^ w as u64) % 3 != 0)
                        .map(|(w, _)| w)
                        .collect();
                    for w in targets {
                        ctx.send(w, self.acc ^ w as u64);
                    }
                }
            }
        }
        fn is_done(&self) -> bool {
            self.bursts_left == 0
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// SoA-vs-AoS byte identity: the column-based engines (sequential
        /// and 4-thread) must match the tuple-based `run_naive` reference —
        /// stats and final program states — on irregular traffic.
        #[test]
        fn soa_engines_match_aos_reference(
            n in 4usize..48, extra in 0usize..32, seed in 0u64..1000,
        ) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let g = generators::random_connected(n, extra, &mut rng);
            let fresh: Vec<Mixer> = (0..n)
                .map(|v| Mixer { acc: v as u64 ^ seed, bursts_left: 1 + v % 4 })
                .collect();
            let mut naive = fresh.clone();
            let a = run_naive(&g, &mut naive, CongestConfig::for_nodes(n)).unwrap();
            for threads in [1usize, 4] {
                let mut soa = fresh.clone();
                let b = run(
                    &g,
                    &mut soa,
                    CongestConfig::for_nodes(n).with_threads(threads),
                )
                .unwrap();
                proptest::prop_assert_eq!(a, b, "stats diverge (threads={})", threads);
                proptest::prop_assert_eq!(
                    &naive, &soa,
                    "program states diverge (threads={})", threads
                );
            }
        }
    }

    #[test]
    fn parallel_engine_matches_sequential() {
        for g in [
            generators::cycle(16),
            generators::path(12),
            generators::grid(6, 9),
            generators::complete(9),
            generators::wheel(17),
        ] {
            let n = g.n();
            for threads in [2usize, 3, 4, 7, 0] {
                let mut seq = vec![
                    MinFlood {
                        best: usize::MAX,
                        dirty: true
                    };
                    n
                ];
                let mut par = seq.clone();
                let a = run(&g, &mut seq, CongestConfig::for_nodes(n).with_threads(1)).unwrap();
                let b = run(
                    &g,
                    &mut par,
                    CongestConfig::for_nodes(n).with_threads(threads),
                )
                .unwrap();
                assert_eq!(a, b, "MinFlood stats diverge on n={n}, threads={threads}");
                assert!(
                    seq.iter().zip(&par).all(|(x, y)| x.best == y.best),
                    "MinFlood outputs diverge on n={n}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_handles_more_threads_than_nodes() {
        let g = generators::path(3);
        let mut programs = vec![
            MinFlood {
                best: usize::MAX,
                dirty: true
            };
            3
        ];
        let stats = run(
            &g,
            &mut programs,
            CongestConfig::for_nodes(3).with_threads(64),
        )
        .unwrap();
        assert!(programs.iter().all(|p| p.best == 0));
        assert!(stats.messages > 0);
    }

    #[test]
    fn error_selection_is_deterministic_across_engines() {
        // Nodes 2 and 14 both blast oversized broadcasts in round 0. The
        // sequential engine reports node 2's first send; any sharding of the
        // parallel engine must report the identical (from, to) pair even
        // though node 14 lives in a later shard that may finish first.
        let g = generators::cycle(16);
        let make = || {
            (0..16)
                .map(|v| BlastFrom {
                    active: v == 2 || v == 14,
                })
                .collect::<Vec<_>>()
        };
        let config = CongestConfig::for_nodes(16).with_bandwidth(64);
        let seq_err = run(&g, &mut make(), config.with_threads(1)).unwrap_err();
        for threads in [2usize, 3, 4, 8, 16] {
            let par_err = run(&g, &mut make(), config.with_threads(threads)).unwrap_err();
            assert_eq!(seq_err, par_err, "threads={threads}");
        }
        assert!(
            matches!(seq_err, SimError::BandwidthExceeded { from: 2, .. }),
            "{seq_err:?}"
        );
    }

    #[test]
    fn duplicate_and_non_neighbor_errors_match_across_engines() {
        let g = generators::path(8);
        let mut seq = vec![DoubleSend; 8];
        let seq_err = run(&g, &mut seq, CongestConfig::for_nodes(8).with_threads(1)).unwrap_err();
        let mut par = vec![DoubleSend; 8];
        let par_err = run(&g, &mut par, CongestConfig::for_nodes(8).with_threads(4)).unwrap_err();
        assert_eq!(seq_err, par_err);

        let mut seq = vec![Teleporter; 8];
        let seq_err = run(&g, &mut seq, CongestConfig::for_nodes(8).with_threads(1)).unwrap_err();
        let mut par = vec![Teleporter; 8];
        let par_err = run(&g, &mut par, CongestConfig::for_nodes(8).with_threads(4)).unwrap_err();
        assert_eq!(seq_err, par_err);
    }

    #[test]
    fn round_guard_fires_on_parallel_engine() {
        let g = generators::path(4);
        let mut programs = vec![Livelock; 4];
        let err = run(
            &g,
            &mut programs,
            CongestConfig::for_nodes(4)
                .with_max_rounds(10)
                .with_threads(2),
        )
        .unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
    }

    #[test]
    fn with_threads_and_resolution() {
        let c = CongestConfig::for_nodes(8);
        assert_eq!(c.with_threads(3).threads, 3);
        assert_eq!(c.with_threads(3).resolved_threads(), 3);
        // `0` resolves to the machine's parallelism, which is at least 1.
        assert!(c.with_threads(0).resolved_threads() >= 1);
    }

    #[test]
    fn for_nodes_small_n_is_pinned() {
        // n = 0 clamps to the singleton configuration.
        let c0 = CongestConfig::for_nodes(0);
        let c1 = CongestConfig::for_nodes(1);
        assert_eq!((c0.bandwidth_bits, c0.max_rounds), (64, 1088));
        assert_eq!((c1.bandwidth_bits, c1.max_rounds), (64, 1088));
        // n = 2: bits_for(3) = 2, floored to the 8-bit minimum word.
        let c2 = CongestConfig::for_nodes(2);
        assert_eq!((c2.bandwidth_bits, c2.max_rounds), (64, 1152));
    }

    #[test]
    fn for_nodes_huge_n_saturates_instead_of_wrapping() {
        // 64·n + 1024 would wrap for n near usize::MAX and leave a tiny (or
        // zero) round guard; the saturating form pins it to the maximum.
        for n in [usize::MAX, usize::MAX / 2, usize::MAX / 64 + 1] {
            let c = CongestConfig::for_nodes(n);
            assert_eq!(c.max_rounds, usize::MAX, "n={n}");
            assert!(c.bandwidth_bits >= 64);
        }
        // Just below the saturation point the exact formula still applies.
        let n = (usize::MAX - 1024) / 64;
        let c = CongestConfig::for_nodes(n);
        assert_eq!(c.max_rounds, n * 64 + 1024);
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let g = minex_graphs::Graph::from_edges(0, std::iter::empty()).unwrap();
        let mut programs: Vec<MinFlood> = Vec::new();
        let stats = run(&g, &mut programs, CongestConfig::for_nodes(0)).unwrap();
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn immediate_quiescence_costs_zero_rounds() {
        #[derive(Debug, Clone)]
        struct Noop;
        impl NodeProgram for Noop {
            type Msg = u32;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(3);
        let mut programs = vec![Noop; 3];
        let stats = run(&g, &mut programs, CongestConfig::for_nodes(3)).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }
}

//! # minex-congest
//!
//! A deterministic, synchronous simulator of the **CONGEST model**
//! (Section 1.3.1 of Haeupler–Li–Zuzic, PODC 2018): communication proceeds
//! in rounds; per round, each node may send one `O(log n)`-bit message to
//! each neighbor; local computation is free.
//!
//! The simulator enforces the model exactly — message sizes are accounted in
//! bits and per-edge-per-round uniqueness is checked — so the *round counts*
//! it reports are the model's true cost measure.
//!
//! Two execution engines share those semantics: the sequential round loop
//! (default) and a deterministic multi-threaded engine selected via
//! [`CongestConfig::with_threads`] (or the `MINEX_THREADS` environment
//! variable). Successful runs are byte-identical across engines —
//! [`RunStats`], program outputs, and the error *selection* on failing runs
//! (see [`run`]); threads only trade wall-clock time.
//!
//! ## Example
//!
//! ```
//! use minex_congest::{primitives, CongestConfig};
//! use minex_graphs::generators;
//!
//! let g = generators::grid(8, 8);
//! let tree = primitives::build_bfs_tree(&g, 0, CongestConfig::for_nodes(g.n()))?;
//! assert_eq!(tree.dist[63], 14); // opposite corner of the grid
//! # Ok::<(), minex_congest::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod message;
mod parallel;
pub mod primitives;
mod program;
mod runtime;

pub use message::{bits_for, Payload};
pub use program::{Ctx, NodeProgram};
pub use runtime::{run, CongestConfig, RunStats, SimError};

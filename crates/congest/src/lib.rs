//! # minex-congest
//!
//! A deterministic, synchronous simulator of the **CONGEST model**
//! (Section 1.3.1 of Haeupler–Li–Zuzic, PODC 2018): communication proceeds
//! in rounds; per round, each node may send one `O(log n)`-bit message to
//! each neighbor; local computation is free.
//!
//! The simulator enforces the model exactly — message sizes are accounted in
//! bits and per-edge-per-round uniqueness is checked — so the *round counts*
//! it reports are the model's true cost measure.
//!
//! Two execution engines share those semantics: the sequential round loop
//! (default) and a deterministic multi-threaded engine selected via
//! [`CongestConfig::with_threads`] (or the `MINEX_THREADS` environment
//! variable). Successful runs are byte-identical across engines —
//! [`RunStats`], program outputs, and the error *selection* on failing runs
//! (see [`run`]); threads only trade wall-clock time.
//!
//! Both engines are instrumented with the zero-cost-when-off
//! [`telemetry`] layer: a [`Sink`] receives per-round, per-send,
//! per-delivery, and rejection events, and the [`CongestionProfile`]
//! recorder turns them into per-edge congestion maps, per-round
//! histograms, and phase attribution — byte-identical across engines and
//! thread counts. The default [`NoopSink`] monomorphizes every hook away.
//!
//! ## Example
//!
//! ```
//! use minex_congest::{primitives, CongestConfig};
//! use minex_graphs::generators;
//!
//! let g = generators::grid(8, 8);
//! let tree = primitives::build_bfs_tree(&g, 0, CongestConfig::for_nodes(g.n()))?;
//! assert_eq!(tree.dist[63], 14); // opposite corner of the grid
//! # Ok::<(), minex_congest::SimError>(())
//! ```
//!
//! ## Recording a congestion profile
//!
//! [`telemetry::record`] scopes a recorder over unmodified [`run`] call
//! sites; [`run_with_sink`] passes one explicitly:
//!
//! ```
//! use minex_congest::telemetry::{self, CongestionProfile};
//! use minex_congest::{primitives, CongestConfig};
//! use minex_graphs::generators;
//!
//! let g = generators::grid(8, 8);
//! let mut profile = CongestionProfile::new();
//! let tree = telemetry::record(&mut profile, || {
//!     primitives::build_bfs_tree(&g, 0, CongestConfig::for_nodes(g.n()))
//! })?;
//! assert_eq!(profile.total_messages(), tree.stats.messages);
//! let (hottest_edge, load) = profile.hot_links(1)[0];
//! assert!(load.messages >= 1 && hottest_edge < g.m());
//! # Ok::<(), minex_congest::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod message;
mod parallel;
pub mod primitives;
mod program;
mod runtime;
mod soa;
pub mod telemetry;

pub use message::{bits_for, Payload};
pub use program::{Ctx, NodeProgram};
pub use runtime::{run, run_with_sink, CongestConfig, RunStats, SimError};
pub use telemetry::{CongestionProfile, NoopSink, PhaseLabel, Sink};

//! Congestion telemetry: an event-sink instrumentation layer for the
//! round loop.
//!
//! The CONGEST cost model is *about* congestion, yet [`RunStats`] only
//! reports end-of-run aggregates. This module adds a zero-cost-when-off
//! observability layer: the [`Sink`] trait receives events from the
//! execution engines (round boundaries, every validated send, every
//! delivery, validator rejections) and from phase-structured drivers
//! (phase span enter/exit), and [`CongestionProfile`] is the recorder
//! implementation that accumulates per-edge congestion, per-round message
//! histograms, and per-phase attribution.
//!
//! ## Zero cost when off
//!
//! [`crate::run`] is instrumented with [`NoopSink`], whose hooks are empty
//! `#[inline]` defaults — the round loop monomorphizes to exactly the
//! uninstrumented code (a timing guard in `tests/sink_overhead.rs` holds
//! the observable overhead under 2%). Recording is opt-in per call: either
//! pass a sink explicitly to [`crate::run_with_sink`], or scope a profile
//! over unmodified `run` call sites with [`record`].
//!
//! ## Determinism contract
//!
//! A [`CongestionProfile`] recorded from a successful run is
//! **byte-identical across the sequential and parallel engines** and any
//! thread count: every counter is a sum, max, or round-indexed sum of
//! per-event contributions, and the parallel engine forks one sink per
//! shard ([`Sink::fork_shard`]) and merges them back in ascending node-id
//! shard order ([`Sink::merge_shard`]) — mirroring how it merges the
//! shards' message buffers. [`CongestionProfile::render`] is the canonical
//! byte-comparable form.
//!
//! On failing runs the rejection event itself is deterministic (the
//! engines agree on the reported error), but send/deliver totals after the
//! offending round are engine-dependent, just like program states.

use std::cell::RefCell;
use std::fmt;

use minex_graphs::{EdgeId, NodeId};

use crate::runtime::{RunStats, SimError};

/// A structured phase identity: what the display label `"mst phase 3:
/// candidate"` encodes, without string splitting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PhaseLabel {
    /// The algorithm or driver (`"mst"`, `"sssp-shortcut"`, `"partwise"`).
    pub phase: String,
    /// The step within it (`"candidate"`, `"relax"`, `"flood"`).
    pub subphase: String,
    /// The iteration number for phased drivers (Borůvka phase, overlay
    /// phase), if any.
    pub attempt: Option<usize>,
}

impl PhaseLabel {
    /// A label with no iteration counter.
    pub fn new(phase: impl Into<String>, subphase: impl Into<String>) -> Self {
        PhaseLabel {
            phase: phase.into(),
            subphase: subphase.into(),
            attempt: None,
        }
    }

    /// Attaches an iteration counter.
    #[must_use]
    pub fn with_attempt(mut self, attempt: usize) -> Self {
        self.attempt = Some(attempt);
        self
    }
}

impl fmt::Display for PhaseLabel {
    /// Canonical compact form: `phase/subphase` or `phase/subphase#attempt`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.phase, self.subphase)?;
        if let Some(a) = self.attempt {
            write!(f, "#{a}")?;
        }
        Ok(())
    }
}

/// An event sink wired into the execution engines.
///
/// All event hooks default to no-ops, so a sink implements only what it
/// cares about. The two shard hooks have no default: any sink must say how
/// it splits and re-joins across the parallel engine's shards, because
/// getting that wrong silently breaks the determinism contract.
///
/// Hook order on a successful run, per round `r`: `on_round_start(r)`,
/// then per node in ascending id order `on_deliver` for each inbox message
/// followed by `on_send` for each validated outbox message, then
/// `on_round_end(r)`. On the parallel engine the per-node events of one
/// round land in per-shard forks and only the round hooks fire on the root
/// sink; after the merge the accumulated totals are identical.
pub trait Sink: Sized + Send {
    /// A synchronous round is starting.
    #[inline]
    fn on_round_start(&mut self, round: usize) {
        let _ = round;
    }

    /// The round's node loop has completed (fires even for the final,
    /// quiescent round that [`RunStats::rounds`] does not count).
    #[inline]
    fn on_round_end(&mut self, round: usize) {
        let _ = round;
    }

    /// A message passed validation and was enqueued on edge `edge`.
    #[inline]
    fn on_send(&mut self, round: usize, from: NodeId, to: NodeId, edge: EdgeId, bits: usize) {
        let _ = (round, from, to, edge, bits);
    }

    /// A message from the previous round is being consumed by `to`.
    #[inline]
    fn on_deliver(&mut self, round: usize, from: NodeId, to: NodeId, bits: usize) {
        let _ = (round, from, to, bits);
    }

    /// The run failed; `error` is the deterministically selected violation.
    #[inline]
    fn on_reject(&mut self, error: &SimError) {
        let _ = error;
    }

    /// A driver-level phase span opened (fired by phase-structured callers
    /// such as `minex-algo`'s `Solver`, not by the engines).
    #[inline]
    fn on_phase_enter(&mut self, label: &PhaseLabel) {
        let _ = label;
    }

    /// The phase span closed; `stats` is the span's simulator cost and
    /// `repeats` its analytic repetition charge.
    #[inline]
    fn on_phase_exit(&mut self, label: &PhaseLabel, stats: RunStats, repeats: usize) {
        let _ = (label, stats, repeats);
    }

    /// A fresh sink for one shard of the parallel engine. Shard sinks see
    /// only `on_send`/`on_deliver`.
    fn fork_shard(&self) -> Self;

    /// Folds a shard sink back in. The engine calls this in ascending
    /// node-id shard order on every exit path.
    fn merge_shard(&mut self, shard: Self);
}

/// The default sink: every hook is an empty inline no-op, so engines
/// instrumented with it compile to the uninstrumented round loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    #[inline]
    fn fork_shard(&self) -> Self {
        NoopSink
    }

    #[inline]
    fn merge_shard(&mut self, _shard: Self) {}
}

/// Load carried by one edge (both directions pooled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeLoad {
    /// Messages that crossed the edge.
    pub messages: u64,
    /// Total bits that crossed the edge.
    pub bits: u64,
}

/// Messages sent in one round (summed across recorded runs by round index).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundLoad {
    /// Messages enqueued during the round.
    pub messages: u64,
    /// Bits enqueued during the round.
    pub bits: u64,
}

/// One closed phase span, with wire-level attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// The structured label.
    pub label: PhaseLabel,
    /// The span's simulator cost as reported by the driver.
    pub stats: RunStats,
    /// Analytic repetition charge (see `RunStats::repeated`).
    pub repeats: usize,
    /// Messages recorded by this profile while the span was open.
    pub wire_messages: u64,
    /// Bits recorded by this profile while the span was open.
    pub wire_bits: u64,
}

/// The recorder: accumulates per-edge congestion, per-round histograms,
/// totals, phase spans, and rejections across one or more runs.
///
/// Install it over unmodified [`crate::run`] call sites with [`record`],
/// or pass it to [`crate::run_with_sink`] directly. See the module docs
/// for the determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CongestionProfile {
    edges: Vec<EdgeLoad>,
    rounds: Vec<RoundLoad>,
    phases: Vec<PhaseSpan>,
    /// Open phase spans: (label, wire messages at enter, wire bits at enter).
    open: Vec<(PhaseLabel, u64, u64)>,
    rejections: Vec<String>,
    messages: u64,
    total_bits: u64,
    max_message_bits: usize,
    delivered: u64,
    rounds_started: u64,
}

impl CongestionProfile {
    /// An empty profile.
    pub fn new() -> Self {
        CongestionProfile::default()
    }

    /// Total messages recorded (reconciles with summed `RunStats::messages`).
    pub fn total_messages(&self) -> u64 {
        self.messages
    }

    /// Total bits recorded (reconciles with summed `RunStats::total_bits`).
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Largest single recorded message, in bits.
    pub fn max_message_bits(&self) -> usize {
        self.max_message_bits
    }

    /// Messages consumed by their recipients. On a successful run every
    /// sent message is delivered in the next round, so this equals
    /// [`total_messages`](Self::total_messages).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Rounds started across all recorded runs (counts the final quiescent
    /// round that `RunStats::rounds` excludes).
    pub fn rounds_started(&self) -> u64 {
        self.rounds_started
    }

    /// Per-edge load, indexed by [`EdgeId`]. Edges past the last one that
    /// carried a message are not materialized.
    pub fn edge_loads(&self) -> &[EdgeLoad] {
        &self.edges
    }

    /// Per-round send histogram, indexed by round (summed across runs).
    pub fn round_loads(&self) -> &[RoundLoad] {
        &self.rounds
    }

    /// Closed phase spans, in close order.
    pub fn phases(&self) -> &[PhaseSpan] {
        &self.phases
    }

    /// Rendered rejection events, in occurrence order.
    pub fn rejections(&self) -> &[String] {
        &self.rejections
    }

    /// The maximum number of messages any single edge carried — the
    /// *observed* congestion that E17 checks against the plan's analytic
    /// quality bound.
    pub fn max_edge_messages(&self) -> u64 {
        self.edges.iter().map(|e| e.messages).max().unwrap_or(0)
    }

    /// The `k` busiest links as `(edge, load)`, ordered by descending
    /// message count with edge id as the deterministic tie-break.
    pub fn hot_links(&self, k: usize) -> Vec<(EdgeId, EdgeLoad)> {
        let mut loaded: Vec<(EdgeId, EdgeLoad)> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, l)| l.messages > 0)
            .map(|(e, &l)| (e, l))
            .collect();
        loaded.sort_by(|a, b| b.1.messages.cmp(&a.1.messages).then(a.0.cmp(&b.0)));
        loaded.truncate(k);
        loaded
    }

    /// The canonical byte-comparable rendering: one line per counter, edge,
    /// round, phase, and rejection, in a fixed order. Two profiles render
    /// identically iff they are equal, so this is what the determinism
    /// tests and the CI thread-matrix diff compare.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "totals messages={} bits={} max_bits={} delivered={} rounds_started={}",
            self.messages,
            self.total_bits,
            self.max_message_bits,
            self.delivered,
            self.rounds_started
        );
        for (e, load) in self.edges.iter().enumerate() {
            if load.messages > 0 {
                let _ = writeln!(
                    out,
                    "edge {e} messages={} bits={}",
                    load.messages, load.bits
                );
            }
        }
        for (r, load) in self.rounds.iter().enumerate() {
            if load.messages > 0 {
                let _ = writeln!(
                    out,
                    "round {r} messages={} bits={}",
                    load.messages, load.bits
                );
            }
        }
        for span in &self.phases {
            let _ = writeln!(
                out,
                "phase {} repeats={} rounds={} messages={} bits={} wire_messages={} wire_bits={}",
                span.label,
                span.repeats,
                span.stats.rounds,
                span.stats.messages,
                span.stats.total_bits,
                span.wire_messages,
                span.wire_bits
            );
        }
        for r in &self.rejections {
            let _ = writeln!(out, "reject {r}");
        }
        out
    }

    /// Folds another profile's counters into this one (used by session
    /// aggregation; distinct from [`Sink::merge_shard`], which folds a
    /// shard fork of *this* profile).
    pub fn absorb(&mut self, other: &CongestionProfile) {
        if self.edges.len() < other.edges.len() {
            self.edges.resize(other.edges.len(), EdgeLoad::default());
        }
        for (mine, theirs) in self.edges.iter_mut().zip(&other.edges) {
            mine.messages += theirs.messages;
            mine.bits += theirs.bits;
        }
        if self.rounds.len() < other.rounds.len() {
            self.rounds.resize(other.rounds.len(), RoundLoad::default());
        }
        for (mine, theirs) in self.rounds.iter_mut().zip(&other.rounds) {
            mine.messages += theirs.messages;
            mine.bits += theirs.bits;
        }
        self.phases.extend(other.phases.iter().cloned());
        self.rejections.extend(other.rejections.iter().cloned());
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.delivered += other.delivered;
        self.rounds_started += other.rounds_started;
    }

    fn edge_slot(&mut self, edge: EdgeId) -> &mut EdgeLoad {
        if edge >= self.edges.len() {
            self.edges.resize(edge + 1, EdgeLoad::default());
        }
        &mut self.edges[edge]
    }

    fn round_slot(&mut self, round: usize) -> &mut RoundLoad {
        if round >= self.rounds.len() {
            self.rounds.resize(round + 1, RoundLoad::default());
        }
        &mut self.rounds[round]
    }
}

impl Sink for CongestionProfile {
    #[inline]
    fn on_round_start(&mut self, _round: usize) {
        self.rounds_started += 1;
    }

    #[inline]
    fn on_send(&mut self, round: usize, _from: NodeId, _to: NodeId, edge: EdgeId, bits: usize) {
        self.messages += 1;
        self.total_bits += bits as u64;
        self.max_message_bits = self.max_message_bits.max(bits);
        let slot = self.edge_slot(edge);
        slot.messages += 1;
        slot.bits += bits as u64;
        let slot = self.round_slot(round);
        slot.messages += 1;
        slot.bits += bits as u64;
    }

    #[inline]
    fn on_deliver(&mut self, _round: usize, _from: NodeId, _to: NodeId, _bits: usize) {
        self.delivered += 1;
    }

    fn on_reject(&mut self, error: &SimError) {
        self.rejections.push(error.to_string());
    }

    fn on_phase_enter(&mut self, label: &PhaseLabel) {
        self.open
            .push((label.clone(), self.messages, self.total_bits));
    }

    fn on_phase_exit(&mut self, label: &PhaseLabel, stats: RunStats, repeats: usize) {
        // Unmatched exits (no open span) still record, with zero wire delta.
        let (open_label, msgs0, bits0) = self
            .open
            .pop()
            .unwrap_or_else(|| (label.clone(), self.messages, self.total_bits));
        debug_assert_eq!(open_label, *label, "phase spans must nest");
        self.phases.push(PhaseSpan {
            label: label.clone(),
            stats,
            repeats,
            wire_messages: self.messages - msgs0,
            wire_bits: self.total_bits - bits0,
        });
    }

    /// Shard forks start empty; only additive counters accumulate in them.
    fn fork_shard(&self) -> Self {
        CongestionProfile::default()
    }

    fn merge_shard(&mut self, shard: Self) {
        debug_assert!(
            shard.phases.is_empty() && shard.rejections.is_empty() && shard.rounds_started == 0,
            "shard sinks only see send/deliver events"
        );
        self.absorb(&shard);
    }
}

thread_local! {
    /// The profile installed by [`record`], taken by [`crate::run`] for the
    /// duration of each simulation it scopes.
    static ACTIVE: RefCell<Option<CongestionProfile>> = const { RefCell::new(None) };
}

/// Records every [`crate::run`] call made by `f` on this thread into
/// `profile`, without touching the call sites — `run` checks for an
/// installed profile once per call and dispatches to its instrumented
/// monomorphization.
///
/// Nested `record` scopes shadow the outer profile for their extent. If
/// `f` panics, events recorded during `f` are lost (the profile is left as
/// it was on entry); the panic propagates.
///
/// # Examples
///
/// ```
/// use minex_congest::telemetry::{self, CongestionProfile};
/// use minex_congest::{primitives, CongestConfig};
/// use minex_graphs::generators;
///
/// let g = generators::grid(4, 4);
/// let mut profile = CongestionProfile::new();
/// let tree = telemetry::record(&mut profile, || {
///     primitives::build_bfs_tree(&g, 0, CongestConfig::for_nodes(g.n()))
/// })?;
/// assert_eq!(tree.stats.messages, profile.total_messages());
/// assert!(profile.max_edge_messages() > 0);
/// # Ok::<(), minex_congest::SimError>(())
/// ```
pub fn record<R>(profile: &mut CongestionProfile, f: impl FnOnce() -> R) -> R {
    let prev = ACTIVE.with(|cell| cell.borrow_mut().replace(std::mem::take(profile)));
    let out = f();
    let current = ACTIVE.with(|cell| std::mem::replace(&mut *cell.borrow_mut(), prev));
    *profile = current.unwrap_or_default();
    out
}

/// Takes the installed profile (if any) out of the thread-local slot; the
/// engine holds it for the duration of one run.
pub(crate) fn take_active() -> Option<CongestionProfile> {
    ACTIVE.with(|cell| cell.borrow_mut().take())
}

/// Returns the profile after a run. A nested `record` inside a node
/// program cannot observe the slot mid-run (the engine holds the profile),
/// which keeps re-entrancy well-defined.
pub(crate) fn put_active(profile: CongestionProfile) {
    ACTIVE.with(|cell| *cell.borrow_mut() = Some(profile));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_label_renders_compactly() {
        assert_eq!(
            PhaseLabel::new("mst", "candidate").to_string(),
            "mst/candidate"
        );
        assert_eq!(
            PhaseLabel::new("mst", "candidate")
                .with_attempt(3)
                .to_string(),
            "mst/candidate#3"
        );
    }

    #[test]
    fn profile_accumulates_sends() {
        let mut p = CongestionProfile::new();
        p.on_round_start(0);
        p.on_send(0, 0, 1, 7, 32);
        p.on_send(0, 1, 0, 7, 16);
        p.on_send(0, 2, 3, 2, 64);
        p.on_round_end(0);
        p.on_round_start(1);
        p.on_deliver(1, 0, 1, 32);
        p.on_round_end(1);
        assert_eq!(p.total_messages(), 3);
        assert_eq!(p.total_bits(), 112);
        assert_eq!(p.max_message_bits(), 64);
        assert_eq!(p.delivered(), 1);
        assert_eq!(p.rounds_started(), 2);
        assert_eq!(p.max_edge_messages(), 2);
        assert_eq!(
            p.hot_links(1),
            vec![(
                7,
                EdgeLoad {
                    messages: 2,
                    bits: 48
                }
            )]
        );
        assert_eq!(p.round_loads()[0].messages, 3);
    }

    #[test]
    fn hot_links_tie_breaks_by_edge_id() {
        let mut p = CongestionProfile::new();
        p.on_send(0, 0, 1, 9, 8);
        p.on_send(0, 1, 2, 4, 8);
        let hot = p.hot_links(8);
        assert_eq!(hot.iter().map(|&(e, _)| e).collect::<Vec<_>>(), vec![4, 9]);
    }

    #[test]
    fn phase_spans_attribute_wire_deltas() {
        let mut p = CongestionProfile::new();
        let label = PhaseLabel::new("demo", "flood").with_attempt(1);
        p.on_phase_enter(&label);
        p.on_send(0, 0, 1, 0, 8);
        p.on_send(1, 1, 0, 0, 8);
        let stats = RunStats {
            rounds: 2,
            messages: 2,
            max_message_bits: 8,
            total_bits: 16,
        };
        p.on_phase_exit(&label, stats, 3);
        assert_eq!(p.phases().len(), 1);
        let span = &p.phases()[0];
        assert_eq!(span.label, label);
        assert_eq!(span.repeats, 3);
        assert_eq!(span.wire_messages, 2);
        assert_eq!(span.wire_bits, 16);
    }

    #[test]
    fn shard_merge_is_additive() {
        let mut root = CongestionProfile::new();
        root.on_round_start(0);
        let mut a = root.fork_shard();
        let mut b = root.fork_shard();
        a.on_send(0, 0, 1, 0, 8);
        b.on_send(0, 2, 3, 5, 16);
        b.on_deliver(0, 9, 2, 4);
        root.merge_shard(a);
        root.merge_shard(b);
        assert_eq!(root.total_messages(), 2);
        assert_eq!(root.total_bits(), 24);
        assert_eq!(root.delivered(), 1);
        assert_eq!(root.rounds_started(), 1);
        assert_eq!(root.edge_loads()[5].messages, 1);
    }

    #[test]
    fn render_is_canonical() {
        let mut p = CongestionProfile::new();
        p.on_round_start(0);
        p.on_send(0, 0, 1, 1, 8);
        let mut q = p.clone();
        assert_eq!(p.render(), q.render());
        q.on_send(1, 1, 0, 1, 8);
        assert_ne!(p.render(), q.render());
        assert!(p.render().starts_with("totals messages=1"));
    }

    #[test]
    fn record_restores_nested_scopes() {
        let mut outer = CongestionProfile::new();
        let mut inner = CongestionProfile::new();
        record(&mut outer, || {
            assert!(take_active().is_some());
            put_active(CongestionProfile::new());
            record(&mut inner, || {
                let p = take_active().expect("inner installed");
                let mut p2 = p;
                p2.on_send(0, 0, 1, 0, 8);
                put_active(p2);
            });
        });
        assert_eq!(inner.total_messages(), 1);
        assert_eq!(outer.total_messages(), 0);
        assert!(take_active().is_none());
    }
}

//! Reusable distributed building blocks: BFS-tree construction, leader
//! election, tree broadcast, and tree convergecast.
//!
//! Each primitive is both a usable subroutine for the higher-level
//! algorithms and a validation workload for the simulator: the expected
//! round counts (`≈ eccentricity`, `≈ depth`) are asserted in tests.

use minex_graphs::dist::dist_add;
use minex_graphs::{Graph, NodeId, WeightedGraph};

use crate::message::Payload;
use crate::program::{Ctx, NodeProgram};
use crate::runtime::{run, CongestConfig, RunStats, SimError};

/// Result of the distributed BFS-tree construction.
///
/// # Unreached-node contract
///
/// On a disconnected graph the flood only covers the root's component:
/// every node outside it ends with `dist[v] == usize::MAX` and
/// `parent[v] == None`, and the run still quiesces normally (unreached
/// programs never wake up, so they cost no rounds or messages beyond the
/// reached component's).
#[derive(Debug, Clone)]
pub struct BfsTreeResult {
    /// The root used.
    pub root: NodeId,
    /// `parent[v]` — BFS parent, `None` for the root (and unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
    /// `dist[v]` — hop distance from the root (`usize::MAX` if unreached).
    pub dist: Vec<usize>,
    /// Simulation statistics.
    pub stats: RunStats,
}

#[derive(Debug, Clone)]
struct BfsProgram {
    root: NodeId,
    dist: Option<usize>,
    parent: Option<NodeId>,
    announce: bool,
}

impl NodeProgram for BfsProgram {
    type Msg = usize;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 && ctx.node() == self.root {
            self.dist = Some(0);
            self.announce = true;
        }
        for &(from, d) in ctx.inbox() {
            if self.dist.map_or(true, |mine| d + 1 < mine) {
                self.dist = Some(d + 1);
                self.parent = Some(from);
                self.announce = true;
            }
        }
        if self.announce {
            self.announce = false;
            let d = self.dist.expect("announce implies dist");
            ctx.broadcast(d);
        }
    }

    fn is_done(&self) -> bool {
        !self.announce
    }
}

/// Builds a BFS tree rooted at `root` by distributed flooding.
///
/// Takes `eccentricity(root) + O(1)` rounds.
///
/// # Errors
///
/// Propagates [`SimError`] from the runtime.
pub fn build_bfs_tree(
    g: &Graph,
    root: NodeId,
    config: CongestConfig,
) -> Result<BfsTreeResult, SimError> {
    assert!(root < g.n(), "root out of range");
    let mut programs: Vec<BfsProgram> = (0..g.n())
        .map(|_| BfsProgram {
            root,
            dist: None,
            parent: None,
            announce: false,
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    Ok(BfsTreeResult {
        root,
        parent: programs.iter().map(|p| p.parent).collect(),
        dist: programs
            .iter()
            .map(|p| p.dist.unwrap_or(usize::MAX))
            .collect(),
        stats,
    })
}

/// A distance announcement with an honest, caller-declared bit width
/// (`bits_for(max_distance + 1)` — node ids travel implicitly as the sender
/// port, so only the value is charged).
#[derive(Debug, Clone)]
pub struct DistMsg {
    /// The announced distance value.
    pub value: u64,
    /// Declared encoding width in bits.
    pub bits: usize,
}

impl Payload for DistMsg {
    fn bit_size(&self) -> usize {
        self.bits
    }
}

/// Result of a weighted distance flood (distributed Bellman–Ford).
///
/// The same unreached-node contract as [`BfsTreeResult`] applies:
/// `dist[v] == u64::MAX` and `parent[v] == None` for nodes the flood never
/// reached.
#[derive(Debug, Clone)]
pub struct DistanceFloodResult {
    /// The source used.
    pub root: NodeId,
    /// `dist[v]` — weighted distance from the source (`u64::MAX` unreached).
    pub dist: Vec<u64>,
    /// `parent[v]` — shortest-path-tree parent, `None` for the source and
    /// unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// Simulation statistics. `stats.rounds` tracks the maximum hop count of
    /// a shortest path — the quantity the scaled/shortcut SSSP tiers attack.
    pub stats: RunStats,
}

#[derive(Debug, Clone)]
struct WeightedFloodProgram {
    root: NodeId,
    /// `(neighbor, edge weight)` for each incident edge.
    link_weights: Vec<(NodeId, u64)>,
    dist: u64,
    parent: Option<NodeId>,
    announce: bool,
    value_bits: usize,
}

impl NodeProgram for WeightedFloodProgram {
    type Msg = DistMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 && ctx.node() == self.root {
            self.dist = 0;
            self.announce = true;
        }
        // Read the inbox by reference — the broadcast below happens after
        // every read, so the hot loop allocates nothing.
        for &(from, ref msg) in ctx.inbox() {
            let w = self
                .link_weights
                .binary_search_by_key(&from, |&(nb, _)| nb)
                .map(|i| self.link_weights[i].1)
                .expect("sender is a neighbor");
            let cand = dist_add(msg.value, w);
            if cand < self.dist {
                self.dist = cand;
                self.parent = Some(from);
                self.announce = true;
            }
        }
        if self.announce {
            self.announce = false;
            let msg = DistMsg {
                value: self.dist,
                bits: self.value_bits,
            };
            ctx.broadcast(msg);
        }
    }

    fn is_done(&self) -> bool {
        !self.announce
    }
}

/// Computes `(neighbor, weight)` link tables, one per node — the node-local
/// knowledge every weighted program starts from.
fn link_tables(wg: &WeightedGraph) -> Vec<Vec<(NodeId, u64)>> {
    let g = wg.graph();
    (0..g.n())
        .map(|v| g.neighbors(v).map(|(w, e)| (w, wg.weight(e))).collect())
        .collect()
}

/// Floods weighted distances from `root` until quiescence — the distributed
/// Bellman–Ford that serves as the exact SSSP baseline.
///
/// After `r` rounds every node knows its exact distance among paths of at
/// most `r` hops, so the total round count is (up to a constant) the maximum
/// hop length of a shortest path from `root` — which can far exceed the hop
/// eccentricity when weights make shortest paths snake.
///
/// `value_bits` declares the honest width of a distance announcement; pick
/// `bits_for(W + 1)` for a known upper bound `W` on distances (e.g. total
/// graph weight).
///
/// # Errors
///
/// Propagates [`SimError`] from the runtime; in particular the round guard
/// fires if `config.max_rounds` under-estimates the hop length of the
/// shortest-path tree.
///
/// # Panics
///
/// Panics if `root >= g.n()`.
pub fn weighted_distance_flood(
    wg: &WeightedGraph,
    root: NodeId,
    value_bits: usize,
    config: CongestConfig,
) -> Result<DistanceFloodResult, SimError> {
    let g = wg.graph();
    assert!(root < g.n(), "root out of range");
    let mut programs: Vec<WeightedFloodProgram> = link_tables(wg)
        .into_iter()
        .map(|link_weights| WeightedFloodProgram {
            root,
            link_weights,
            dist: u64::MAX,
            parent: None,
            announce: false,
            value_bits,
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    Ok(DistanceFloodResult {
        root,
        dist: programs.iter().map(|p| p.dist).collect(),
        parent: programs.iter().map(|p| p.parent).collect(),
        stats,
    })
}

#[derive(Debug, Clone)]
struct RelaxOnceProgram {
    link_weights: Vec<(NodeId, u64)>,
    dist: u64,
    value_bits: usize,
}

impl NodeProgram for RelaxOnceProgram {
    type Msg = DistMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 && self.dist != u64::MAX {
            let msg = DistMsg {
                value: self.dist,
                bits: self.value_bits,
            };
            ctx.broadcast(msg);
        }
        // All sends happened above (round 0 broadcast); reading the inbox
        // by reference keeps the relax round allocation-free.
        for &(from, ref msg) in ctx.inbox() {
            let w = self
                .link_weights
                .binary_search_by_key(&from, |&(nb, _)| nb)
                .map(|i| self.link_weights[i].1)
                .expect("sender is a neighbor");
            self.dist = self.dist.min(dist_add(msg.value, w));
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// The distance-broadcast helper: one synchronous round in which every node
/// with a finite estimate announces it to all neighbors, and every receiver
/// relaxes through the connecting edge. Returns the improved estimates.
///
/// This is the single-round building block the phased shortcut SSSP uses to
/// stitch part-local floods together.
///
/// # Errors
///
/// Propagates [`SimError`].
///
/// # Panics
///
/// Panics if `dist.len() != g.n()`.
pub fn distance_broadcast_round(
    wg: &WeightedGraph,
    dist: &[u64],
    value_bits: usize,
    config: CongestConfig,
) -> Result<(Vec<u64>, RunStats), SimError> {
    let g = wg.graph();
    assert_eq!(dist.len(), g.n(), "one estimate per node required");
    let mut programs: Vec<RelaxOnceProgram> = link_tables(wg)
        .into_iter()
        .zip(dist.iter())
        .map(|(link_weights, &d)| RelaxOnceProgram {
            link_weights,
            dist: d,
            value_bits,
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    Ok((programs.iter().map(|p| p.dist).collect(), stats))
}

#[derive(Debug, Clone)]
struct MinIdFlood {
    best: NodeId,
    dirty: bool,
}

impl NodeProgram for MinIdFlood {
    type Msg = usize;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 {
            self.best = ctx.node();
            self.dirty = true;
        }
        for &(_, id) in ctx.inbox() {
            if id < self.best {
                self.best = id;
                self.dirty = true;
            }
        }
        if self.dirty {
            self.dirty = false;
            ctx.broadcast(self.best);
        }
    }

    fn is_done(&self) -> bool {
        !self.dirty
    }
}

/// Elects the minimum-id node by flooding; every node learns the leader.
/// Takes `O(D)` rounds.
///
/// # Errors
///
/// Propagates [`SimError`]; also returns an error on a disconnected graph
/// (nodes would disagree — detected centrally and reported as livelock-free
/// disagreement via panic in debug, so we verify agreement here).
pub fn elect_leader(g: &Graph, config: CongestConfig) -> Result<(NodeId, RunStats), SimError> {
    let mut programs: Vec<MinIdFlood> = vec![
        MinIdFlood {
            best: usize::MAX,
            dirty: true
        };
        g.n()
    ];
    let stats = run(g, &mut programs, config)?;
    let leader = programs[0].best;
    assert!(
        programs.iter().all(|p| p.best == leader),
        "leader election requires a connected graph"
    );
    Ok((leader, stats))
}

#[derive(Debug, Clone)]
struct ConvergecastProgram {
    parent: Option<NodeId>,
    pending_children: usize,
    acc: u64,
    sent: bool,
    is_root: bool,
}

impl NodeProgram for ConvergecastProgram {
    type Msg = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        for &(_, value) in ctx.inbox() {
            self.acc = combine(self.acc, value);
            self.pending_children -= 1;
        }
        if !self.sent && self.pending_children == 0 && !self.is_root {
            self.sent = true;
            if let Some(p) = self.parent {
                ctx.send(p, self.acc);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.sent || (self.is_root && self.pending_children == 0)
    }
}

/// The (fixed) aggregation operator used by [`convergecast_sum`]. Kept as a
/// named function so the tests and the doc can point at it.
fn combine(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

/// Sums `values` up a rooted spanning tree given by `parent` pointers;
/// returns the total at the root. Takes `depth(tree)` rounds.
///
/// # Errors
///
/// Propagates [`SimError`].
///
/// # Panics
///
/// Panics if `parent` encodes anything other than one tree spanning all of
/// `g` with exactly one root.
pub fn convergecast_sum(
    g: &Graph,
    parent: &[Option<NodeId>],
    values: &[u64],
    config: CongestConfig,
) -> Result<(u64, RunStats), SimError> {
    assert_eq!(parent.len(), g.n(), "parent vector must cover all nodes");
    assert_eq!(values.len(), g.n(), "value vector must cover all nodes");
    let mut child_count = vec![0usize; g.n()];
    let mut roots = 0;
    for (v, pv) in parent.iter().enumerate() {
        match *pv {
            Some(p) => {
                assert!(
                    g.has_edge(v, p),
                    "tree parent {p} of {v} must be a neighbor"
                );
                child_count[p] += 1;
            }
            None => roots += 1,
        }
    }
    assert_eq!(roots, 1, "exactly one root required");
    let mut programs: Vec<ConvergecastProgram> = (0..g.n())
        .map(|v| ConvergecastProgram {
            parent: parent[v],
            pending_children: child_count[v],
            acc: values[v],
            sent: false,
            is_root: parent[v].is_none(),
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    let root = (0..g.n()).find(|&v| parent[v].is_none()).expect("one root");
    Ok((programs[root].acc, stats))
}

#[derive(Debug, Clone)]
struct BroadcastProgram {
    children: Vec<NodeId>,
    value: Option<u64>,
    forwarded: bool,
}

impl NodeProgram for BroadcastProgram {
    type Msg = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if let Some(&(_, v)) = ctx.inbox().first() {
            if self.value.is_none() {
                self.value = Some(v);
            }
        }
        if let (Some(v), false) = (self.value, self.forwarded) {
            self.forwarded = true;
            let children = self.children.clone();
            for c in children {
                ctx.send(c, v);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.forwarded || self.value.is_none()
    }
}

/// Broadcasts `value` from the tree root down the `parent`-encoded tree;
/// every node ends up knowing it. Takes `depth(tree)` rounds.
///
/// Returns the per-node received values (all equal on success).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn broadcast_down_tree(
    g: &Graph,
    parent: &[Option<NodeId>],
    value: u64,
    config: CongestConfig,
) -> Result<(Vec<u64>, RunStats), SimError> {
    assert_eq!(parent.len(), g.n(), "parent vector must cover all nodes");
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
    let mut root = None;
    for (v, pv) in parent.iter().enumerate() {
        match *pv {
            Some(p) => children[p].push(v),
            None => {
                assert!(root.is_none(), "exactly one root required");
                root = Some(v);
            }
        }
    }
    let root = root.expect("exactly one root required");
    let mut programs: Vec<BroadcastProgram> = (0..g.n())
        .map(|v| BroadcastProgram {
            children: std::mem::take(&mut children[v]),
            value: if v == root { Some(value) } else { None },
            forwarded: false,
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    let got: Vec<u64> = programs
        .iter()
        .map(|p| p.value.expect("broadcast must reach all nodes of a tree"))
        .collect();
    Ok((got, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::{generators, traversal};

    fn cfg(n: usize) -> CongestConfig {
        CongestConfig::for_nodes(n)
    }

    #[test]
    fn bfs_tree_matches_central_bfs() {
        let g = generators::triangulated_grid(5, 7);
        let result = build_bfs_tree(&g, 0, cfg(g.n())).unwrap();
        let central = traversal::bfs(&g, 0);
        assert_eq!(result.dist, central.dist);
        // Parents realize the same distances (parents themselves may differ).
        for v in 1..g.n() {
            let p = result.parent[v].expect("reached");
            assert_eq!(result.dist[p] + 1, result.dist[v]);
            assert!(g.has_edge(p, v));
        }
        // Rounds ≈ eccentricity.
        let ecc = central.eccentricity();
        assert!(
            result.stats.rounds >= ecc && result.stats.rounds <= ecc + 3,
            "rounds {} vs ecc {ecc}",
            result.stats.rounds
        );
    }

    #[test]
    fn leader_election_on_random_graph() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let g = generators::random_connected(64, 30, &mut rng);
        let (leader, stats) = elect_leader(&g, cfg(64)).unwrap();
        assert_eq!(leader, 0);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn convergecast_counts_nodes() {
        let g = generators::binary_tree(31);
        let central = traversal::bfs(&g, 0);
        let (total, stats) = convergecast_sum(&g, &central.parent, &vec![1; 31], cfg(31)).unwrap();
        assert_eq!(total, 31);
        // Depth of a 31-node complete binary tree is 4.
        assert!(
            stats.rounds >= 4 && stats.rounds <= 6,
            "rounds={}",
            stats.rounds
        );
    }

    #[test]
    fn convergecast_weighted() {
        let g = generators::path(5);
        let central = traversal::bfs(&g, 2);
        let values = vec![10, 20, 1, 30, 40];
        let (total, _) = convergecast_sum(&g, &central.parent, &values, cfg(5)).unwrap();
        assert_eq!(total, 101);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let g = generators::triangulated_grid(4, 4);
        let central = traversal::bfs(&g, 5);
        let (got, stats) = broadcast_down_tree(&g, &central.parent, 42, cfg(16)).unwrap();
        assert!(got.iter().all(|&v| v == 42));
        assert!(stats.rounds <= central.eccentricity() + 2);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn convergecast_rejects_forests() {
        let g = generators::path(4);
        let parent = vec![None, Some(0), None, Some(2)];
        let _ = convergecast_sum(&g, &parent, &[1; 4], cfg(4));
    }

    #[test]
    fn singleton_graph_primitives() {
        let g = generators::path(1);
        let r = build_bfs_tree(&g, 0, cfg(1)).unwrap();
        assert_eq!(r.dist, vec![0]);
        assert_eq!(r.parent, vec![None]);
        let (total, _) = convergecast_sum(&g, &[None], &[7], cfg(1)).unwrap();
        assert_eq!(total, 7);
        let flood =
            weighted_distance_flood(&minex_graphs::WeightedGraph::unit(g), 0, 8, cfg(1)).unwrap();
        assert_eq!(flood.dist, vec![0]);
        assert_eq!(flood.stats.rounds, 0);
    }

    #[test]
    fn bfs_tree_on_disconnected_graph_leaves_max_dist() {
        // Two components: a path 0-1-2 and an edge 3-4, plus isolated node 5.
        let g = minex_graphs::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let r = build_bfs_tree(&g, 0, cfg(6)).unwrap();
        assert_eq!(r.dist[..3], [0, 1, 2]);
        // The unreached-node contract: usize::MAX dist, None parent.
        for v in 3..6 {
            assert_eq!(r.dist[v], usize::MAX, "node {v} must stay unreached");
            assert_eq!(r.parent[v], None);
        }
        // The run quiesces (no livelock waiting for the other component) and
        // only the root component exchanges messages: 2 tree hops do not
        // need more than a handful of rounds.
        assert!(r.stats.rounds <= 4, "rounds={}", r.stats.rounds);
        // Rooting inside the small component reaches only it.
        let r = build_bfs_tree(&g, 4, cfg(6)).unwrap();
        assert_eq!(r.dist[3], 1);
        assert_eq!(r.dist[4], 0);
        for v in [0, 1, 2, 5] {
            assert_eq!(r.dist[v], usize::MAX);
            assert_eq!(r.parent[v], None);
        }
    }

    #[test]
    fn weighted_flood_matches_dijkstra() {
        let g = generators::triangulated_grid(6, 7);
        let weights: Vec<u64> = (0..g.m() as u64).map(|e| 1 + (e * 11) % 29).collect();
        let wg = minex_graphs::WeightedGraph::new(g.clone(), weights);
        let flood = weighted_distance_flood(&wg, 0, 32, cfg(g.n())).unwrap();
        let reference = traversal::dijkstra(&wg, 0);
        assert_eq!(flood.dist, reference.dist);
        // Parents realize the distances over real edges.
        for v in 1..g.n() {
            let p = flood.parent[v].expect("reached");
            let e = g.edge_between(p, v).expect("edge");
            assert_eq!(flood.dist[p] + wg.weight(e), flood.dist[v]);
        }
        assert!(flood.stats.rounds > 0);
    }

    #[test]
    fn weighted_flood_on_disconnected_graph() {
        let g = minex_graphs::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let wg = minex_graphs::WeightedGraph::new(g, vec![5, 7]);
        let flood = weighted_distance_flood(&wg, 0, 8, cfg(4)).unwrap();
        assert_eq!(flood.dist, vec![0, 5, u64::MAX, u64::MAX]);
        assert_eq!(flood.parent[2], None);
    }

    #[test]
    fn weighted_flood_rounds_track_hops_not_weight() {
        // A heavy path: distances are large but hop count (and thus rounds)
        // is the path length.
        let g = generators::path(12);
        let wg = minex_graphs::WeightedGraph::new(g, vec![1_000_000; 11]);
        let flood = weighted_distance_flood(&wg, 0, 40, cfg(12)).unwrap();
        assert_eq!(flood.dist[11], 11_000_000);
        assert!(
            flood.stats.rounds >= 11 && flood.stats.rounds <= 13,
            "rounds={}",
            flood.stats.rounds
        );
    }

    #[test]
    fn distance_broadcast_round_relaxes_one_hop() {
        let g = generators::path(5);
        let wg = minex_graphs::WeightedGraph::new(g, vec![2, 3, 4, 5]);
        let dist = vec![0, u64::MAX, 9, u64::MAX, u64::MAX];
        let (out, stats) = distance_broadcast_round(&wg, &dist, 16, cfg(5)).unwrap();
        // Node 1 hears 0+2 from node 0 and 9+3 from node 2; node 3 hears
        // 9+4; node 4 hears nothing (its only neighbor was infinite).
        assert_eq!(out, vec![0, 2, 9, 13, u64::MAX]);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn distance_broadcast_round_is_silent_on_all_infinite() {
        let g = generators::path(3);
        let wg = minex_graphs::WeightedGraph::unit(g);
        let dist = vec![u64::MAX; 3];
        let (out, stats) = distance_broadcast_round(&wg, &dist, 8, cfg(3)).unwrap();
        assert_eq!(out, dist);
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }
}

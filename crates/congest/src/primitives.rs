//! Reusable distributed building blocks: BFS-tree construction, leader
//! election, tree broadcast, and tree convergecast.
//!
//! Each primitive is both a usable subroutine for the higher-level
//! algorithms and a validation workload for the simulator: the expected
//! round counts (`≈ eccentricity`, `≈ depth`) are asserted in tests.

use minex_graphs::{Graph, NodeId};

use crate::program::{Ctx, NodeProgram};
use crate::runtime::{run, CongestConfig, RunStats, SimError};

/// Result of the distributed BFS-tree construction.
#[derive(Debug, Clone)]
pub struct BfsTreeResult {
    /// The root used.
    pub root: NodeId,
    /// `parent[v]` — BFS parent, `None` for the root (and unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
    /// `dist[v]` — hop distance from the root (`usize::MAX` if unreached).
    pub dist: Vec<usize>,
    /// Simulation statistics.
    pub stats: RunStats,
}

#[derive(Debug, Clone)]
struct BfsProgram {
    root: NodeId,
    dist: Option<usize>,
    parent: Option<NodeId>,
    announce: bool,
}

impl NodeProgram for BfsProgram {
    type Msg = usize;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 && ctx.node() == self.root {
            self.dist = Some(0);
            self.announce = true;
        }
        for &(from, d) in ctx.inbox() {
            if self.dist.map_or(true, |mine| d + 1 < mine) {
                self.dist = Some(d + 1);
                self.parent = Some(from);
                self.announce = true;
            }
        }
        if self.announce {
            self.announce = false;
            let d = self.dist.expect("announce implies dist");
            ctx.broadcast(d);
        }
    }

    fn is_done(&self) -> bool {
        !self.announce
    }
}

/// Builds a BFS tree rooted at `root` by distributed flooding.
///
/// Takes `eccentricity(root) + O(1)` rounds.
///
/// # Errors
///
/// Propagates [`SimError`] from the runtime.
pub fn build_bfs_tree(
    g: &Graph,
    root: NodeId,
    config: CongestConfig,
) -> Result<BfsTreeResult, SimError> {
    assert!(root < g.n(), "root out of range");
    let mut programs: Vec<BfsProgram> = (0..g.n())
        .map(|_| BfsProgram {
            root,
            dist: None,
            parent: None,
            announce: false,
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    Ok(BfsTreeResult {
        root,
        parent: programs.iter().map(|p| p.parent).collect(),
        dist: programs
            .iter()
            .map(|p| p.dist.unwrap_or(usize::MAX))
            .collect(),
        stats,
    })
}

#[derive(Debug, Clone)]
struct MinIdFlood {
    best: NodeId,
    dirty: bool,
}

impl NodeProgram for MinIdFlood {
    type Msg = usize;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if ctx.round() == 0 {
            self.best = ctx.node();
            self.dirty = true;
        }
        for &(_, id) in ctx.inbox() {
            if id < self.best {
                self.best = id;
                self.dirty = true;
            }
        }
        if self.dirty {
            self.dirty = false;
            ctx.broadcast(self.best);
        }
    }

    fn is_done(&self) -> bool {
        !self.dirty
    }
}

/// Elects the minimum-id node by flooding; every node learns the leader.
/// Takes `O(D)` rounds.
///
/// # Errors
///
/// Propagates [`SimError`]; also returns an error on a disconnected graph
/// (nodes would disagree — detected centrally and reported as livelock-free
/// disagreement via panic in debug, so we verify agreement here).
pub fn elect_leader(g: &Graph, config: CongestConfig) -> Result<(NodeId, RunStats), SimError> {
    let mut programs: Vec<MinIdFlood> = vec![
        MinIdFlood {
            best: usize::MAX,
            dirty: true
        };
        g.n()
    ];
    let stats = run(g, &mut programs, config)?;
    let leader = programs[0].best;
    assert!(
        programs.iter().all(|p| p.best == leader),
        "leader election requires a connected graph"
    );
    Ok((leader, stats))
}

#[derive(Debug, Clone)]
struct ConvergecastProgram {
    parent: Option<NodeId>,
    pending_children: usize,
    acc: u64,
    sent: bool,
    is_root: bool,
}

impl NodeProgram for ConvergecastProgram {
    type Msg = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        for &(_, value) in ctx.inbox() {
            self.acc = combine(self.acc, value);
            self.pending_children -= 1;
        }
        if !self.sent && self.pending_children == 0 && !self.is_root {
            self.sent = true;
            if let Some(p) = self.parent {
                ctx.send(p, self.acc);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.sent || (self.is_root && self.pending_children == 0)
    }
}

/// The (fixed) aggregation operator used by [`convergecast_sum`]. Kept as a
/// named function so the tests and the doc can point at it.
fn combine(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

/// Sums `values` up a rooted spanning tree given by `parent` pointers;
/// returns the total at the root. Takes `depth(tree)` rounds.
///
/// # Errors
///
/// Propagates [`SimError`].
///
/// # Panics
///
/// Panics if `parent` encodes anything other than one tree spanning all of
/// `g` with exactly one root.
pub fn convergecast_sum(
    g: &Graph,
    parent: &[Option<NodeId>],
    values: &[u64],
    config: CongestConfig,
) -> Result<(u64, RunStats), SimError> {
    assert_eq!(parent.len(), g.n(), "parent vector must cover all nodes");
    assert_eq!(values.len(), g.n(), "value vector must cover all nodes");
    let mut child_count = vec![0usize; g.n()];
    let mut roots = 0;
    for v in 0..g.n() {
        match parent[v] {
            Some(p) => {
                assert!(
                    g.has_edge(v, p),
                    "tree parent {p} of {v} must be a neighbor"
                );
                child_count[p] += 1;
            }
            None => roots += 1,
        }
    }
    assert_eq!(roots, 1, "exactly one root required");
    let mut programs: Vec<ConvergecastProgram> = (0..g.n())
        .map(|v| ConvergecastProgram {
            parent: parent[v],
            pending_children: child_count[v],
            acc: values[v],
            sent: false,
            is_root: parent[v].is_none(),
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    let root = (0..g.n()).find(|&v| parent[v].is_none()).expect("one root");
    Ok((programs[root].acc, stats))
}

#[derive(Debug, Clone)]
struct BroadcastProgram {
    children: Vec<NodeId>,
    value: Option<u64>,
    forwarded: bool,
}

impl NodeProgram for BroadcastProgram {
    type Msg = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if let Some(&(_, v)) = ctx.inbox().first() {
            if self.value.is_none() {
                self.value = Some(v);
            }
        }
        if let (Some(v), false) = (self.value, self.forwarded) {
            self.forwarded = true;
            let children = self.children.clone();
            for c in children {
                ctx.send(c, v);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.forwarded || self.value.is_none()
    }
}

/// Broadcasts `value` from the tree root down the `parent`-encoded tree;
/// every node ends up knowing it. Takes `depth(tree)` rounds.
///
/// Returns the per-node received values (all equal on success).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn broadcast_down_tree(
    g: &Graph,
    parent: &[Option<NodeId>],
    value: u64,
    config: CongestConfig,
) -> Result<(Vec<u64>, RunStats), SimError> {
    assert_eq!(parent.len(), g.n(), "parent vector must cover all nodes");
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
    let mut root = None;
    for v in 0..g.n() {
        match parent[v] {
            Some(p) => children[p].push(v),
            None => {
                assert!(root.is_none(), "exactly one root required");
                root = Some(v);
            }
        }
    }
    let root = root.expect("exactly one root required");
    let mut programs: Vec<BroadcastProgram> = (0..g.n())
        .map(|v| BroadcastProgram {
            children: std::mem::take(&mut children[v]),
            value: if v == root { Some(value) } else { None },
            forwarded: false,
        })
        .collect();
    let stats = run(g, &mut programs, config)?;
    let got: Vec<u64> = programs
        .iter()
        .map(|p| p.value.expect("broadcast must reach all nodes of a tree"))
        .collect();
    Ok((got, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::{generators, traversal};

    fn cfg(n: usize) -> CongestConfig {
        CongestConfig::for_nodes(n)
    }

    #[test]
    fn bfs_tree_matches_central_bfs() {
        let g = generators::triangulated_grid(5, 7);
        let result = build_bfs_tree(&g, 0, cfg(g.n())).unwrap();
        let central = traversal::bfs(&g, 0);
        assert_eq!(result.dist, central.dist);
        // Parents realize the same distances (parents themselves may differ).
        for v in 1..g.n() {
            let p = result.parent[v].expect("reached");
            assert_eq!(result.dist[p] + 1, result.dist[v]);
            assert!(g.has_edge(p, v));
        }
        // Rounds ≈ eccentricity.
        let ecc = central.eccentricity();
        assert!(
            result.stats.rounds >= ecc && result.stats.rounds <= ecc + 3,
            "rounds {} vs ecc {ecc}",
            result.stats.rounds
        );
    }

    #[test]
    fn leader_election_on_random_graph() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let g = generators::random_connected(64, 30, &mut rng);
        let (leader, stats) = elect_leader(&g, cfg(64)).unwrap();
        assert_eq!(leader, 0);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn convergecast_counts_nodes() {
        let g = generators::binary_tree(31);
        let central = traversal::bfs(&g, 0);
        let (total, stats) = convergecast_sum(&g, &central.parent, &vec![1; 31], cfg(31)).unwrap();
        assert_eq!(total, 31);
        // Depth of a 31-node complete binary tree is 4.
        assert!(
            stats.rounds >= 4 && stats.rounds <= 6,
            "rounds={}",
            stats.rounds
        );
    }

    #[test]
    fn convergecast_weighted() {
        let g = generators::path(5);
        let central = traversal::bfs(&g, 2);
        let values = vec![10, 20, 1, 30, 40];
        let (total, _) = convergecast_sum(&g, &central.parent, &values, cfg(5)).unwrap();
        assert_eq!(total, 101);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let g = generators::triangulated_grid(4, 4);
        let central = traversal::bfs(&g, 5);
        let (got, stats) = broadcast_down_tree(&g, &central.parent, 42, cfg(16)).unwrap();
        assert!(got.iter().all(|&v| v == 42));
        assert!(stats.rounds <= central.eccentricity() + 2);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn convergecast_rejects_forests() {
        let g = generators::path(4);
        let parent = vec![None, Some(0), None, Some(2)];
        let _ = convergecast_sum(&g, &parent, &vec![1; 4], cfg(4));
    }

    #[test]
    fn singleton_graph_primitives() {
        let g = generators::path(1);
        let r = build_bfs_tree(&g, 0, cfg(1)).unwrap();
        assert_eq!(r.dist, vec![0]);
        let (total, _) = convergecast_sum(&g, &[None], &[7], cfg(1)).unwrap();
        assert_eq!(total, 7);
    }
}

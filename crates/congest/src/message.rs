//! Message payloads and bit-size accounting.
//!
//! The CONGEST model allows each node to send one `O(log n)`-bit message per
//! neighbor per round. The simulator enforces this budget exactly: every
//! payload reports its size via [`Payload::bit_size`], and the runtime
//! rejects rounds that exceed the per-edge [`bandwidth`](crate::CongestConfig).
//!
//! `bit_size` must be **pure** (a function of the message value alone): the
//! engines re-evaluate it at validation time and again on delivery, and the
//! [`telemetry`](crate::telemetry) layer accounts per-edge and per-round bit
//! loads from the same calls — an impure implementation would desynchronize
//! [`RunStats`](crate::RunStats) from recorded profiles.

use std::fmt;

/// A message payload whose size in bits the simulator can account for.
///
/// Sizes should reflect an honest binary encoding: node ids and counters cost
/// `⌈log₂(n+1)⌉` bits, weights cost their numeric width, enum tags cost a few
/// bits. The helper [`bits_for`] computes id widths.
pub trait Payload: Clone + fmt::Debug {
    /// Size of this message in bits.
    fn bit_size(&self) -> usize;
}

/// Number of bits needed to address `universe` distinct values (at least 1).
///
/// # Examples
///
/// ```
/// use minex_congest::bits_for;
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(2), 1);
/// assert_eq!(bits_for(1024), 10);
/// assert_eq!(bits_for(1025), 11);
/// ```
pub const fn bits_for(universe: usize) -> usize {
    if universe <= 2 {
        1
    } else {
        (usize::BITS - (universe - 1).leading_zeros()) as usize
    }
}

impl Payload for u64 {
    fn bit_size(&self) -> usize {
        64
    }
}

impl Payload for u32 {
    fn bit_size(&self) -> usize {
        32
    }
}

impl Payload for usize {
    fn bit_size(&self) -> usize {
        usize::BITS as usize
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1 << 20), 20);
    }

    #[test]
    fn primitive_payloads() {
        assert_eq!(7u64.bit_size(), 64);
        assert_eq!((1u32, 2u32).bit_size(), 64);
    }
}

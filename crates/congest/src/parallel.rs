//! The deterministic multi-threaded execution engine.
//!
//! CONGEST rounds are embarrassingly parallel by construction: within a
//! round every node reads only its own inbox and writes only its own
//! outbox. This engine shards the node loop over contiguous node-id ranges:
//! shard 0 runs on the coordinating thread, shards 1.. on persistent worker
//! threads spawned once per run inside a [`std::thread::scope`] (no
//! dependencies). Per round the coordinator mails each worker its
//! deliveries, every shard executes its nodes with its own
//! outbox/validation scratch, and the coordinator merges the shard send
//! buffers into the next round's delivery buckets **in node-id order** — so
//! inbox contents, [`RunStats`], every program output, and every reported
//! error are byte-identical to the sequential engine's. All round-trip
//! buffers are recycled through the channels, so the steady-state loop
//! performs no allocation (matching the sequential engine's warm buffers),
//! and no threads are spawned after round 0.
//!
//! Determinism argument, piece by piece:
//!
//! * **Inbox order.** The sequential engine delivers into `next_inboxes[v]`
//!   while scanning senders in ascending id order, so each inbox is sorted
//!   by sender id (at most one message per sender-edge per round). Shards
//!   cover ascending contiguous ranges and their send buffers are merged in
//!   shard order, each buffer already in ascending sender order — the same
//!   global order.
//! * **Stats.** `messages`/`total_bits` are sums and `max_message_bits` is
//!   a max — order-free reductions of per-shard partials.
//! * **Telemetry.** Each shard records its send/deliver events into its own
//!   fork of the caller's [`Sink`] ([`Sink::fork_shard`]); the forks
//!   ping-pong through the round-task channels and the coordinator folds
//!   them back ([`Sink::merge_shard`]) in ascending node-id shard order on
//!   every exit path. Round-boundary and rejection events fire only on the
//!   root sink. A [`CongestionProfile`](crate::telemetry::CongestionProfile)
//!   therefore accumulates exactly the sequential engine's counters.
//! * **Quiescence.** `all_done` is the AND and `any_message` the OR of
//!   per-shard flags, evaluated at the same point of the round as the
//!   sequential engine (after every `on_round` of the round returned).
//! * **Errors.** Validation of one sender's outbox depends only on that
//!   sender's own sends, never on another node's, so each violation is a
//!   node-local fact. Every shard stops at its first violation in (node id,
//!   outbox position) order; the coordinator scans shard reports in
//!   ascending node-range order and reports the first violation found —
//!   exactly the one the sequential engine would have hit first. (The
//!   engines do differ in one way after an `Err`: here, nodes *after* the
//!   offender still executed their `on_round` for the failing round, so
//!   post-error program state — and post-error telemetry totals — are
//!   engine-dependent; [`crate::run`]'s docs restrict program inspection to
//!   successful runs. A worker-side program panic likewise reaches the
//!   caller re-wrapped by the coordinator.)

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread;

use minex_graphs::{GraphView, NodeId};

use crate::message::Payload;
use crate::program::{Ctx, NodeProgram};
use crate::runtime::{CongestConfig, RunStats, SendValidator, SimError};
use crate::soa::{DeliveryColumns, Outbox, SendColumns};
use crate::telemetry::Sink;

/// Per-shard scratch, allocated once per run and reused every round.
struct ShardScratch<M> {
    /// Validated sends of this shard's round, in (sender, outbox) order.
    sends: SendColumns<M>,
    /// The outbox handed to `Ctx`, reused across nodes.
    outbox: Outbox<M>,
    validator: SendValidator,
}

impl<M> ShardScratch<M> {
    fn new(n: usize) -> Self {
        ShardScratch {
            sends: SendColumns::new(),
            outbox: Outbox::new(),
            validator: SendValidator::new(n),
        }
    }
}

/// One round of work mailed to a worker shard.
struct RoundTask<M, S> {
    round: usize,
    /// This shard's deliveries as (local node index, sender, payload)
    /// columns, in global ascending-sender order.
    deliveries: DeliveryColumns<M>,
    /// The shard's own (drained) send buffer from last round, returned for
    /// reuse.
    recycled: SendColumns<M>,
    /// The shard's telemetry fork, ping-ponged so the coordinator can merge
    /// on any exit path.
    sink: S,
}

/// What one shard reports back to the coordinator each round.
struct ShardDone<M, S> {
    /// Validated sends in (sender, outbox) order, for the coordinator to
    /// merge; drained there and recycled back next round.
    sends: SendColumns<M>,
    /// The (drained) delivery buffer, recycled into the coordinator's
    /// bucket for this shard.
    recycled: DeliveryColumns<M>,
    /// The shard's telemetry fork, handed back after the shard's events
    /// (`None` until the worker loop re-attaches it).
    sink: Option<S>,
    messages: u64,
    total_bits: u64,
    max_message_bits: usize,
    all_done: bool,
    /// First CONGEST violation in this shard, in (node id, outbox) order.
    error: Option<SimError>,
}

/// A worker's communication endpoints as held by the coordinator.
type WorkerLink<M, S> = (Sender<RoundTask<M, S>>, Receiver<ShardDone<M, S>>);

/// Runs the multi-threaded engine. `threads >= 2` and `graph.n() >= threads`
/// (the dispatcher in [`crate::run`] guarantees both).
pub(crate) fn run_parallel<P, S>(
    graph: &(dyn GraphView + Sync),
    programs: &mut [P],
    config: CongestConfig,
    threads: usize,
    sink: &mut S,
) -> Result<RunStats, SimError>
where
    P: NodeProgram + Send,
    P::Msg: Send,
    S: Sink,
{
    let n = graph.n();
    debug_assert!(threads >= 2 && threads <= n);
    // Contiguous shards of ceil(n/threads) nodes: shard s owns node ids
    // [s·chunk, min((s+1)·chunk, n)). Contiguity in ascending id order is
    // what makes the in-order merge reproduce the sequential delivery order.
    let chunk = n.div_ceil(threads);
    thread::scope(|scope| {
        let mut chunks = programs.chunks_mut(chunk);
        let shard0_programs = chunks.next().expect("dispatcher guarantees n >= 1");
        // Workers own shards 1.. for the whole run; dropping the task
        // senders (on any return or panic) is their shutdown signal.
        let mut workers: Vec<WorkerLink<P::Msg, S>> = Vec::new();
        for (w, shard_programs) in chunks.enumerate() {
            let (task_tx, task_rx) = channel::<RoundTask<P::Msg, S>>();
            let (done_tx, done_rx) = channel::<ShardDone<P::Msg, S>>();
            let lo = (w + 1) * chunk;
            scope.spawn(move || worker_loop(graph, config, lo, shard_programs, task_rx, done_tx));
            workers.push((task_tx, done_rx));
        }
        // Shard 0 state lives on the coordinator; its telemetry fork and the
        // workers' forks are merged back into the root sink — shard 0 first,
        // then shards 1.. — on every exit path below.
        let mut shard0_inboxes: Vec<Vec<(NodeId, P::Msg)>> =
            vec![Vec::new(); shard0_programs.len()];
        let mut shard0_scratch: ShardScratch<P::Msg> = ShardScratch::new(n);
        let mut shard0_bucket: DeliveryColumns<P::Msg> = DeliveryColumns::new();
        let mut shard0_sink = sink.fork_shard();
        // Next-round delivery buckets, recycled send buffers, and parked
        // telemetry forks, one per worker shard; all ping-pong through the
        // channels.
        let mut worker_buckets: Vec<DeliveryColumns<P::Msg>> =
            (0..workers.len()).map(|_| DeliveryColumns::new()).collect();
        let mut worker_recycled: Vec<SendColumns<P::Msg>> =
            (0..workers.len()).map(|_| SendColumns::new()).collect();
        let mut worker_sinks: Vec<Option<S>> =
            workers.iter().map(|_| Some(sink.fork_shard())).collect();
        let merge_sinks = |sink: &mut S, shard0_sink: S, worker_sinks: Vec<Option<S>>| {
            sink.merge_shard(shard0_sink);
            for shard_sink in worker_sinks.into_iter().flatten() {
                sink.merge_shard(shard_sink);
            }
        };
        let mut stats = RunStats::default();
        for round in 0..config.max_rounds {
            sink.on_round_start(round);
            for (w, (task_tx, _)) in workers.iter().enumerate() {
                let task = RoundTask {
                    round,
                    deliveries: std::mem::take(&mut worker_buckets[w]),
                    recycled: std::mem::take(&mut worker_recycled[w]),
                    sink: worker_sinks[w].take().expect("sink parked between rounds"),
                };
                // A send only fails if the worker panicked; the recv below
                // then panics the coordinator and the scope re-raises.
                let _ = task_tx.send(task);
            }
            // The coordinator works shard 0 while the workers run theirs.
            // Delivery drain: walk the id columns, move only the payloads.
            for ((&local, &from), msg) in shard0_bucket
                .locals
                .iter()
                .zip(&shard0_bucket.srcs)
                .zip(shard0_bucket.payloads.drain(..))
            {
                shard0_sink.on_deliver(round, from as NodeId, local as usize, msg.bit_size());
                shard0_inboxes[local as usize].push((from as NodeId, msg));
            }
            shard0_bucket.clear();
            let mut dones: Vec<ShardDone<P::Msg, S>> = Vec::with_capacity(workers.len() + 1);
            let mut shard0_done = run_shard(
                graph,
                &config,
                round,
                0,
                shard0_programs,
                &mut shard0_inboxes,
                &mut shard0_scratch,
                &mut shard0_sink,
            );
            for (_, done_rx) in &workers {
                dones.push(done_rx.recv().expect("engine worker panicked"));
            }
            // Reduce the reports; shard order == ascending node-id order, so
            // keeping the first error seen is the deterministic selection.
            let mut all_done = shard0_done.all_done;
            let mut any_message = shard0_done.messages > 0;
            let mut first_error: Option<SimError> = shard0_done.error.take();
            stats.messages += shard0_done.messages;
            stats.total_bits += shard0_done.total_bits;
            stats.max_message_bits = stats.max_message_bits.max(shard0_done.max_message_bits);
            let mut sends_in_order: Vec<SendColumns<P::Msg>> =
                Vec::with_capacity(workers.len() + 1);
            sends_in_order.push(std::mem::take(&mut shard0_done.sends));
            for (w, done) in dones.into_iter().enumerate() {
                if first_error.is_none() {
                    first_error = done.error;
                }
                all_done &= done.all_done;
                any_message |= done.messages > 0;
                stats.messages += done.messages;
                stats.total_bits += done.total_bits;
                stats.max_message_bits = stats.max_message_bits.max(done.max_message_bits);
                // The worker's drained delivery buffer becomes its next
                // bucket (empty but warm), and its telemetry fork parks
                // until the next round (or the final merge).
                worker_buckets[w] = done.recycled;
                worker_sinks[w] = done.sink;
                sends_in_order.push(done.sends);
            }
            if let Some(err) = first_error {
                merge_sinks(sink, shard0_sink, worker_sinks);
                return Err(err);
            }
            // Merge into next-round buckets in shard (== ascending sender
            // id) order, then hand the drained buffers back. The sweep
            // reads only the id columns; payloads move untouched.
            for (s, mut sends) in sends_in_order.into_iter().enumerate() {
                for ((&from, &to), msg) in sends
                    .srcs
                    .iter()
                    .zip(&sends.dsts)
                    .zip(sends.payloads.drain(..))
                {
                    let (from, to) = (from as NodeId, to as NodeId);
                    let dest = to / chunk;
                    if dest == 0 {
                        shard0_bucket.push(to, from, msg);
                    } else {
                        worker_buckets[dest - 1].push(to % chunk, from, msg);
                    }
                }
                sends.clear();
                if s == 0 {
                    shard0_scratch.sends = sends;
                } else {
                    worker_recycled[s - 1] = sends;
                }
            }
            sink.on_round_end(round);
            if all_done && !any_message {
                stats.rounds = round;
                merge_sinks(sink, shard0_sink, worker_sinks);
                return Ok(stats);
            }
            stats.rounds = round + 1;
        }
        merge_sinks(sink, shard0_sink, worker_sinks);
        Err(SimError::MaxRoundsExceeded {
            limit: config.max_rounds,
        })
    })
}

/// A worker's whole-run loop: receive a round task, deliver the mail into
/// the shard's inboxes, execute the shard, report back. Exits when the
/// coordinator hangs up (run over, error, or coordinator panic).
fn worker_loop<P: NodeProgram, S: Sink>(
    graph: &(dyn GraphView + Sync),
    config: CongestConfig,
    lo: NodeId,
    programs: &mut [P],
    tasks: Receiver<RoundTask<P::Msg, S>>,
    dones: Sender<ShardDone<P::Msg, S>>,
) {
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); programs.len()];
    let mut scratch: ShardScratch<P::Msg> = ShardScratch::new(graph.n());
    while let Ok(RoundTask {
        round,
        mut deliveries,
        recycled,
        mut sink,
    }) = tasks.recv()
    {
        scratch.sends = recycled;
        // Deliveries arrive in global ascending-sender order; pushing in
        // arrival order preserves it per inbox, as the sequential engine.
        for ((&local, &from), msg) in deliveries
            .locals
            .iter()
            .zip(&deliveries.srcs)
            .zip(deliveries.payloads.drain(..))
        {
            sink.on_deliver(round, from as NodeId, lo + local as usize, msg.bit_size());
            inboxes[local as usize].push((from as NodeId, msg));
        }
        deliveries.clear();
        let mut done = run_shard(
            graph,
            &config,
            round,
            lo,
            programs,
            &mut inboxes,
            &mut scratch,
            &mut sink,
        );
        done.recycled = deliveries;
        done.sink = Some(sink);
        if dones.send(done).is_err() {
            break;
        }
    }
}

/// Runs the nodes `lo..lo + programs.len()` for one round. `inboxes[i]` is
/// node `lo + i`'s inbox; validated sends move to the report in (sender,
/// outbox position) order. Stops at the shard's first CONGEST violation.
#[allow(clippy::too_many_arguments)]
fn run_shard<P: NodeProgram, S: Sink>(
    graph: &(dyn GraphView + Sync),
    config: &CongestConfig,
    round: usize,
    lo: NodeId,
    programs: &mut [P],
    inboxes: &mut [Vec<(NodeId, P::Msg)>],
    scratch: &mut ShardScratch<P::Msg>,
    sink: &mut S,
) -> ShardDone<P::Msg, S> {
    let mut report = ShardDone {
        sends: SendColumns::new(),
        recycled: DeliveryColumns::new(),
        sink: None,
        messages: 0,
        total_bits: 0,
        max_message_bits: 0,
        all_done: true,
        error: None,
    };
    scratch.sends.clear();
    for (i, program) in programs.iter_mut().enumerate() {
        let v = lo + i;
        // Quiescence fast path, identical to the sequential engine's.
        if round > 0 && inboxes[i].is_empty() && program.is_done() {
            continue;
        }
        scratch.outbox.clear();
        {
            let mut ctx = Ctx::new(graph, v, round, &inboxes[i], &mut scratch.outbox);
            program.on_round(&mut ctx);
        }
        inboxes[i].clear();
        // Validation sweep over the id/hint columns (payloads untouched
        // except for `bit_size`), mirroring the sequential engine.
        for j in 0..scratch.outbox.len() {
            let to = scratch.outbox.dsts[j] as NodeId;
            let bits = scratch.outbox.payloads[j].bit_size();
            match scratch
                .validator
                .check(graph, config, v, to, scratch.outbox.hints[j], bits)
            {
                Ok(edge) => sink.on_send(round, v, to, edge, bits),
                Err(err) => {
                    // `check` left per-sender state dirty, and this node's
                    // already-validated sends never reach `sends` — but an
                    // error aborts the whole run, so neither is observable.
                    report.error = Some(err);
                    report.sends = std::mem::take(&mut scratch.sends);
                    return report;
                }
            }
            report.messages += 1;
            report.total_bits += bits as u64;
            report.max_message_bits = report.max_message_bits.max(bits);
        }
        scratch.validator.finish_sender();
        // Whole-outbox bulk append: the sender column is a constant run,
        // the destination column a memcpy, the payload column one move.
        scratch
            .sends
            .srcs
            .extend(std::iter::repeat(v as u32).take(scratch.outbox.len()));
        scratch.sends.dsts.extend_from_slice(&scratch.outbox.dsts);
        scratch.sends.payloads.append(&mut scratch.outbox.payloads);
    }
    report.all_done = programs.iter().all(|p| p.is_done());
    report.sends = std::mem::take(&mut scratch.sends);
    report
}

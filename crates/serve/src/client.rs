//! A small blocking client for the v1 wire API — what `minex-loadgen`,
//! the tests, and the doctests drive the daemon with.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use minex_algo::solver::{
    Components, MinCut, Mst, PartsStrategy, PartwiseMin, RepairStats, Report, Sssp, Tier,
};
use minex_algo::wire::{obj, FromWire, JsonValue, ToWire, WireError};
use minex_graphs::{EdgeMutation, NodeId, WeightedGraph};

/// A client-side failure: transport, malformed payload, or a structured
/// server error.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(io::Error),
    /// The response did not match the wire schema.
    Wire(WireError),
    /// The server answered with an error body.
    Server {
        /// HTTP status.
        status: u16,
        /// Stable wire code (`OVERLOADED`, `DISCONNECTED`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl ServeError {
    /// The stable wire code of a server-side error, if this is one.
    pub fn code(&self) -> Option<&str> {
        match self {
            ServeError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Server {
                status,
                code,
                message,
            } => write!(f, "server {status} {code}: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// Options for [`Client::create_session`] — the client-side mirror of the
/// `POST /v1/sessions` body.
#[derive(Debug, Clone)]
pub struct CreateSession {
    /// Node count.
    pub n: usize,
    /// Edge list `(u, v, weight)`; ids are assigned by the server's CSR
    /// construction (lexicographic rank), not upload order.
    pub edges: Vec<(NodeId, NodeId, u64)>,
    /// Partition strategy (server default: singletons).
    pub parts: Option<PartsStrategy>,
    /// Builder name (server default: `auto-capped`).
    pub builder: Option<String>,
    /// Bandwidth override in bits.
    pub bandwidth: Option<usize>,
    /// Round-guard override.
    pub max_rounds: Option<usize>,
    /// Engine thread count override.
    pub threads: Option<usize>,
    /// Enable session tracing.
    pub trace: bool,
}

impl CreateSession {
    /// An upload of `wg` with all server defaults.
    pub fn from_weighted(wg: &WeightedGraph) -> Self {
        CreateSession {
            n: wg.graph().n(),
            edges: wg
                .graph()
                .edges()
                .map(|(e, u, v)| (u, v, wg.weight(e)))
                .collect(),
            parts: None,
            builder: None,
            bandwidth: None,
            max_rounds: None,
            threads: None,
            trace: false,
        }
    }

    /// The `POST /v1/sessions` request body this spec encodes to.
    pub fn to_body(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![(
            "graph".to_string(),
            obj([
                ("n", JsonValue::UInt(self.n as u64)),
                (
                    "edges",
                    JsonValue::Array(
                        self.edges
                            .iter()
                            .map(|&(u, v, w)| {
                                JsonValue::Array(vec![
                                    JsonValue::UInt(u as u64),
                                    JsonValue::UInt(v as u64),
                                    JsonValue::UInt(w),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )];
        if let Some(parts) = &self.parts {
            fields.push(("parts".to_string(), parts.to_wire()));
        }
        if let Some(builder) = &self.builder {
            fields.push(("builder".to_string(), JsonValue::Str(builder.clone())));
        }
        if let Some(b) = self.bandwidth {
            fields.push(("bandwidth".to_string(), JsonValue::UInt(b as u64)));
        }
        if let Some(r) = self.max_rounds {
            fields.push(("max_rounds".to_string(), JsonValue::UInt(r as u64)));
        }
        if let Some(t) = self.threads {
            fields.push(("threads".to_string(), JsonValue::UInt(t as u64)));
        }
        if self.trace {
            fields.push(("trace".to_string(), JsonValue::Bool(true)));
        }
        JsonValue::Object(fields)
    }
}

/// A blocking keep-alive connection to a `minex-serve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request/response round trip. Error bodies become
    /// [`ServeError::Server`].
    ///
    /// # Errors
    ///
    /// [`ServeError`] on transport, schema, or server failures.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&JsonValue>,
    ) -> Result<JsonValue, ServeError> {
        let (status, text) = self.request_raw(method, path, body)?;
        let v = JsonValue::parse(&text)?;
        if status == 200 {
            return Ok(v);
        }
        Err(ServeError::Server {
            status,
            code: v
                .get("code")
                .and_then(JsonValue::as_str)
                .unwrap_or("UNKNOWN")
                .to_string(),
            message: v
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
        })
    }

    /// Like [`request`](Client::request) but returns the raw status and
    /// body (for non-JSON payloads like the trace JSONL).
    ///
    /// # Errors
    ///
    /// Transport errors only — any status parses.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&JsonValue>,
    ) -> Result<(u16, String), ServeError> {
        let payload = body.map(JsonValue::to_string).unwrap_or_default();
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: minex\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len(),
        )?;
        self.writer.flush()?;
        // Status line.
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| WireError::new(format!("bad status line {line:?}")))?;
        // Headers.
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(ServeError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| WireError::new("bad content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(|_| WireError::new("body is not UTF-8"))?;
        Ok((status, text))
    }

    /// `GET /v1/health`.
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for [`request`](Client::request).
    pub fn health(&mut self) -> Result<JsonValue, ServeError> {
        self.request("GET", "/v1/health", None)
    }

    /// `POST /v1/sessions`: uploads a graph, returns the session id.
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for [`request`](Client::request).
    pub fn create_session(&mut self, req: &CreateSession) -> Result<String, ServeError> {
        let v = self.request("POST", "/v1/sessions", Some(&req.to_body()))?;
        v.get("session")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Wire(WireError::new("response missing \"session\"")))
    }

    /// `DELETE /v1/sessions/{id}`.
    ///
    /// # Errors
    ///
    /// [`ServeError`]; `NOT_FOUND` when the session does not exist.
    pub fn delete_session(&mut self, session: &str) -> Result<(), ServeError> {
        self.request("DELETE", &format!("/v1/sessions/{session}"), None)?;
        Ok(())
    }

    /// `POST /v1/sessions/{id}/query` with a raw query object.
    ///
    /// # Errors
    ///
    /// [`ServeError`]; solver errors surface with their stable codes.
    pub fn query(&mut self, session: &str, query: &JsonValue) -> Result<JsonValue, ServeError> {
        self.request(
            "POST",
            &format!("/v1/sessions/{session}/query"),
            Some(query),
        )
    }

    fn typed_query<T: FromWire>(
        &mut self,
        session: &str,
        query: &JsonValue,
    ) -> Result<Report<T>, ServeError> {
        Ok(Report::from_wire(&self.query(session, query)?)?)
    }

    /// Queries the session MST.
    ///
    /// # Errors
    ///
    /// [`ServeError`]; e.g. code `DISCONNECTED` on disconnected graphs.
    pub fn mst(&mut self, session: &str) -> Result<Report<Mst>, ServeError> {
        self.typed_query(session, &obj([("query", JsonValue::Str("mst".into()))]))
    }

    /// Queries the `(1+ε)` min-cut over a `trees`-tree packing.
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for [`mst`](Client::mst).
    pub fn min_cut(&mut self, session: &str, trees: usize) -> Result<Report<MinCut>, ServeError> {
        self.typed_query(
            session,
            &obj([
                ("query", JsonValue::Str("min_cut".into())),
                ("trees", JsonValue::UInt(trees as u64)),
            ]),
        )
    }

    /// Queries SSSP from `source` at `tier`.
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for [`mst`](Client::mst).
    pub fn sssp(
        &mut self,
        session: &str,
        source: NodeId,
        tier: Tier,
    ) -> Result<Report<Sssp>, ServeError> {
        self.typed_query(
            session,
            &obj([
                ("query", JsonValue::Str("sssp".into())),
                ("source", JsonValue::UInt(source as u64)),
                ("tier", tier.to_wire()),
            ]),
        )
    }

    /// Queries connected components.
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for [`mst`](Client::mst).
    pub fn components(&mut self, session: &str) -> Result<Report<Components>, ServeError> {
        self.typed_query(
            session,
            &obj([("query", JsonValue::Str("components".into()))]),
        )
    }

    /// Queries the part-wise MIN aggregation.
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for [`mst`](Client::mst).
    pub fn partwise_min(
        &mut self,
        session: &str,
        values: &[u64],
        value_bits: usize,
    ) -> Result<Report<PartwiseMin>, ServeError> {
        self.typed_query(
            session,
            &obj([
                ("query", JsonValue::Str("partwise_min".into())),
                (
                    "values",
                    JsonValue::Array(
                        values
                            .iter()
                            .map(|&v| {
                                if v == u64::MAX {
                                    JsonValue::Null
                                } else {
                                    JsonValue::UInt(v)
                                }
                            })
                            .collect(),
                    ),
                ),
                ("value_bits", JsonValue::UInt(value_bits as u64)),
            ]),
        )
    }

    /// Applies an edge-mutation batch to the session graph.
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for [`mst`](Client::mst).
    pub fn apply(
        &mut self,
        session: &str,
        mutations: &[EdgeMutation],
    ) -> Result<RepairStats, ServeError> {
        let v = self.query(
            session,
            &obj([
                ("query", JsonValue::Str("apply".into())),
                (
                    "mutations",
                    JsonValue::Array(mutations.iter().map(ToWire::to_wire).collect()),
                ),
            ]),
        )?;
        Ok(RepairStats::from_wire(&v)?)
    }

    /// `GET /v1/sessions/{id}/trace`: the session's JSONL trace.
    ///
    /// # Errors
    ///
    /// [`ServeError`]; `NOT_FOUND` when tracing is off.
    pub fn trace_jsonl(&mut self, session: &str) -> Result<String, ServeError> {
        let (status, text) =
            self.request_raw("GET", &format!("/v1/sessions/{session}/trace"), None)?;
        if status == 200 {
            return Ok(text);
        }
        let v = JsonValue::parse(&text)?;
        Err(ServeError::Server {
            status,
            code: v
                .get("code")
                .and_then(JsonValue::as_str)
                .unwrap_or("UNKNOWN")
                .to_string(),
            message: v
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
        })
    }
}

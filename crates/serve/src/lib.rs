//! # minex-serve
//!
//! Solver-as-a-service for minex: a daemon that owns a fleet of
//! [`Solver`](minex_algo::solver::Solver) sessions and serves the
//! plan-once / query-many API over **wire schema v1**
//! ([`minex_algo::wire`]) — HTTP/1.1 + JSON over blocking sockets and a
//! thread-per-connection pool (the container vendors no async runtime,
//! and the solver's queries are CPU-bound anyway).
//!
//! ## Architecture
//!
//! ```text
//!             TCP accept loop (one thread)
//!                  │  refuses when draining (SHUTTING_DOWN)
//!                  │  or at the connection cap (OVERLOADED)
//!                  ▼
//!    connection threads (≤ max_connections, keep-alive HTTP/1.1)
//!                  │
//!                  ▼
//!        admission gate (≤ queue_depth in-flight queries;
//!        excess is shed with 503 OVERLOADED — backpressure is
//!        explicit, never an unbounded queue)
//!                  │
//!                  ▼
//!   Fleet ──────────────────────────────────────────────────────
//!   │ session id = fingerprint(graph) ⊕ options                │
//!   │ ┌────────────┐ ┌────────────┐ ┌────────────┐             │
//!   │ │ SessionSlot│ │ SessionSlot│ │ SessionSlot│  LRU evict  │
//!   │ │ Mutex<     │ │ Mutex<     │ │ Mutex<     │  beyond     │
//!   │ │  Solver>   │ │  Solver>   │ │  Solver>   │  capacity   │
//!   │ └────────────┘ └────────────┘ └────────────┘             │
//!   └───────────────────────────────────────────────────────────
//!        queries on ONE session serialize behind its lock
//!        (queries take `&mut Solver` — they reuse the cached
//!        ShortcutPlan and memos); DIFFERENT sessions run in
//!        parallel on their own connection threads.
//! ```
//!
//! ## Session lifecycle
//!
//! 1. `POST /v1/sessions` uploads a graph (streamed into CSR) plus
//!    options; the fleet fingerprints it — re-uploading the same graph
//!    under the same options lands in the *existing* session and reuses
//!    its plan (`"created": false`).
//! 2. Queries (`mst`, `min_cut`, `sssp`, `components`, `partwise_min`,
//!    `apply`) run against the session until it is deleted or LRU-evicted.
//!    Eviction only forgets the slot: in-flight queries complete on their
//!    own handle.
//! 3. `ServerHandle::shutdown` stops accepting, refuses new work with
//!    `SHUTTING_DOWN`, then **drains**: every admitted query completes and
//!    its response is written before the daemon exits.
//!
//! ## Example
//!
//! Start an in-process daemon on an ephemeral port, upload a triangle,
//! and query its MST:
//!
//! ```
//! use minex_serve::{start, Client, CreateSession, ServerConfig};
//!
//! let handle = start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//!
//! let mut req = CreateSession {
//!     n: 3,
//!     edges: vec![(0, 1, 5), (1, 2, 7), (0, 2, 20)],
//!     parts: None,
//!     builder: None,
//!     bandwidth: None,
//!     max_rounds: None,
//!     threads: None,
//!     trace: false,
//! };
//! let session = client.create_session(&req).unwrap();
//!
//! let mst = client.mst(&session).unwrap();
//! assert_eq!(mst.value.total_weight, 12); // edges (0,1) and (1,2)
//! assert!(mst.stats.simulated_rounds > 0);
//!
//! // Same graph + options → same session, plan reused.
//! req.trace = false;
//! assert_eq!(client.create_session(&req).unwrap(), session);
//!
//! handle.shutdown(); // drains in-flight queries, then exits
//! ```
//!
//! Binaries: `minex-serve` (the daemon CLI) and `minex-loadgen` (the
//! closed-loop load generator behind experiment E18 and the CI smoke
//! run).

#![warn(missing_docs)]

pub mod client;
pub mod fleet;
pub mod http;
pub mod server;

pub use client::{Client, CreateSession, ServeError};
pub use fleet::{
    builder_by_name, format_session_id, graph_fingerprint, parse_session_id, Fleet, SessionSlot,
    SessionSpec,
};
pub use server::{start, ServerConfig, ServerHandle};

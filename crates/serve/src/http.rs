//! A deliberately minimal HTTP/1.1 layer over blocking sockets.
//!
//! The container vendors no async runtime or HTTP stack, so the daemon
//! speaks just enough HTTP/1.1 for its JSON API: request line, headers
//! (`Content-Length`, `Connection`), fixed-length bodies, keep-alive.
//! No chunked encoding, no TLS, no multipart — clients are
//! [`crate::client::Client`], `minex-loadgen`, and `curl` in CI.

use std::io::{self, BufRead, Write};

/// Header block size cap (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Body size cap — graph uploads are the big payload; 64 MiB bounds a
/// ~2M-edge upload with slack while keeping a misbehaving client finite.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path, without query string processing (the v1 API uses none).
    pub path: String,
    /// The raw body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Reads one request off `reader`, given `first_line` already accumulated
/// by the caller (the caller owns request-line reads so it can poll a
/// shutdown flag between requests; see `server.rs`).
///
/// # Errors
///
/// `InvalidData` on malformed framing; IO errors propagate.
pub fn read_request(reader: &mut impl BufRead, first_line: &str) -> io::Result<Request> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut parts = first_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line missing path"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    let mut head_bytes = first_line.len();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad("header block too large"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(bad("body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    })
}

/// The reason phrase for the status codes the v1 API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response (status, `Content-Type`, `Content-Length`,
/// `Connection`) and flushes.
///
/// # Errors
///
/// IO errors propagate.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(head: &str, rest: &[u8]) -> io::Result<Request> {
        let mut reader = BufReader::new(rest);
        read_request(&mut reader, head)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /v1/sessions HTTP/1.1\r\n",
            b"Host: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sessions");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\n", b"Connection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n", b"\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_malformed_framing() {
        assert!(parse("GET\r\n", b"\r\n").is_err());
        assert!(parse("GET / SPDY/3\r\n", b"\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\n", b"NoColonHere\r\n\r\n").is_err());
        assert!(parse(
            "GET / HTTP/1.1\r\n",
            format!("Content-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1).as_bytes()
        )
        .is_err());
        assert!(parse("GET / HTTP/1.1\r\n", b"Content-Length: 9\r\n\r\nxx").is_err());
    }

    #[test]
    fn responses_roundtrip_through_the_parser_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 503, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

//! `minex-loadgen`: a closed-loop load generator for `minex-serve`.
//!
//! ```text
//! minex-loadgen --addr HOST:PORT [--clients N] [--queries N]
//!               [--rows N] [--cols N] [--scenario throughput|overload]
//! ```
//!
//! * `throughput` — each client uploads its *own* weighted copy of a
//!   triangulated grid (distinct weights → distinct sessions → cross-
//!   session parallelism) and issues a deterministic `mst` / `components`
//!   / `partwise_min` mix back-to-back. Reports aggregate queries/sec.
//! * `overload` — every client hammers the *same* session (one lock, so
//!   service is serialized) as fast as it can; run against a daemon with
//!   a small `--queue-depth` this drives the admission gate into
//!   `OVERLOADED` shedding, which the run counts.
//!
//! Output is a single JSON line on stdout, e.g.
//! `{"scenario":"throughput","clients":8,"ok":800,"overloaded":0,
//! "errors":0,"elapsed_s":0.41,"qps":1951.2}` — consumed by
//! `scripts/check-serve.sh` and experiment E18.

use std::process::exit;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use minex_graphs::generators;
use minex_serve::{Client, CreateSession, ServeError};

struct Args {
    addr: String,
    clients: usize,
    queries: usize,
    rows: usize,
    cols: usize,
    scenario: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: minex-loadgen --addr HOST:PORT [--clients N] [--queries N] \
         [--rows N] [--cols N] [--scenario throughput|overload]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        clients: 4,
        queries: 32,
        rows: 8,
        cols: 8,
        scenario: "throughput".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("minex-loadgen: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--clients" => out.clients = value("--clients").parse().unwrap_or_else(|_| usage()),
            "--queries" => out.queries = value("--queries").parse().unwrap_or_else(|_| usage()),
            "--rows" => out.rows = value("--rows").parse().unwrap_or_else(|_| usage()),
            "--cols" => out.cols = value("--cols").parse().unwrap_or_else(|_| usage()),
            "--scenario" => out.scenario = value("--scenario"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("minex-loadgen: unknown argument {other:?}");
                usage();
            }
        }
    }
    if out.addr.is_empty() {
        eprintln!("minex-loadgen: --addr is required");
        usage();
    }
    out
}

/// The upload for client `seed`: the same grid under client-distinct
/// weights, so each client gets (and keeps) its own session.
fn upload_for(rows: usize, cols: usize, seed: u64) -> CreateSession {
    let g = generators::triangulated_grid(rows, cols);
    CreateSession {
        n: g.n(),
        edges: g
            .edges()
            .map(|(e, u, v)| {
                (
                    u,
                    v,
                    1 + ((e as u64).wrapping_mul(2654435761) ^ seed) % 1000,
                )
            })
            .collect(),
        parts: None,
        builder: None,
        bandwidth: None,
        max_rounds: None,
        threads: None,
        trace: false,
    }
}

struct Tally {
    ok: usize,
    overloaded: usize,
    errors: usize,
}

fn run_client(args: &Args, client_id: usize) -> Result<Tally, ServeError> {
    let mut tally = Tally {
        ok: 0,
        overloaded: 0,
        errors: 0,
    };
    let mut client = Client::connect(&*args.addr)?;
    // Overload clients share one session (seed 0); throughput clients
    // each own one.
    let seed = if args.scenario == "overload" {
        0
    } else {
        client_id as u64 + 1
    };
    let upload = upload_for(args.rows, args.cols, seed);
    let n = upload.n;
    let session = loop {
        match client.create_session(&upload) {
            Ok(s) => break s,
            // Session creation itself can be shed; retry until admitted.
            Err(e) if e.code() == Some("OVERLOADED") => {
                tally.overloaded += 1;
                thread::yield_now();
            }
            Err(e) => return Err(e),
        }
    };
    let values: Vec<u64> = (0..n as u64).collect();
    for i in 0..args.queries {
        let result = match i % 3 {
            0 => client.mst(&session).map(|_| ()),
            1 => client.components(&session).map(|_| ()),
            _ => client.partwise_min(&session, &values, 32).map(|_| ()),
        };
        match result {
            Ok(()) => tally.ok += 1,
            Err(e) if e.code() == Some("OVERLOADED") => tally.overloaded += 1,
            Err(ServeError::Server { .. }) => tally.errors += 1,
            Err(e) => return Err(e),
        }
    }
    Ok(tally)
}

fn main() {
    let args = Arc::new(parse_args());
    if args.scenario != "throughput" && args.scenario != "overload" {
        eprintln!("minex-loadgen: unknown scenario {:?}", args.scenario);
        usage();
    }

    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let args = Arc::clone(&args);
            thread::spawn(move || run_client(&args, c))
        })
        .collect();

    let mut ok = 0usize;
    let mut overloaded = 0usize;
    let mut errors = 0usize;
    let mut failed = false;
    for w in workers {
        match w.join().expect("client thread panicked") {
            Ok(t) => {
                ok += t.ok;
                overloaded += t.overloaded;
                errors += t.errors;
            }
            Err(e) => {
                eprintln!("minex-loadgen: client failed: {e}");
                failed = true;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let qps = if elapsed > 0.0 {
        ok as f64 / elapsed
    } else {
        0.0
    };
    println!(
        "{{\"scenario\":{:?},\"clients\":{},\"queries_per_client\":{},\"ok\":{ok},\
         \"overloaded\":{overloaded},\"errors\":{errors},\"elapsed_s\":{elapsed:.4},\
         \"qps\":{qps:.2}}}",
        args.scenario, args.clients, args.queries,
    );
    if failed {
        exit(1);
    }
}

//! The `minex-serve` daemon CLI.
//!
//! ```text
//! minex-serve [--addr HOST:PORT] [--queue-depth N] [--fleet-capacity N]
//!             [--max-connections N]
//! ```
//!
//! Prints `listening on <addr>` once bound, then serves until stdin
//! reaches EOF or a `shutdown` line arrives — at which point it stops
//! accepting, drains every in-flight query, and exits 0. Scripts drive
//! graceful shutdown by closing the daemon's stdin (see
//! `scripts/check-serve.sh`).

use std::io::{self, BufRead, Write};
use std::process::exit;

use minex_serve::{start, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: minex-serve [--addr HOST:PORT] [--queue-depth N] \
         [--fleet-capacity N] [--max-connections N]"
    );
    exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("minex-serve: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--fleet-capacity" => {
                config.fleet_capacity = value("--fleet-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("minex-serve: unknown argument {other:?}");
                usage();
            }
        }
    }

    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("minex-serve: bind failed: {e}");
            exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    io::stdout().flush().ok();

    // Serve until stdin closes (or an explicit `shutdown` line); then
    // drain and exit. This keeps graceful shutdown scriptable without
    // signal handling.
    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "shutdown" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    eprintln!("minex-serve: draining");
    handle.shutdown();
    eprintln!("minex-serve: done");
}

//! The session fleet: owned [`Solver`] sessions keyed by graph
//! fingerprint, with LRU eviction of the attached plan caches.
//!
//! A *session* is one [`Solver`] — it owns its network via
//! [`Solver::from_arc`] and caches one [`ShortcutPlan`] plus query memos.
//! The fleet keeps at most `capacity` sessions; inserting past capacity
//! evicts the least-recently-used slot (dropping its plan and memos with
//! it). Each slot serializes its queries behind a `Mutex` (queries take
//! `&mut Solver`); different slots run concurrently on different
//! connection threads.
//!
//! [`ShortcutPlan`]: minex_core::ShortcutPlan

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use minex_algo::solver::{AlgoError, PartsStrategy, Solver};
use minex_algo::wire::WireError;
use minex_congest::CongestConfig;
use minex_core::construct::{AutoCappedBuilder, ShortcutBuilder, SteinerBuilder, WholeTreeBuilder};
use minex_graphs::WeightedGraph;

// The fleet moves sessions across threads; this must hold for every
// refactor of the solver's internals.
fn _assert_solver_send(s: Solver) -> impl Send {
    s
}

/// FNV-1a over the graph structure and weights — the stable identity the
/// fleet keys sessions by. Two uploads of the same weighted graph land in
/// the same session.
pub fn graph_fingerprint(wg: &WeightedGraph) -> u64 {
    let mut h = Fnv::new();
    let g = wg.graph();
    h.word(g.n() as u64);
    h.word(g.m() as u64);
    for (e, u, v) in g.edges() {
        h.word(u as u64);
        h.word(v as u64);
        h.word(wg.weight(e));
    }
    h.finish()
}

/// Incremental FNV-1a (64-bit), word-at-a-time.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    pub(crate) fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Resolves a wire builder name to a boxed [`ShortcutBuilder`]. Only the
/// structure-oblivious constructions are servable (witness-based builders
/// need structure records that don't travel over the wire).
pub fn builder_by_name(name: &str) -> Result<Box<dyn ShortcutBuilder + Send>, WireError> {
    match name {
        "steiner" => Ok(Box::new(SteinerBuilder)),
        "whole-tree" => Ok(Box::new(WholeTreeBuilder)),
        "auto-capped" => Ok(Box::new(AutoCappedBuilder)),
        other => Err(WireError::new(format!(
            "unknown builder {other:?} (expected steiner, whole-tree, or auto-capped)"
        ))),
    }
}

/// Everything needed to construct (and identify) one served session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The uploaded network, shared with every handler that serves it.
    pub wg: Arc<WeightedGraph>,
    /// Session partition strategy.
    pub parts: PartsStrategy,
    /// Wire name of the shortcut construction (see [`builder_by_name`]).
    pub builder: String,
    /// Simulator configuration.
    pub config: CongestConfig,
    /// Whether the session records a `SessionTrace`.
    pub trace: bool,
}

impl SessionSpec {
    /// A spec with the library defaults: singleton parts, the
    /// structure-oblivious `auto-capped` construction, `for_nodes` config,
    /// tracing off.
    pub fn new(wg: Arc<WeightedGraph>) -> Self {
        let n = wg.graph().n();
        SessionSpec {
            wg,
            parts: PartsStrategy::Singletons,
            builder: "auto-capped".to_string(),
            config: CongestConfig::for_nodes(n),
            trace: false,
        }
    }

    /// The session id: the graph fingerprint mixed with every
    /// result-relevant option, so the same graph under different options
    /// gets its own session (and its own plan).
    pub fn session_id(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(graph_fingerprint(&self.wg));
        h.bytes(self.builder.as_bytes());
        h.bytes(self.parts.to_string().as_bytes());
        if let PartsStrategy::Explicit(p) = &self.parts {
            for part in p.parts() {
                h.word(part.len() as u64);
                for &v in part {
                    h.word(v as u64);
                }
            }
        }
        h.word(self.config.bandwidth_bits as u64);
        h.word(self.config.max_rounds as u64);
        h.word(self.trace as u64);
        h.finish()
    }

    /// Builds the owned session.
    ///
    /// # Errors
    ///
    /// [`WireError`] for an unknown builder name; [`AlgoError::BadQuery`]
    /// (as a wire error) for configurations the solver rejects.
    pub fn build(&self) -> Result<Solver, WireError> {
        let builder = builder_by_name(&self.builder)?;
        Solver::from_arc(Arc::clone(&self.wg))
            .parts(self.parts.clone())
            .shortcut_builder(builder)
            .config(self.config)
            .trace(self.trace)
            .build()
            .map_err(|e: AlgoError| WireError::new(e.to_string()))
    }
}

/// One fleet slot: an owned session behind its per-session query lock.
#[derive(Debug)]
pub struct SessionSlot {
    /// The session id (see [`SessionSpec::session_id`]).
    pub id: u64,
    /// The session; queries take `&mut`, so the lock serializes them.
    pub solver: Mutex<Solver>,
    last_used: AtomicU64,
}

/// The session fleet: a bounded LRU map from session id to slot.
#[derive(Debug)]
pub struct Fleet {
    capacity: usize,
    clock: AtomicU64,
    slots: Mutex<HashMap<u64, Arc<SessionSlot>>>,
}

impl Fleet {
    /// A fleet holding at most `capacity` sessions (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Fleet {
            capacity: capacity.max(1),
            clock: AtomicU64::new(1),
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a session and bumps its LRU stamp.
    pub fn get(&self, id: u64) -> Option<Arc<SessionSlot>> {
        let slots = self.slots.lock().expect("fleet lock");
        let slot = slots.get(&id).cloned();
        if let Some(s) = &slot {
            s.last_used.store(self.tick(), Ordering::Relaxed);
        }
        slot
    }

    /// Inserts a session built by `make` unless `id` already exists.
    /// Returns the slot, whether it was newly created, and the ids of any
    /// sessions evicted to stay within capacity.
    ///
    /// # Errors
    ///
    /// Propagates `make`'s error; the fleet is unchanged.
    pub fn get_or_insert(
        &self,
        id: u64,
        make: impl FnOnce() -> Result<Solver, WireError>,
    ) -> Result<(Arc<SessionSlot>, bool, Vec<u64>), WireError> {
        if let Some(slot) = self.get(id) {
            return Ok((slot, false, Vec::new()));
        }
        // Build outside the map lock: plans are lazy so this is cheap, but
        // validation can still reject, and holding the lock across foreign
        // code would serialize unrelated sessions.
        let solver = make()?;
        let mut slots = self.slots.lock().expect("fleet lock");
        // Raced creation: someone else inserted while we built.
        if let Some(slot) = slots.get(&id) {
            slot.last_used.store(self.tick(), Ordering::Relaxed);
            return Ok((Arc::clone(slot), false, Vec::new()));
        }
        let slot = Arc::new(SessionSlot {
            id,
            solver: Mutex::new(solver),
            last_used: AtomicU64::new(self.tick()),
        });
        slots.insert(id, Arc::clone(&slot));
        let mut evicted = Vec::new();
        while slots.len() > self.capacity {
            let victim = slots
                .iter()
                .filter(|(&k, _)| k != id)
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(&k, _)| k);
            match victim {
                // In-flight queries on an evicted session finish on their
                // own Arc; the fleet just forgets the slot (and with it the
                // cached plan and memos).
                Some(k) => {
                    slots.remove(&k);
                    evicted.push(k);
                }
                None => break,
            }
        }
        Ok((slot, true, evicted))
    }

    /// Removes a session; `true` if it existed.
    pub fn remove(&self, id: u64) -> bool {
        self.slots.lock().expect("fleet lock").remove(&id).is_some()
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("fleet lock").len()
    }

    /// Whether the fleet holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The resident session ids, unordered.
    pub fn ids(&self) -> Vec<u64> {
        self.slots
            .lock()
            .expect("fleet lock")
            .keys()
            .copied()
            .collect()
    }
}

/// Formats a session id for the wire (16 lowercase hex digits).
pub fn format_session_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire session id.
pub fn parse_session_id(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::generators;

    fn spec(seed: u64) -> SessionSpec {
        let g = generators::triangulated_grid(4, 4);
        let weights: Vec<u64> = (0..g.m() as u64).map(|e| e * 7 + seed).collect();
        SessionSpec::new(Arc::new(WeightedGraph::new(g, weights)))
    }

    #[test]
    fn fingerprint_distinguishes_weights_and_options() {
        let a = spec(1);
        let b = spec(2);
        assert_ne!(a.session_id(), b.session_id());
        let mut c = spec(1);
        assert_eq!(a.session_id(), c.session_id());
        c.builder = "steiner".into();
        assert_ne!(a.session_id(), c.session_id());
    }

    #[test]
    fn lru_evicts_the_coldest_session() {
        let fleet = Fleet::new(2);
        let ids: Vec<u64> = (0..3)
            .map(|i| {
                let s = spec(i);
                let id = s.session_id();
                let (_, created, _) = fleet.get_or_insert(id, || s.build()).unwrap();
                assert!(created);
                // Touch the first session so it stays warm.
                if i > 0 {
                    fleet.get(spec(0).session_id()).unwrap();
                }
                id
            })
            .collect();
        assert_eq!(fleet.len(), 2);
        // Session 1 was the coldest when 2 arrived.
        assert!(fleet.get(ids[1]).is_none());
        assert!(fleet.get(ids[0]).is_some());
        assert!(fleet.get(ids[2]).is_some());
        // Re-inserting an evicted id is a fresh creation.
        let s = spec(1);
        let (_, created, evicted) = fleet.get_or_insert(ids[1], || s.build()).unwrap();
        assert!(created);
        assert_eq!(evicted.len(), 1);
    }

    #[test]
    fn session_ids_roundtrip_the_wire_form() {
        let id = spec(3).session_id();
        assert_eq!(parse_session_id(&format_session_id(id)), Some(id));
        assert_eq!(parse_session_id("xyz"), None);
        assert_eq!(parse_session_id(""), None);
    }

    #[test]
    fn unknown_builders_are_rejected() {
        assert!(builder_by_name("clique-sum").is_err());
        let mut s = spec(0);
        s.builder = "nope".into();
        assert!(s.build().is_err());
    }
}

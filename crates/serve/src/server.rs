//! The daemon: an acceptor, a connection thread per client, a bounded
//! in-flight query gate for backpressure, and graceful drain on shutdown.
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ connection threads (≤ max_connections)
//!                                   │  parse request (http.rs)
//!                                   ▼
//!                             in-flight gate (≤ queue_depth)
//!                  full → 503 OVERLOADED       draining → 503 SHUTTING_DOWN
//!                                   │
//!                                   ▼
//!                          fleet.get(session) ──▶ lock slot ──▶ Solver
//!                          (per-session serialization; cross-session
//!                           parallelism across threads)
//! ```
//!
//! Shutdown ([`ServerHandle::shutdown`]) stops the acceptor, flips the
//! drain flag (new requests get `SHUTTING_DOWN`), waits for every
//! in-flight query to finish, then joins the connection threads.

use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use minex_algo::solver::{AlgoError, Solver};
use minex_algo::wire::{
    self, error_to_wire, http_status, obj, parts_strategy_from_wire, FromWire, JsonValue, ToWire,
    WireError, CODE_BAD_REQUEST, CODE_NOT_FOUND, CODE_OVERLOADED, CODE_SHUTTING_DOWN, WIRE_VERSION,
};
use minex_congest::CongestConfig;
use minex_graphs::{EdgeMutation, Graph, NodeId, WeightedGraph};

use crate::fleet::{format_session_id, parse_session_id, Fleet, SessionSpec};
use crate::http::{read_request, write_response, Request};

/// How often parked keep-alive connections poll the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Maximum concurrently executing queries; one more is shed with
    /// `OVERLOADED`.
    pub queue_depth: usize,
    /// Maximum resident sessions (LRU beyond this).
    pub fleet_capacity: usize,
    /// Maximum concurrent connections; excess connections are refused
    /// with `OVERLOADED` and closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 64,
            fleet_capacity: 32,
            max_connections: 128,
        }
    }
}

/// Bounded in-flight work counter with drain support — the backpressure
/// primitive: `try_enter` refuses (instead of queueing unboundedly) when
/// `queue_depth` queries are already executing.
#[derive(Debug)]
struct Gate {
    limit: usize,
    inflight: Mutex<usize>,
    drained: Condvar,
}

impl Gate {
    fn new(limit: usize) -> Self {
        Gate {
            limit: limit.max(1),
            inflight: Mutex::new(0),
            drained: Condvar::new(),
        }
    }

    fn try_enter(&self) -> bool {
        let mut n = self.inflight.lock().expect("gate lock");
        if *n >= self.limit {
            return false;
        }
        *n += 1;
        true
    }

    fn exit(&self) {
        let mut n = self.inflight.lock().expect("gate lock");
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut n = self.inflight.lock().expect("gate lock");
        while *n > 0 {
            n = self.drained.wait(n).expect("gate lock");
        }
    }
}

/// RAII guard for one in-flight query.
struct InFlight<'a>(&'a Gate);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.exit();
    }
}

#[derive(Debug)]
struct Shared {
    fleet: Fleet,
    gate: Gate,
    draining: AtomicBool,
    max_connections: usize,
    conns: Mutex<usize>,
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) aborts ungracefully (threads are
/// detached); call `shutdown` to drain.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

/// Starts the daemon.
///
/// # Errors
///
/// IO errors from binding the listener.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        fleet: Fleet::new(config.fleet_capacity),
        gate: Gate::new(config.queue_depth),
        draining: AtomicBool::new(false),
        max_connections: config.max_connections.max(1),
        conns: Mutex::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("minex-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of resident sessions.
    pub fn sessions(&self) -> usize {
        self.shared.fleet.len()
    }

    /// Graceful shutdown: stop accepting, refuse new queries with
    /// `SHUTTING_DOWN`, wait for in-flight queries to drain, join every
    /// connection thread.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            if let Ok(handles) = acceptor.join() {
                for h in handles {
                    let _ = h.join();
                }
            }
        }
        self.shared.gate.wait_drained();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client) during drain.
            let _ = refuse(stream, CODE_SHUTTING_DOWN, "server is draining");
            break;
        }
        {
            let mut conns = shared.conns.lock().expect("conns lock");
            if *conns >= shared.max_connections {
                drop(conns);
                let _ = refuse(stream, CODE_OVERLOADED, "connection limit reached");
                continue;
            }
            *conns += 1;
        }
        handles.retain(|h| !h.is_finished());
        let conn_shared = Arc::clone(&shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("minex-serve-conn".to_string())
            .spawn(move || {
                connection_loop(stream, &conn_shared);
                *conn_shared.conns.lock().expect("conns lock") -= 1;
            })
        {
            handles.push(handle);
        }
    }
    handles
}

fn refuse(mut stream: TcpStream, code: &str, message: &str) -> io::Result<()> {
    let body = error_body(code, message);
    write_response(
        &mut stream,
        http_status(code),
        "application/json",
        body.as_bytes(),
        false,
    )
}

fn error_body(code: &str, message: &str) -> String {
    obj([
        ("code", JsonValue::Str(code.to_string())),
        ("message", JsonValue::Str(message.to_string())),
    ])
    .to_string()
}

/// Reads one request line, polling the shutdown flag while the connection
/// idles. `Ok(None)` means the peer closed (or the server is draining and
/// the connection is idle).
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> io::Result<Option<String>> {
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                if line.ends_with('\n') {
                    return Ok(Some(line));
                }
                // Timed out mid-line on a previous pass; keep accumulating.
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // `read_line` keeps what it read in `line`; only park the
                // connection if it is idle and the daemon is draining.
                if line.is_empty() && shared.draining.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let first_line = match read_request_line(&mut reader, shared) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        // The head arrived; finish the request in blocking mode so a slow
        // body can't be mistaken for an idle connection.
        let _ = reader.get_ref().set_read_timeout(None);
        let request = match read_request(&mut reader, &first_line) {
            Ok(r) => r,
            Err(_) => {
                let body = error_body(CODE_BAD_REQUEST, "malformed request");
                let _ = write_response(
                    &mut writer,
                    http_status(CODE_BAD_REQUEST),
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        };
        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
        let keep_alive = request.keep_alive && !shared.draining.load(Ordering::SeqCst);
        let (status, content_type, body) = respond(shared, &request);
        if write_response(
            &mut writer,
            status,
            content_type,
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Routes one request. Every outcome is a `(status, content_type, body)`
/// triple; errors are wire error bodies with their fixed status.
fn respond(shared: &Shared, req: &Request) -> (u16, &'static str, String) {
    let json = |status: u16, body: String| (status, "application/json", body);
    let fail = |code: &str, message: &str| json(http_status(code), error_body(code, message));
    if shared.draining.load(Ordering::SeqCst) {
        return fail(CODE_SHUTTING_DOWN, "server is draining");
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "health"]) => json(
            200,
            obj([
                ("status", JsonValue::Str("ok".into())),
                ("wire_version", JsonValue::UInt(WIRE_VERSION as u64)),
                ("sessions", JsonValue::UInt(shared.fleet.len() as u64)),
            ])
            .to_string(),
        ),
        ("GET", ["v1", "sessions"]) => {
            let ids = shared.fleet.ids();
            json(
                200,
                obj([(
                    "sessions",
                    JsonValue::Array(
                        ids.into_iter()
                            .map(|id| JsonValue::Str(format_session_id(id)))
                            .collect(),
                    ),
                )])
                .to_string(),
            )
        }
        ("POST", ["v1", "sessions"]) => {
            // Session creation counts as in-flight work: it parses a whole
            // graph upload and belongs under the backpressure gate.
            let Some(_guard) = enter(shared) else {
                return fail(CODE_OVERLOADED, "request queue is full");
            };
            match create_session(shared, &req.body) {
                Ok(body) => json(200, body),
                Err((code, message)) => fail(code, &message),
            }
        }
        ("DELETE", ["v1", "sessions", id]) => match parse_session_id(id) {
            Some(id) if shared.fleet.remove(id) => {
                json(200, obj([("deleted", JsonValue::Bool(true))]).to_string())
            }
            Some(_) | None => fail(CODE_NOT_FOUND, "no such session"),
        },
        ("GET", ["v1", "sessions", id, "trace"]) => {
            match parse_session_id(id).and_then(|id| shared.fleet.get(id)) {
                None => fail(CODE_NOT_FOUND, "no such session"),
                Some(slot) => {
                    let solver = slot.solver.lock().expect("session lock");
                    match solver.trace() {
                        Some(trace) => (200, "application/x-ndjson", trace.to_jsonl()),
                        None => fail(CODE_NOT_FOUND, "session tracing is disabled"),
                    }
                }
            }
        }
        ("POST", ["v1", "sessions", id, "query"]) => {
            let Some(slot) = parse_session_id(id).and_then(|id| shared.fleet.get(id)) else {
                return fail(CODE_NOT_FOUND, "no such session");
            };
            let Some(_guard) = enter(shared) else {
                return fail(CODE_OVERLOADED, "request queue is full");
            };
            let query = match parse_body(&req.body) {
                Ok(q) => q,
                Err(e) => return fail(CODE_BAD_REQUEST, &e.to_string()),
            };
            let mut solver = slot.solver.lock().expect("session lock");
            match run_query(&mut solver, &query) {
                Ok(body) => json(200, body.to_string()),
                Err(QueryError::Algo(e)) => json(
                    http_status(wire::error_code(&e)),
                    error_to_wire(&e).to_string(),
                ),
                Err(QueryError::Bad(msg)) => fail(CODE_BAD_REQUEST, &msg),
            }
        }
        ("POST", ["v1", "sessions", id, "batch"]) => {
            let Some(slot) = parse_session_id(id).and_then(|id| shared.fleet.get(id)) else {
                return fail(CODE_NOT_FOUND, "no such session");
            };
            // A batch is one admission-control unit and one lock
            // acquisition: the whole batch runs back-to-back on the
            // session, interleaved with no other client.
            let Some(_guard) = enter(shared) else {
                return fail(CODE_OVERLOADED, "request queue is full");
            };
            let parsed = parse_body(&req.body).and_then(|v| {
                v.get("queries")
                    .and_then(|q| q.as_array().map(<[JsonValue]>::to_vec))
                    .ok_or_else(|| WireError::new("missing field \"queries\""))
            });
            let queries = match parsed {
                Ok(q) => q,
                Err(e) => return fail(CODE_BAD_REQUEST, &e.to_string()),
            };
            let mut solver = slot.solver.lock().expect("session lock");
            let results: Vec<JsonValue> = queries
                .iter()
                .map(|q| match run_query(&mut solver, q) {
                    Ok(body) => obj([("ok", body)]),
                    Err(QueryError::Algo(e)) => obj([("error", error_to_wire(&e))]),
                    Err(QueryError::Bad(msg)) => obj([(
                        "error",
                        obj([
                            ("code", JsonValue::Str(CODE_BAD_REQUEST.into())),
                            ("message", JsonValue::Str(msg)),
                        ]),
                    )]),
                })
                .collect();
            json(
                200,
                obj([("results", JsonValue::Array(results))]).to_string(),
            )
        }
        (_, ["v1", ..]) => fail(CODE_NOT_FOUND, "no such route"),
        _ => fail(CODE_NOT_FOUND, "unknown path (the API lives under /v1)"),
    }
}

fn enter(shared: &Shared) -> Option<InFlight<'_>> {
    shared.gate.try_enter().then(|| InFlight(&shared.gate))
}

fn parse_body(body: &[u8]) -> Result<JsonValue, WireError> {
    let text = std::str::from_utf8(body).map_err(|_| WireError::new("body is not UTF-8"))?;
    JsonValue::parse(text)
}

/// Parses a `POST /v1/sessions` body into a [`SessionSpec`], builds the
/// session, and registers it with the fleet.
fn create_session(shared: &Shared, body: &[u8]) -> Result<String, (&'static str, String)> {
    let bad = |e: WireError| (CODE_BAD_REQUEST, e.to_string());
    let v = parse_body(body).map_err(bad)?;
    let graph = v
        .get("graph")
        .ok_or_else(|| bad(WireError::new("missing field \"graph\"")))?;
    let n = graph
        .get("n")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| bad(WireError::new("graph.n must be a non-negative integer")))?;
    let edges_json = graph
        .get("edges")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad(WireError::new("graph.edges must be an array")))?;
    let mut edges: Vec<(NodeId, NodeId, u64)> = Vec::with_capacity(edges_json.len());
    for e in edges_json {
        let triple = e
            .as_array()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| bad(WireError::new("each edge must be [u, v, weight]")))?;
        let u = triple[0]
            .as_usize()
            .ok_or_else(|| bad(WireError::new("edge endpoints must be node ids")))?;
        let w_v = triple[1]
            .as_usize()
            .ok_or_else(|| bad(WireError::new("edge endpoints must be node ids")))?;
        let w = triple[2]
            .as_u64()
            .ok_or_else(|| bad(WireError::new("edge weights must be u64")))?;
        edges.push((u, w_v, w));
    }
    // Streaming CSR construction: the edge list is consumed in place, no
    // intermediate adjacency list.
    let g = Graph::from_edge_stream(n, || edges.iter().map(|&(u, v, _)| (u, v)))
        .map_err(|e| bad(WireError::new(format!("bad graph: {e}"))))?;
    let mut weights = vec![0u64; g.m()];
    for &(u, v, w) in &edges {
        let eid = g.edge_between(u, v).expect("edge was just inserted");
        weights[eid] = w;
    }
    let wg = Arc::new(WeightedGraph::new(g, weights));

    let mut spec = SessionSpec::new(Arc::clone(&wg));
    if let Some(parts) = v.get("parts") {
        spec.parts = parts_strategy_from_wire(wg.graph(), parts).map_err(bad)?;
    }
    if let Some(builder) = v.get("builder") {
        spec.builder = builder
            .as_str()
            .ok_or_else(|| bad(WireError::new("builder must be a string")))?
            .to_string();
    }
    let mut config = CongestConfig::for_nodes(n);
    if let Some(b) = v.get("bandwidth") {
        config = config.with_bandwidth(
            b.as_usize()
                .ok_or_else(|| bad(WireError::new("bandwidth must be a positive integer")))?,
        );
    }
    if let Some(r) = v.get("max_rounds") {
        config = config.with_max_rounds(
            r.as_usize()
                .ok_or_else(|| bad(WireError::new("max_rounds must be a positive integer")))?,
        );
    }
    if let Some(t) = v.get("threads") {
        config =
            config
                .with_threads(t.as_usize().ok_or_else(|| {
                    bad(WireError::new("threads must be a non-negative integer"))
                })?);
    }
    spec.config = config;
    if let Some(t) = v.get("trace") {
        spec.trace = t
            .as_bool()
            .ok_or_else(|| bad(WireError::new("trace must be a boolean")))?;
    }

    let id = spec.session_id();
    let (_, created, evicted) = shared
        .fleet
        .get_or_insert(id, || spec.build())
        .map_err(bad)?;
    Ok(obj([
        ("session", JsonValue::Str(format_session_id(id))),
        ("created", JsonValue::Bool(created)),
        ("nodes", JsonValue::UInt(wg.graph().n() as u64)),
        ("edges", JsonValue::UInt(wg.graph().m() as u64)),
        (
            "evicted",
            JsonValue::Array(
                evicted
                    .into_iter()
                    .map(|e| JsonValue::Str(format_session_id(e)))
                    .collect(),
            ),
        ),
    ])
    .to_string())
}

enum QueryError {
    /// A structured solver error — maps to its stable wire code.
    Algo(AlgoError),
    /// A malformed query body — maps to `BAD_REQUEST`.
    Bad(String),
}

impl From<WireError> for QueryError {
    fn from(e: WireError) -> Self {
        QueryError::Bad(e.to_string())
    }
}

impl From<AlgoError> for QueryError {
    fn from(e: AlgoError) -> Self {
        QueryError::Algo(e)
    }
}

/// Executes one wire query against a locked session.
fn run_query(solver: &mut Solver, q: &JsonValue) -> Result<JsonValue, QueryError> {
    let kind = q
        .get("query")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| QueryError::Bad("missing field \"query\"".to_string()))?;
    match kind {
        "mst" => Ok(solver.mst()?.to_wire()),
        "min_cut" => {
            let trees = q
                .get("trees")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| QueryError::Bad("min_cut needs \"trees\"".to_string()))?;
            Ok(solver.min_cut(trees)?.to_wire())
        }
        "sssp" => {
            let source = q
                .get("source")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| QueryError::Bad("sssp needs \"source\"".to_string()))?;
            let tier = q
                .get("tier")
                .ok_or_else(|| QueryError::Bad("sssp needs \"tier\"".to_string()))?;
            Ok(solver.sssp(source, FromWire::from_wire(tier)?)?.to_wire())
        }
        "components" => Ok(solver.components()?.to_wire()),
        "partwise_min" => {
            let values = q
                .get("values")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| QueryError::Bad("partwise_min needs \"values\"".to_string()))?
                .iter()
                .map(|x| {
                    if x.is_null() {
                        Some(u64::MAX)
                    } else {
                        x.as_u64()
                    }
                })
                .collect::<Option<Vec<u64>>>()
                .ok_or_else(|| QueryError::Bad("values must be u64 or null".to_string()))?;
            let bits = q
                .get("value_bits")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| QueryError::Bad("partwise_min needs \"value_bits\"".to_string()))?;
            Ok(solver.partwise_min(&values, bits)?.to_wire())
        }
        "apply" => {
            let mutations = q
                .get("mutations")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| QueryError::Bad("apply needs \"mutations\"".to_string()))?
                .iter()
                .map(EdgeMutation::from_wire)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(solver.apply(&mutations)?.to_wire())
        }
        other => Err(QueryError::Bad(format!("unknown query {other:?}"))),
    }
}

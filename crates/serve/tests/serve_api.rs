//! End-to-end tests for the `minex-serve` daemon: wire-level determinism
//! against an in-process reference solver, backpressure shedding,
//! graceful drain, LRU eviction, and the stable error-code mapping.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;

use minex_algo::solver::{PartsStrategy, Solver, Tier};
use minex_algo::wire::{obj, JsonValue, ToWire};
use minex_congest::CongestConfig;
use minex_core::construct::AutoCappedBuilder;
use minex_graphs::{generators, EdgeMutation, WeightedGraph};
use minex_serve::{start, Client, CreateSession, ServeError, ServerConfig, ServerHandle};

/// The shared test network: a triangulated grid under seeded weights.
fn grid(rows: usize, cols: usize, seed: u64) -> Arc<WeightedGraph> {
    let g = generators::triangulated_grid(rows, cols);
    let weights: Vec<u64> = (0..g.m() as u64)
        .map(|e| 1 + (e.wrapping_mul(2654435761) ^ seed) % 1000)
        .collect();
    Arc::new(WeightedGraph::new(g, weights))
}

fn upload(wg: &WeightedGraph, threads: usize) -> CreateSession {
    let mut req = CreateSession::from_weighted(wg);
    req.threads = Some(threads);
    req
}

fn default_server() -> ServerHandle {
    start(ServerConfig::default()).expect("bind")
}

/// One query of the deterministic mix, in its wire form.
fn mix_query(kind: usize, n: usize) -> JsonValue {
    match kind {
        0 => obj([("query", JsonValue::Str("mst".into()))]),
        1 => obj([("query", JsonValue::Str("components".into()))]),
        2 => obj([
            ("query", JsonValue::Str("partwise_min".into())),
            (
                "values",
                JsonValue::Array((0..n as u64).map(JsonValue::UInt).collect()),
            ),
            ("value_bits", JsonValue::UInt(32)),
        ]),
        _ => obj([
            ("query", JsonValue::Str("sssp".into())),
            ("source", JsonValue::UInt(0)),
            ("tier", Tier::Exact.to_wire()),
        ]),
    }
}

/// The in-process reference: the same query mix against a single-threaded
/// owned solver, reports rendered to their wire form.
fn reference_reports(wg: &Arc<WeightedGraph>, mix: &[usize]) -> Vec<String> {
    let n = wg.graph().n();
    let mut solver = Solver::from_arc(Arc::clone(wg))
        .parts(PartsStrategy::Singletons)
        .shortcut_builder(AutoCappedBuilder)
        .config(CongestConfig::for_nodes(n).with_threads(1))
        .build()
        .expect("reference solver");
    let values: Vec<u64> = (0..n as u64).collect();
    mix.iter()
        .map(|&kind| match kind {
            0 => solver.mst().unwrap().to_wire().to_string(),
            1 => solver.components().unwrap().to_wire().to_string(),
            2 => solver
                .partwise_min(&values, 32)
                .unwrap()
                .to_wire()
                .to_string(),
            _ => solver.sssp(0, Tier::Exact).unwrap().to_wire().to_string(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline determinism contract: N interleaved clients issuing
    /// the same query mix against one fleet session get responses
    /// byte-identical to a single-threaded in-process [`Solver`] — for
    /// engine thread counts 1 and 4 (the axis `MINEX_THREADS` drives; the
    /// tests pin it per-session via the wire `threads` field so the
    /// in-process env var cannot race).
    #[test]
    fn interleaved_clients_match_the_in_process_solver(
        seed in 0u64..1_000,
        mix in proptest::collection::vec(0usize..4, 1..6),
    ) {
        let wg = grid(4, 4, seed);
        let expected = reference_reports(&wg, &mix);
        for threads in [1usize, 4] {
            let server = default_server();
            let addr = server.addr();
            let clients: Vec<_> = (0..3)
                .map(|_| {
                    let wg = Arc::clone(&wg);
                    let mix = mix.clone();
                    thread::spawn(move || -> Result<Vec<String>, ServeError> {
                        let mut client = Client::connect(addr)?;
                        let session = client.create_session(&upload(&wg, threads))?;
                        let n = wg.graph().n();
                        mix.iter()
                            .map(|&kind| {
                                client
                                    .query(&session, &mix_query(kind, n))
                                    .map(|v| v.to_string())
                            })
                            .collect()
                    })
                })
                .collect();
            for c in clients {
                let got = c.join().expect("client thread").expect("client request");
                prop_assert_eq!(&got, &expected);
            }
            // All three clients uploaded the same graph + options: one session.
            prop_assert_eq!(server.sessions(), 1);
            server.shutdown();
        }
    }
}

#[test]
fn batches_run_back_to_back_and_match_the_reference() {
    let wg = grid(4, 4, 7);
    let mix = [0usize, 1, 2, 3];
    let expected = reference_reports(&wg, &mix);
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.create_session(&upload(&wg, 1)).unwrap();
    let n = wg.graph().n();
    let mut queries: Vec<JsonValue> = mix.iter().map(|&k| mix_query(k, n)).collect();
    // A malformed query mid-batch must not poison its neighbours.
    queries.insert(2, obj([("query", JsonValue::Str("frobnicate".into()))]));
    let body = obj([("queries", JsonValue::Array(queries))]);
    let v = client
        .request(
            "POST",
            &format!("/v1/sessions/{session}/batch"),
            Some(&body),
        )
        .unwrap();
    let results = v.get("results").and_then(JsonValue::as_array).unwrap();
    assert_eq!(results.len(), 5);
    let ok: Vec<String> = results
        .iter()
        .filter_map(|r| r.get("ok").map(|v| v.to_string()))
        .collect();
    assert_eq!(ok, expected);
    let err = results[2].get("error").unwrap();
    assert_eq!(
        err.get("code").and_then(JsonValue::as_str),
        Some("BAD_REQUEST")
    );
    server.shutdown();
}

#[test]
fn error_codes_map_stably_over_the_wire() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // A disconnected upload builds a session (singleton parts tolerate
    // it), but connectivity-requiring queries fail with DISCONNECTED/422.
    let disconnected = CreateSession {
        n: 4,
        edges: vec![(0, 1, 5), (2, 3, 9)],
        parts: None,
        builder: None,
        bandwidth: None,
        max_rounds: None,
        threads: Some(1),
        trace: false,
    };
    let session = client.create_session(&disconnected).unwrap();
    match client.mst(&session) {
        Err(ServeError::Server { status, code, .. }) => {
            assert_eq!((status, code.as_str()), (422, "DISCONNECTED"));
        }
        other => panic!("expected DISCONNECTED, got {other:?}"),
    }

    // Solver-rejected query arguments -> BAD_QUERY/400.
    match client.sssp(&session, 999, Tier::Exact) {
        Err(ServeError::Server { status, code, .. }) => {
            assert_eq!((status, code.as_str()), (400, "BAD_QUERY"));
        }
        other => panic!("expected BAD_QUERY, got {other:?}"),
    }

    // Malformed request bodies -> BAD_REQUEST/400.
    match client.query(
        &session,
        &obj([("query", JsonValue::Str("frobnicate".into()))]),
    ) {
        Err(ServeError::Server { status, code, .. }) => {
            assert_eq!((status, code.as_str()), (400, "BAD_REQUEST"));
        }
        other => panic!("expected BAD_REQUEST, got {other:?}"),
    }

    // Unknown sessions and unknown routes -> NOT_FOUND/404.
    match client.mst("00000000deadbeef") {
        Err(ServeError::Server { status, code, .. }) => {
            assert_eq!((status, code.as_str()), (404, "NOT_FOUND"));
        }
        other => panic!("expected NOT_FOUND, got {other:?}"),
    }
    match client.request("GET", "/v1/nope", None) {
        Err(ServeError::Server { status, code, .. }) => {
            assert_eq!((status, code.as_str()), (404, "NOT_FOUND"));
        }
        other => panic!("expected NOT_FOUND, got {other:?}"),
    }

    // Tracing disabled -> NOT_FOUND with a pointed message.
    match client.trace_jsonl(&session) {
        Err(ServeError::Server { code, message, .. }) => {
            assert_eq!(code, "NOT_FOUND");
            assert!(message.contains("tracing"));
        }
        other => panic!("expected NOT_FOUND, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn apply_and_trace_work_end_to_end() {
    let wg = grid(4, 4, 11);
    let server = default_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut req = upload(&wg, 1);
    req.trace = true;
    let session = client.create_session(&req).unwrap();

    let before = client.mst(&session).unwrap();
    let mutations = [
        EdgeMutation::Insert {
            u: 0,
            v: 2,
            weight: 1,
        },
        EdgeMutation::Delete { u: 0, v: 1 },
    ];
    let stats = client.apply(&session, &mutations).unwrap();
    assert_eq!(stats.inserted, 1);
    assert_eq!(stats.deleted, 1);
    let after = client.mst(&session).unwrap();

    // The in-process reference agrees byte-for-byte across the mutation.
    let mut solver = Solver::from_arc(Arc::clone(&wg))
        .parts(PartsStrategy::Singletons)
        .shortcut_builder(AutoCappedBuilder)
        .config(CongestConfig::for_nodes(wg.graph().n()).with_threads(1))
        .trace(true)
        .build()
        .unwrap();
    assert_eq!(
        before.to_wire().to_string(),
        solver.mst().unwrap().to_wire().to_string()
    );
    assert_eq!(
        stats.to_wire().to_string(),
        solver.apply(&mutations).unwrap().to_wire().to_string()
    );
    assert_eq!(
        after.to_wire().to_string(),
        solver.mst().unwrap().to_wire().to_string()
    );

    let jsonl = client.trace_jsonl(&session).unwrap();
    assert!(!jsonl.is_empty());
    assert!(jsonl.lines().next().unwrap().contains("\"queries\""));
    server.shutdown();
}

#[test]
fn lru_evicts_the_coldest_session_over_http() {
    let server = start(ServerConfig {
        fleet_capacity: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).unwrap();
    let sessions: Vec<String> = (0..2)
        .map(|seed| {
            client
                .create_session(&upload(&grid(3, 3, seed), 1))
                .unwrap()
        })
        .collect();
    // Keep session 0 warm so session 1 is the LRU victim.
    client.mst(&sessions[0]).unwrap();
    let third = client
        .request(
            "POST",
            "/v1/sessions",
            Some(&upload(&grid(3, 3, 99), 1).to_body()),
        )
        .unwrap();
    let evicted = third.get("evicted").and_then(JsonValue::as_array).unwrap();
    assert_eq!(evicted.len(), 1);
    assert_eq!(evicted[0].as_str(), Some(sessions[1].as_str()));
    assert_eq!(server.sessions(), 2);
    match client.mst(&sessions[1]) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, "NOT_FOUND"),
        other => panic!("expected NOT_FOUND for the evicted session, got {other:?}"),
    }
    // Re-uploading the evicted graph rebuilds it under the same id.
    let again = client.create_session(&upload(&grid(3, 3, 1), 1)).unwrap();
    assert_eq!(again, sessions[1]);
    server.shutdown();
}

#[test]
fn overload_sheds_with_503_instead_of_queueing() {
    // queue_depth 1: while one min-cut holds the gate, any concurrent
    // query must be refused with OVERLOADED — never queued unboundedly.
    for attempt in 0..3 {
        let server = start(ServerConfig {
            queue_depth: 1,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        // Large enough that the gate-holding min-cut comfortably outlasts
        // one mst round-trip even on a fast hot path / slow scheduler —
        // the raw-speed pass shrank query times enough that an 8x8 grid's
        // min-cut could finish before the racing mst ever arrived.
        let wg = grid(16, 16, 5);
        let mut client = Client::connect(addr).unwrap();
        let session = client.create_session(&upload(&wg, 1)).unwrap();

        let slow_session = session.clone();
        let slow = thread::spawn(move || -> Result<(), ServeError> {
            let mut client = Client::connect(addr).unwrap();
            loop {
                // The racing mst below can win the gate first; keep trying
                // until the min-cut is the one holding it.
                match client.min_cut(&slow_session, 6) {
                    Err(e) if e.code() == Some("OVERLOADED") => continue,
                    other => return other.map(|_| ()),
                }
            }
        });

        let mut shed = 0usize;
        let mut served = 0usize;
        while !slow.is_finished() {
            match client.mst(&session) {
                Ok(_) => served += 1,
                Err(e) if e.code() == Some("OVERLOADED") => shed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        slow.join().unwrap().expect("slow query");
        server.shutdown();
        if shed > 0 {
            // After the gate freed up, service resumed (usually mid-loop;
            // guaranteed by the post-join query below if not).
            if served == 0 {
                let server = default_server();
                let mut client = Client::connect(server.addr()).unwrap();
                let session = client.create_session(&upload(&wg, 1)).unwrap();
                client
                    .mst(&session)
                    .expect("service resumes after shedding");
                server.shutdown();
            }
            return;
        }
        // The slow query finished before we could race it; try again.
        assert!(attempt < 2, "never observed OVERLOADED in 3 attempts");
    }
}

#[test]
fn shutdown_drains_in_flight_queries() {
    let server = default_server();
    let addr = server.addr();
    let wg = grid(8, 8, 3);
    let mut client = Client::connect(addr).unwrap();
    let session = client.create_session(&upload(&wg, 1)).unwrap();

    let slow = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.min_cut(&session, 4)
    });
    // Let the slow query get admitted, then shut down underneath it.
    thread::sleep(Duration::from_millis(100));
    server.shutdown();

    // The admitted query was drained, not dropped: its full response
    // arrived even though the daemon was shutting down around it.
    let report = slow.join().unwrap().expect("drained query completes");
    assert!(report.value.approx_value >= report.value.exact_value);

    // The daemon is gone: new connections fail outright or are refused.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => match late.health() {
            Err(_) => {}
            Ok(v) => panic!("daemon still serving after shutdown: {v}"),
        },
    }
}

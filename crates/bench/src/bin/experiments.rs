//! Prints every experiment table (E1–E12). Pass `--full` for the larger
//! sweeps used in `EXPERIMENTS.md`; name ids (e.g. `E6 E7`) to run a
//! subset; pass `--csv <dir>` to also dump each table as `<dir>/<id>.csv`
//! so bench trajectories can be tracked across PRs.

use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv_pos = args.iter().position(|a| a == "--csv");
    let csv_dir: Option<PathBuf> = csv_pos.map(|i| {
        let dir = args.get(i + 1).filter(|a| !a.starts_with('-'));
        PathBuf::from(dir.unwrap_or_else(|| {
            eprintln!("--csv requires a directory argument");
            std::process::exit(2);
        }))
    });
    let selected: Vec<&String> = args
        .iter()
        .enumerate()
        // The token after --csv is the output directory, never a table id.
        .filter(|&(i, _)| csv_pos.map_or(true, |p| i != p + 1))
        .map(|(_, a)| a)
        .filter(|a| a.starts_with('E') && a[1..].chars().all(|c| c.is_ascii_digit()))
        .collect();
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(2);
        });
    }
    println!(
        "# minex experiments ({} sweep)\n",
        if full { "full" } else { "quick" }
    );
    for (id, runner) in minex_bench::experiments() {
        if !selected.is_empty() && !selected.iter().any(|s| *s == id) {
            continue;
        }
        let start = Instant::now();
        let table = runner(full);
        println!("{}", table.render());
        println!("_(computed in {:.1?})_\n", start.elapsed());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{id}.csv"));
            std::fs::write(&path, table.to_csv()).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            });
        }
    }
}

//! Prints every experiment table (E1–E10). Pass `--full` for the larger
//! sweeps used in `EXPERIMENTS.md`; name ids (e.g. `E6 E7`) to run a
//! subset; the default is a quick pass over everything.

use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let selected: Vec<String> = std::env::args()
        .filter(|a| a.starts_with('E') && a[1..].chars().all(|c| c.is_ascii_digit()))
        .collect();
    println!(
        "# minex experiments ({} sweep)\n",
        if full { "full" } else { "quick" }
    );
    for (id, runner) in minex_bench::experiments() {
        if !selected.is_empty() && !selected.iter().any(|s| s == id) {
            continue;
        }
        let start = Instant::now();
        let table = runner(full);
        println!("{}", table.render());
        println!("_(computed in {:.1?})_\n", start.elapsed());
    }
}

//! Prints every experiment table (E1–E18). Pass `--full` for the larger
//! sweeps used in `EXPERIMENTS.md`; name ids (e.g. `E6 E7`) to run a
//! subset; pass `--csv <dir>` to also dump each table as `<dir>/<id>.csv`
//! so bench trajectories can be tracked across PRs; `--threads <n>` runs
//! every simulation on the n-worker engine (0 = all cores; results are
//! byte-identical to the sequential engine, only wall time changes);
//! `--perf-json <file>` writes a machine-readable wall-time summary
//! (`BENCH_pr.json` in CI), including a `plan_reuse` section with E14's
//! solver-vs-legacy amortization figures, an `engine_scaling` section with
//! E13's rounds/sec rows (the hot-path throughput the nightly perf floor
//! locks via `scripts/check-perf-floor.sh`), a `scale` section with E15's
//! CSR-vs-nested-Vec memory and iteration figures, a `dynamic` section
//! with E16's incremental-repair-vs-rebuild figures, a `serve` section
//! with E18's queries/sec-vs-concurrent-clients figures, and a
//! `telemetry` section with E17's observed-congestion rows plus the
//! noop-sink dispatch-overhead sample; `--trace <file>` (or `MINEX_TRACE=<file>`)
//! writes the deterministic traced-session JSONL export the CI telemetry
//! gate validates and diffs across thread counts.
//!
//! Tables go to stdout; progress chatter goes to stderr through the
//! `MINEX_LOG`-leveled logger, so `experiments > tables.md` captures
//! exactly the rendered tables.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Extracts the value following `--flag`, erroring out if it is missing or
/// looks like another flag.
fn flag_value(args: &[String], pos: usize, flag: &str) -> String {
    match args.get(pos + 1).filter(|a| !a.starts_with('-')) {
        Some(v) => v.clone(),
        None => {
            minex_bench::error!("{flag} requires an argument");
            std::process::exit(2);
        }
    }
}

/// Everything one sweep produces besides stdout: per-experiment wall
/// times, the tables feeding `BENCH_pr.json` sections, and the optional
/// traced-session JSONL export.
struct SweepOutput {
    perf: Vec<(&'static str, f64)>,
    engine_scaling: Option<minex_bench::Table>,
    plan_reuse: Option<minex_bench::Table>,
    scale: Option<minex_bench::Table>,
    dynamic: Option<minex_bench::Table>,
    serve: Option<minex_bench::Table>,
    telemetry: Option<minex_bench::Table>,
    sink_overhead: Option<(f64, f64)>,
    trace: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv_pos = args.iter().position(|a| a == "--csv");
    let csv_dir: Option<PathBuf> = csv_pos.map(|i| PathBuf::from(flag_value(&args, i, "--csv")));
    let perf_pos = args.iter().position(|a| a == "--perf-json");
    let perf_path: Option<PathBuf> =
        perf_pos.map(|i| PathBuf::from(flag_value(&args, i, "--perf-json")));
    let trace_pos = args.iter().position(|a| a == "--trace");
    let trace_path: Option<PathBuf> = trace_pos
        .map(|i| PathBuf::from(flag_value(&args, i, "--trace")))
        .or_else(|| std::env::var_os("MINEX_TRACE").map(PathBuf::from));
    let threads_pos = args.iter().position(|a| a == "--threads");
    let threads: Option<usize> = threads_pos.map(|i| {
        let raw = flag_value(&args, i, "--threads");
        raw.parse().unwrap_or_else(|_| {
            minex_bench::error!("--threads requires an integer, got {raw:?}");
            std::process::exit(2);
        })
    });
    let value_positions: Vec<usize> = [csv_pos, perf_pos, trace_pos, threads_pos]
        .iter()
        .flatten()
        .map(|p| p + 1)
        .collect();
    let selected: Vec<&String> = args
        .iter()
        .enumerate()
        // Tokens after --csv/--perf-json/--trace/--threads are values,
        // never ids.
        .filter(|(i, _)| !value_positions.contains(i))
        .map(|(_, a)| a)
        .filter(|a| a.starts_with('E') && a[1..].chars().all(|c| c.is_ascii_digit()))
        .collect();
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            minex_bench::error!("cannot create {}: {e}", dir.display());
            std::process::exit(2);
        });
    }
    // Fail on an unwritable output path now, not after the whole sweep ran.
    for path in [&perf_path, &trace_path].into_iter().flatten() {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                minex_bench::error!("cannot create {}: {e}", parent.display());
                std::process::exit(2);
            });
        }
    }
    println!(
        "# minex experiments ({} sweep{})\n",
        if full { "full" } else { "quick" },
        threads.map_or(String::new(), |t| format!(", {t}-thread engine")),
    );
    let run = || {
        let mut out = SweepOutput {
            perf: Vec::new(),
            engine_scaling: None,
            plan_reuse: None,
            scale: None,
            dynamic: None,
            serve: None,
            telemetry: None,
            sink_overhead: None,
            trace: None,
        };
        for (id, runner) in minex_bench::experiments() {
            if !selected.is_empty() && !selected.iter().any(|s| *s == id) {
                continue;
            }
            minex_bench::debug!("running {id}");
            let start = Instant::now();
            let table = runner(full);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            println!("{}", table.render());
            minex_bench::info!("{id} computed in {wall_ms:.1}ms");
            out.perf.push((id, wall_ms));
            if let Some(dir) = &csv_dir {
                let path = dir.join(format!("{id}.csv"));
                std::fs::write(&path, table.to_csv()).unwrap_or_else(|e| {
                    minex_bench::error!("cannot write {}: {e}", path.display());
                    std::process::exit(2);
                });
            }
            match id {
                "E13" => out.engine_scaling = Some(table),
                "E14" => out.plan_reuse = Some(table),
                "E15" => out.scale = Some(table),
                "E16" => out.dynamic = Some(table),
                "E17" => out.telemetry = Some(table),
                "E18" => out.serve = Some(table),
                _ => {}
            }
        }
        if trace_path.is_some() {
            minex_bench::debug!("exporting the traced-session JSONL");
            out.trace = Some(minex_bench::trace_session_jsonl());
        }
        if perf_path.is_some() {
            minex_bench::debug!("sampling noop-sink dispatch overhead");
            out.sink_overhead = Some(minex_bench::sink_overhead_ms(5));
        }
        out
    };
    let out = match threads {
        Some(t) => minex_bench::with_engine_threads(t, run),
        None => run(),
    };
    if let (Some(path), Some(trace)) = (&trace_path, &out.trace) {
        std::fs::write(path, trace).unwrap_or_else(|e| {
            minex_bench::error!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        });
        minex_bench::info!("trace written to {}", path.display());
    }
    if let Some(path) = &perf_path {
        let mut json = String::from("{\n");
        let _ = writeln!(
            json,
            "  \"mode\": \"{}\",",
            if full { "full" } else { "quick" }
        );
        let _ = writeln!(
            json,
            "  \"threads\": {},",
            threads.map_or("null".into(), |t| t.to_string())
        );
        // Debug builds distort every wall-clock figure (no vectorization,
        // overflow checks on the hot loops); consumers like
        // `scripts/check-perf-floor.sh` use this flag to skip timing
        // comparisons, consistent with `MINEX_SKIP_TIMING_ASSERTS`.
        let _ = writeln!(json, "  \"debug\": {},", cfg!(debug_assertions));
        let total: f64 = out.perf.iter().map(|(_, ms)| ms).sum();
        let _ = writeln!(json, "  \"total_wall_ms\": {total:.1},");
        json.push_str("  \"experiments\": [\n");
        for (i, (id, ms)) in out.perf.iter().enumerate() {
            let comma = if i + 1 < out.perf.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"id\": \"{id}\", \"wall_ms\": {ms:.1}}}{comma}"
            );
        }
        json.push_str("  ],\n");
        // E13's engine-throughput rows: rounds/sec of the CONGEST round
        // loop per thread count. These are the hot-path numbers the
        // nightly scale job locks against `expected/perf-floor.json`.
        json.push_str("  \"engine_scaling\": [\n");
        if let Some(table) = &out.engine_scaling {
            for (i, row) in table.rows.iter().enumerate() {
                let comma = if i + 1 < table.rows.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "    {{\"family\": \"{}\", \"n\": {}, \"threads\": {}, \"rounds\": {}, \"messages\": {}, \"krounds_per_sec\": {}, \"speedup\": {}}}{comma}",
                    row[0], row[1], row[2], row[3], row[4], row[6], row[7]
                );
            }
        }
        json.push_str("  ],\n");
        // E14's amortization rows: plan-once/query-many vs N legacy calls.
        json.push_str("  \"plan_reuse\": [\n");
        if let Some(table) = &out.plan_reuse {
            for (i, row) in table.rows.iter().enumerate() {
                let comma = if i + 1 < table.rows.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "    {{\"workload\": \"{}\", \"queries\": {}, \"legacy_ms\": {}, \"solver_ms\": {}, \"speedup\": {}}}{comma}",
                    row[0], row[1], row[2], row[3], row[4]
                );
            }
        }
        json.push_str("  ],\n");
        // E15's graph-core rows: CSR memory and iteration vs the nested-Vec
        // baseline, the trajectory numbers for the scale roadmap.
        json.push_str("  \"scale\": [\n");
        if let Some(table) = &out.scale {
            for (i, row) in table.rows.iter().enumerate() {
                let comma = if i + 1 < table.rows.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"build_ms\": {}, \"csr_bytes_per_edge\": {}, \"adj_bytes_per_edge\": {}, \"mem_ratio\": {}, \"iter_speedup\": {}, \"krounds_per_sec\": {}}}{comma}",
                    row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[9], row[10]
                );
            }
        }
        json.push_str("  ],\n");
        // E16's dynamic rows: Solver::apply repair vs a from-scratch
        // rebuild under single-edge churn, the regression bar for the
        // incremental-repair path.
        json.push_str("  \"dynamic\": [\n");
        if let Some(table) = &out.dynamic {
            for (i, row) in table.rows.iter().enumerate() {
                let comma = if i + 1 < table.rows.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"parts\": {}, \"repair_ms\": {}, \"rebuild_ms\": {}, \"speedup\": {}, \"parts_rebuilt\": {}}}{comma}",
                    row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7]
                );
            }
        }
        json.push_str("  ],\n");
        // E18's serving rows: aggregate queries/sec against the
        // `minex-serve` daemon as concurrent clients grow, each client on
        // its own session (cross-session parallelism).
        json.push_str("  \"serve\": [\n");
        if let Some(table) = &out.serve {
            for (i, row) in table.rows.iter().enumerate() {
                let comma = if i + 1 < table.rows.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "    {{\"workload\": \"{}\", \"clients\": {}, \"queries\": {}, \"elapsed_ms\": {}, \"qps\": {}, \"speedup\": {}, \"identical\": \"{}\"}}{comma}",
                    row[0], row[1], row[2], row[3], row[4], row[5], row[6]
                );
            }
        }
        json.push_str("  ],\n");
        // E17's congestion rows (observed max edge traffic vs the analytic
        // bound) plus the sink-dispatch overhead sample backing the
        // zero-cost-when-off guard (the <2% assertion itself lives in
        // minex-congest's sink_overhead test).
        json.push_str("  \"telemetry\": {\n");
        let (run_ms, direct_ms) = out.sink_overhead.unwrap_or((f64::NAN, f64::NAN));
        let _ = writeln!(json, "    \"sink_noop_ms\": {run_ms:.3},");
        let _ = writeln!(json, "    \"sink_direct_ms\": {direct_ms:.3},");
        let _ = writeln!(
            json,
            "    \"sink_overhead\": {:.4},",
            run_ms / direct_ms.max(1e-9)
        );
        json.push_str("    \"congestion\": [\n");
        if let Some(table) = &out.telemetry {
            for (i, row) in table.rows.iter().enumerate() {
                let comma = if i + 1 < table.rows.len() { "," } else { "" };
                let _ = writeln!(
                    json,
                    "      {{\"family\": \"{}\", \"n\": {}, \"parts\": {}, \"quality\": {}, \"rounds\": {}, \"round_budget\": {}, \"observed_max_edge_messages\": {}, \"bound\": {}, \"ratio\": {}}}{comma}",
                    row[0], row[1], row[3], row[4], row[5], row[6], row[7], row[8], row[9]
                );
            }
        }
        json.push_str("    ]\n  }\n}\n");
        std::fs::write(path, json).unwrap_or_else(|e| {
            minex_bench::error!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        });
    }
}

//! # minex-bench
//!
//! Experiment harness regenerating every experiment of the `minex`
//! reproduction (the paper is pure theory, so each theorem becomes a
//! measured table — see `DESIGN.md` §4 for the mapping).
//!
//! Every simulation-backed experiment runs through the plan-once /
//! query-many [`Solver`] session API (or the [`ShortcutPlan`] type for
//! pure quality measurements) — the golden-CSV gate verifies the migrated
//! tables stay byte-identical to the legacy free-function path.
//!
//! Run `cargo run -p minex-bench --bin experiments --release` to print all
//! tables; pass `--full` for the larger parameter sweeps.

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use minex_algo::baselines::{compare_mst, NoShortcutBuilder};
use minex_algo::solver::{PartsStrategy, Solver, SsspDetail, Tier};
use minex_algo::sssp::compare_sssp;
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::cells::{assign_cells, CellPartition};
use minex_core::construct::{
    ApexBuilder, AutoCappedBuilder, CliqueSumShortcutBuilder, ShortcutBuilder, SteinerBuilder,
    TreewidthBuilder,
};
use minex_core::gates::{planar_gates, validate_gates};
use minex_core::{Partition, ShortcutPlan};
use minex_decomp::{CliqueSumTree, TreeDecomposition};
use minex_graphs::generators::{self, CliqueSumBuilder};
use minex_graphs::{traversal, EdgeMutation, Graph, NodeId, WeightModel, WeightedGraph};

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (E1..E18).
    pub id: &'static str,
    /// Human title, naming the theorem being exercised.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders as CSV (header row first). Fields containing commas, quotes,
    /// or newlines are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as a Markdown table with a heading.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Leveled stderr logging for the experiment binaries, env-controlled via
/// `MINEX_LOG` (`off`, `error`, `warn`, `info`, `debug`; default `info`).
///
/// Progress chatter goes to stderr so stdout stays pure table output —
/// `experiments … > tables.md` captures exactly the rendered tables, and
/// `MINEX_LOG=off` silences the chatter entirely. Use through the
/// [`error!`](crate::error), [`warn!`](crate::warn), [`info!`](crate::info),
/// and [`debug!`](crate::debug) macros.
pub mod logging {
    use std::sync::OnceLock;

    /// Log severity, most severe first; `MINEX_LOG` sets the threshold.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub enum Level {
        /// Must-see problems (suppressed only by `MINEX_LOG=off`).
        Error,
        /// Suspicious but non-fatal conditions.
        Warn,
        /// Progress chatter (the default threshold).
        Info,
        /// Per-step detail.
        Debug,
    }

    impl Level {
        fn tag(self) -> &'static str {
            match self {
                Level::Error => "error",
                Level::Warn => "warn",
                Level::Info => "info",
                Level::Debug => "debug",
            }
        }
    }

    /// The `MINEX_LOG` threshold: `None` silences everything, otherwise
    /// the most verbose level still printed. Unset or unrecognized values
    /// fall back to `info`.
    fn threshold() -> Option<Level> {
        static THRESHOLD: OnceLock<Option<Level>> = OnceLock::new();
        *THRESHOLD.get_or_init(|| match std::env::var("MINEX_LOG").ok().as_deref() {
            Some("off") | Some("none") | Some("0") => None,
            Some("error") => Some(Level::Error),
            Some("warn") => Some(Level::Warn),
            Some("debug") | Some("trace") => Some(Level::Debug),
            _ => Some(Level::Info),
        })
    }

    /// Whether a message at `level` would currently be printed.
    pub fn enabled(level: Level) -> bool {
        threshold().is_some_and(|t| level <= t)
    }

    /// Prints `args` to stderr as `[minex <level>] …` when `level` clears
    /// the `MINEX_LOG` threshold.
    pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
        if enabled(level) {
            eprintln!("[minex {}] {args}", level.tag());
        }
    }
}

/// Logs to stderr at [`logging::Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::logging::log($crate::logging::Level::Error, format_args!($($arg)*))
    };
}

/// Logs to stderr at [`logging::Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::logging::log($crate::logging::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs to stderr at [`logging::Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::logging::log($crate::logging::Level::Info, format_args!($($arg)*))
    };
}

/// Logs to stderr at [`logging::Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::logging::log($crate::logging::Level::Debug, format_args!($($arg)*))
    };
}

thread_local! {
    /// Per-thread engine override consulted by [`config`]; see
    /// [`with_engine_threads`].
    static ENGINE_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with every simulator config built by this crate pinned to
/// `threads` engine workers, overriding the `MINEX_THREADS` default.
///
/// Used by the `experiments --threads` flag and by the engine-equivalence
/// tests that re-run whole experiment tables on both engines. The override
/// is scoped to the current thread, so concurrently running tests cannot
/// race each other.
pub fn with_engine_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    ENGINE_THREADS.with(|cell| {
        let prev = cell.replace(Some(threads));
        let out = f();
        cell.set(prev);
        out
    })
}

fn config(n: usize) -> CongestConfig {
    let config = CongestConfig::for_nodes(n)
        .with_bandwidth(192)
        .with_max_rounds(2_000_000);
    match ENGINE_THREADS.with(Cell::get) {
        Some(threads) => config.with_threads(threads),
        None => config,
    }
}

fn diameter(g: &Graph) -> usize {
    traversal::diameter_double_sweep(g).expect("connected")
}

/// E1 — planar shortcut quality (Theorem 4 shape: `b=O(log d)`,
/// `c=O(d log d)`).
pub fn e1_planar_quality(full: bool) -> Table {
    let sides: &[usize] = if full { &[8, 16, 32, 64] } else { &[8, 16, 32] };
    let mut rows = Vec::new();
    for &side in sides {
        for family in ["grid", "tri-grid", "apollonian"] {
            let mut rng = StdRng::seed_from_u64(side as u64);
            let g = match family {
                "grid" => generators::grid(side, side),
                "tri-grid" => generators::triangulated_grid(side, side),
                _ => generators::apollonian(side * side, &mut rng).0,
            };
            let parts = workloads::voronoi_parts(&g, side, &mut rng);
            let plan = ShortcutPlan::build(&g, 0, parts, &AutoCappedBuilder);
            let q = plan.quality();
            rows.push(vec![
                family.to_string(),
                g.n().to_string(),
                plan.parts().len().to_string(),
                q.tree_diameter.to_string(),
                q.block.to_string(),
                q.congestion.to_string(),
                q.quality.to_string(),
                format!("{:.2}", q.quality as f64 / q.tree_diameter.max(1) as f64),
            ]);
        }
    }
    Table {
        id: "E1",
        title: "Planar shortcut quality (Theorem 4: b=O(log d), c=O(d log d))".into(),
        headers: [
            "family",
            "n",
            "parts",
            "d_T",
            "block",
            "congestion",
            "quality",
            "q/d_T",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E2 — treewidth shortcuts (Theorem 5 shape: `b=O(k)`, `c=O(k log n)`).
pub fn e2_treewidth(full: bool) -> Table {
    let ns: &[usize] = if full { &[200, 800, 3200] } else { &[200, 800] };
    let mut rows = Vec::new();
    for &n in ns {
        for k in [2usize, 3, 4] {
            let mut rng = StdRng::seed_from_u64((n + k) as u64);
            let (g, rec) = generators::k_tree(n, k, &mut rng);
            let td = TreeDecomposition::from_k_tree(g.n(), &rec);
            let builder = TreewidthBuilder::new(&td);
            let parts = workloads::voronoi_parts(&g, (n as f64).sqrt() as usize, &mut rng);
            let plan = ShortcutPlan::build(&g, 0, parts, &builder);
            let q = plan.quality();
            let log_n = (n as f64).log2();
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                plan.parts().len().to_string(),
                q.block.to_string(),
                format!("{:.2}", q.block as f64 / k as f64),
                q.congestion.to_string(),
                format!("{:.2}", q.congestion as f64 / (k as f64 * log_n)),
                q.quality.to_string(),
            ]);
        }
    }
    Table {
        id: "E2",
        title: "Treewidth-k shortcuts (Theorem 5: b=O(k), c=O(k log n))".into(),
        headers: [
            "n",
            "k",
            "parts",
            "block",
            "block/k",
            "congestion",
            "c/(k·log n)",
            "quality",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// Chain of triangulated grids glued along edges — a deep clique-sum.
fn grid_chain(len: usize, side: usize) -> (Graph, CliqueSumTree) {
    let comp = generators::triangulated_grid(side, side);
    let corner = side * side - 1;
    let mut builder = CliqueSumBuilder::new(&comp, 2);
    let mut last: Vec<NodeId> = (0..comp.n()).collect();
    for _ in 1..len {
        let host = vec![last[corner - 1], last[corner]];
        last = builder.glue(&comp, &host, &[0, 1]).expect("chain glue");
    }
    let (g, rec) = builder.build();
    let tree = CliqueSumTree::new(rec).expect("chain record");
    (g, tree)
}

/// Bushy random clique-sum of small pieces — low diameter, minor-free.
fn bushy_clique_sum(bags: usize, seed: u64) -> (Graph, CliqueSumTree) {
    let comps = vec![
        generators::triangulated_grid(3, 3),
        generators::complete(4),
        generators::apollonian(12, &mut StdRng::seed_from_u64(seed)).0,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, rec) = generators::random_clique_sum(&comps, bags, 3, &mut rng);
    let tree = CliqueSumTree::new(rec).expect("random record");
    (g, tree)
}

/// E3 — clique-sum composition (Theorem 7 shape: block `+2k`, congestion
/// `+O(k log² n)`).
pub fn e3_clique_sum(full: bool) -> Table {
    let shapes: &[(&str, usize)] = if full {
        &[("chain", 8), ("chain", 32), ("bushy", 16), ("bushy", 64)]
    } else {
        &[("chain", 8), ("bushy", 16)]
    };
    let mut rows = Vec::new();
    for &(shape, bags) in shapes {
        let (g, cst) = if shape == "chain" {
            grid_chain(bags, 4)
        } else {
            bushy_clique_sum(bags, 3)
        };
        cst.validate(&g).expect("witness valid");
        let mut rng = StdRng::seed_from_u64(bags as u64);
        let parts = workloads::voronoi_parts(&g, bags, &mut rng);
        let builder = CliqueSumShortcutBuilder::folded(cst.clone(), SteinerBuilder);
        let plan = ShortcutPlan::build(&g, 0, parts, &builder);
        let q = plan.quality();
        rows.push(vec![
            shape.to_string(),
            bags.to_string(),
            g.n().to_string(),
            cst.max_depth().to_string(),
            cst.fold().max_depth().to_string(),
            q.block.to_string(),
            q.congestion.to_string(),
            q.quality.to_string(),
        ]);
    }
    Table {
        id: "E3",
        title: "Clique-sum shortcuts (Theorem 7: b ≤ 2k+O(b_F), c ≤ O(k log² n)+c_F)".into(),
        headers: [
            "shape",
            "bags",
            "n",
            "depth",
            "folded depth",
            "block",
            "congestion",
            "quality",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E4 — Genus+Vortex treewidth and shortcuts (Lemmas 2–3 / Theorem 9).
pub fn e4_genus_vortex(full: bool) -> Table {
    let sizes: &[(usize, usize)] = if full {
        &[(6, 12), (8, 24), (10, 40)]
    } else {
        &[(6, 12), (8, 24)]
    };
    let mut rows = Vec::new();
    for &(r, c) in sizes {
        for vortices in [0usize, 1, 2] {
            let base = generators::toroidal_grid(r, c);
            let mut rng = StdRng::seed_from_u64((r * c + vortices) as u64);
            let mut g = base.clone();
            let mut records = Vec::new();
            for vi in 0..vortices {
                // Rows 0 and r/2 are disjoint cycles of the torus.
                let row = if vi == 0 { 0 } else { r / 2 };
                let cycle: Vec<NodeId> = (0..c).map(|j| row * c + j).collect();
                let (g2, rec) =
                    generators::add_vortex(&g, &cycle, 4, 2, &mut rng).expect("vortex fits");
                g = g2;
                records.push(rec);
            }
            // Witness decomposition: torus TD + Lemma 2 splicing per vortex.
            let mut td = TreeDecomposition::of_toroidal_grid(r, c);
            for rec in &records {
                td = td.reinsert_vortex(rec, None);
            }
            td.validate(&g).expect("Lemma 2 splice is valid");
            let builder = TreewidthBuilder::new(&td);
            let parts = workloads::voronoi_parts(&g, r + c, &mut rng);
            let plan = ShortcutPlan::build(&g, 0, parts, &builder);
            let q = plan.quality();
            let d = diameter(&g);
            rows.push(vec![
                format!("{r}x{c}"),
                vortices.to_string(),
                g.n().to_string(),
                d.to_string(),
                td.width().to_string(),
                // Lemma 3 bound O((g+1)·k·ℓ·D) with g=1, k=2 (+1 star slack).
                format!("{}", 2 * 3 * vortices.max(1) * d),
                q.block.to_string(),
                q.quality.to_string(),
            ]);
        }
    }
    Table {
        id: "E4",
        title: "Genus+Vortex treewidth (Lemmas 2-3: tw = O((g+1)kℓD)) and shortcuts".into(),
        headers: [
            "torus", "vortices", "n", "D", "width", "bound", "block", "quality",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E5 — apex graphs: diameter collapses, shortcut quality survives
/// (Lemma 9 / Theorem 8); gates machine-checked (Lemma 7).
pub fn e5_apex(full: bool) -> Table {
    let sides: &[usize] = if full { &[8, 16, 32] } else { &[8, 16] };
    let mut rows = Vec::new();
    for &side in sides {
        for stride in [1usize, 4] {
            let (g, apex) = generators::apex_grid(side, side, stride);
            let d = diameter(&g);
            let cols: Vec<Vec<NodeId>> = (0..side)
                .map(|c| (0..side).map(|r2| r2 * side + c).collect())
                .collect();
            let parts = Partition::new(&g, cols).expect("columns connected");
            let apex_builder = ApexBuilder::new(vec![apex], SteinerBuilder);
            let qa = ShortcutPlan::build(&g, apex, parts.clone(), &apex_builder)
                .quality()
                .clone();
            let qs = ShortcutPlan::build(&g, apex, parts, &SteinerBuilder)
                .quality()
                .clone();
            // Gates on the apex-free base grid with concurrent-BFS cells.
            let (base, emb) = generators::grid_embedded(side, side);
            let attach: Vec<NodeId> = (0..base.n()).step_by(stride.max(side)).collect();
            let bfs = traversal::multi_source_bfs(&base, &attach);
            let mut cell_sets: Vec<Vec<NodeId>> = vec![Vec::new(); attach.len()];
            for v in 0..base.n() {
                cell_sets[bfs.source_of[v]].push(v);
            }
            cell_sets.retain(|s| !s.is_empty());
            let cells = CellPartition::new(&base, cell_sets);
            let gate_s = planar_gates(&base, &emb, &cells)
                .ok()
                .and_then(|col| validate_gates(&base, &cells, &col).ok());
            let base_parts = Partition::new(
                &base,
                (0..side)
                    .map(|c| (0..side).map(|r2| r2 * side + c).collect())
                    .collect(),
            )
            .expect("columns connected");
            let beta = assign_cells(&cells, &base_parts).beta;
            rows.push(vec![
                format!("{side}x{side}+apex/{stride}"),
                d.to_string(),
                qa.tree_diameter.to_string(),
                qa.block.to_string(),
                qa.quality.to_string(),
                qs.quality.to_string(),
                gate_s.map_or("-".into(), |s| format!("{s:.1}")),
                beta.to_string(),
            ]);
        }
    }
    Table {
        id: "E5",
        title: "Apex graphs (Lemma 9/Thm 8): quality survives diameter collapse; gates (Lemma 7)"
            .into(),
        headers: [
            "graph",
            "D",
            "d_T",
            "block",
            "apex quality",
            "steiner quality",
            "gate s",
            "β",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E6 — MST round complexity on minor-free families (Corollary 1 shape:
/// `Õ(D²)` vs `Õ(D+√n)` vs naive).
pub fn e6_mst_rounds(full: bool) -> Table {
    let mut rows = Vec::new();
    let sides: &[usize] = if full { &[8, 12, 16, 24] } else { &[8, 12] };
    for &side in sides {
        let g = generators::triangulated_grid(side, side);
        rows.push(e6_row("tri-grid", g, side as u64));
    }
    let bags: &[usize] = if full { &[8, 24, 48] } else { &[8, 16] };
    for &b in bags {
        let (g, _) = bushy_clique_sum(b, b as u64);
        rows.push(e6_row("clique-sum", g, b as u64));
    }
    Table {
        id: "E6",
        title: "MST rounds (Corollary 1: Õ(D²) via shortcuts vs Õ(D+√n) vs naive)".into(),
        headers: [
            "family",
            "n",
            "D",
            "shortcut rounds",
            "charged constr.",
            "GKP rounds",
            "naive rounds",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

fn e6_row(family: &str, g: Graph, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
    let d = diameter(&g);
    let cmp = compare_mst(&wg, AutoCappedBuilder, config(g.n())).expect("mst comparison");
    vec![
        family.to_string(),
        g.n().to_string(),
        d.to_string(),
        cmp.shortcut_rounds.to_string(),
        cmp.shortcut_charged.to_string(),
        cmp.gkp_rounds.to_string(),
        cmp.naive_rounds.to_string(),
    ]
}

/// E7 — the `Ω̃(√n)` separation: aggregation on the lower-bound family vs
/// planar graphs of the same size.
pub fn e7_lower_bound(full: bool) -> Table {
    let sizes: &[usize] = if full { &[8, 16, 24, 32] } else { &[8, 16] };
    let mut rows = Vec::new();
    for &s in sizes {
        // Lower-bound family Γ(s, s): n ≈ s² + tree, D = O(log s).
        let (g, parts) = workloads::lower_bound_path_parts(s, s);
        let mut session = Solver::for_graph(&g)
            .parts(PartsStrategy::Explicit(parts))
            .shortcut_builder(AutoCappedBuilder)
            .config(config(g.n()))
            .root(g.n() - 1)
            .build()
            .expect("session");
        let q = session.plan().expect("connected").quality().clone();
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let agg = session.partwise_min(&values, 32).expect("aggregation");
        let d = diameter(&g);
        rows.push(vec![
            format!("Γ({s},{s})"),
            g.n().to_string(),
            d.to_string(),
            q.quality.to_string(),
            agg.stats.simulated_rounds.to_string(),
            format!("{:.2}", agg.stats.simulated_rounds as f64 / (s as f64)),
            format!("{:.2}", agg.stats.simulated_rounds as f64 / d.max(1) as f64),
        ]);
        // Planar control of comparable size: grid s×s with row parts.
        let (cg, cparts) = workloads::grid_row_parts(s, s);
        let mut csession = Solver::for_graph(&cg)
            .parts(PartsStrategy::Explicit(cparts))
            .shortcut_builder(AutoCappedBuilder)
            .config(config(cg.n()))
            .build()
            .expect("session");
        let cq = csession.plan().expect("connected").quality().clone();
        let cvalues: Vec<u64> = (0..cg.n() as u64).collect();
        let cagg = csession.partwise_min(&cvalues, 32).expect("aggregation");
        let cd = diameter(&cg);
        rows.push(vec![
            format!("grid({s},{s})"),
            cg.n().to_string(),
            cd.to_string(),
            cq.quality.to_string(),
            cagg.stats.simulated_rounds.to_string(),
            format!("{:.2}", cagg.stats.simulated_rounds as f64 / (s as f64)),
            format!(
                "{:.2}",
                cagg.stats.simulated_rounds as f64 / cd.max(1) as f64
            ),
        ]);
    }
    Table {
        id: "E7",
        title: "Lower-bound family vs planar control ([SHK+12]: Ω̃(√n) despite D=O(log n))".into(),
        headers: [
            "graph",
            "n",
            "D",
            "quality",
            "agg rounds",
            "rounds/√n",
            "rounds/D",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E8 — aggregation rounds track shortcut quality (Theorem 1's mechanism).
pub fn e8_aggregation(full: bool) -> Table {
    let mut rows = Vec::new();
    let cases: Vec<(String, Graph, Partition)> = {
        let mut v: Vec<(String, Graph, Partition)> = Vec::new();
        let (wg, wp) = workloads::wheel_rim_parts(129, 16);
        v.push(("wheel-rim".into(), wg, wp));
        let g = generators::triangulated_grid(16, 16);
        let mut rng = StdRng::seed_from_u64(1);
        let p = workloads::voronoi_parts(&g, 16, &mut rng);
        v.push(("tri-grid voronoi".into(), g, p));
        let g2 = generators::grid(8, 32);
        let p2 = workloads::forest_split_parts(&g2, 12, &mut rng);
        v.push(("grid forest-split".into(), g2, p2));
        if full {
            let g3 = generators::triangulated_grid(24, 24);
            let p3 = workloads::voronoi_parts(&g3, 24, &mut rng);
            v.push(("tri-grid 24".into(), g3, p3));
        }
        v
    };
    for (name, g, parts) in cases {
        let builders: [(&str, Box<dyn ShortcutBuilder + Send>); 3] = [
            ("none", Box::new(NoShortcutBuilder)),
            ("steiner", Box::new(SteinerBuilder)),
            ("auto-capped", Box::new(AutoCappedBuilder)),
        ];
        for (bname, builder) in builders {
            // One session per (workload, builder): the plan is built once,
            // quality read off it, and the aggregation served from it.
            let mut session = Solver::for_graph(&g)
                .parts(PartsStrategy::Explicit(parts.clone()))
                .shortcut_builder(builder)
                .config(config(g.n()))
                .build()
                .expect("session");
            let q = session.plan().expect("connected").quality().clone();
            let values: Vec<u64> = (0..g.n() as u64).rev().collect();
            let agg = session.partwise_min(&values, 32).expect("aggregation");
            rows.push(vec![
                name.clone(),
                bname.to_string(),
                q.quality.to_string(),
                agg.stats.simulated_rounds.to_string(),
                format!(
                    "{:.2}",
                    agg.stats.simulated_rounds as f64 / q.quality.max(1) as f64
                ),
            ]);
        }
    }
    Table {
        id: "E8",
        title: "Part-wise aggregation rounds vs quality (Theorem 1: rounds = Õ(q))".into(),
        headers: ["workload", "shortcut", "quality", "agg rounds", "rounds/q"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// E9 — `(1+ε)` min-cut via tree packing (Corollary 1).
pub fn e9_mincut(full: bool) -> Table {
    let mut rows = Vec::new();
    let mut cases: Vec<(String, WeightedGraph)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(4);
    let g1 = generators::triangulated_grid(6, 6);
    cases.push((
        "tri-grid 6x6".into(),
        WeightModel::Uniform { lo: 1, hi: 8 }.apply(&g1, &mut rng),
    ));
    let g2 = generators::toroidal_grid(5, 5);
    cases.push(("torus 5x5".into(), WeightedGraph::unit(g2)));
    if full {
        let (g3, _) = bushy_clique_sum(12, 9);
        cases.push(("clique-sum".into(), WeightedGraph::unit(g3)));
    }
    for (name, wg) in cases {
        // One session per graph: the three packing sizes share the cached
        // Borůvka plan, so only the first row pays for shortcut builds.
        let mut session = Solver::builder(&wg)
            .shortcut_builder(SteinerBuilder)
            .config(config(wg.graph().n()))
            .build()
            .expect("session");
        for trees in [1usize, 4, 8] {
            let out = session.min_cut(trees).expect("min cut");
            rows.push(vec![
                name.clone(),
                trees.to_string(),
                out.value.exact_value.to_string(),
                out.value.approx_value.to_string(),
                format!("{:.3}", out.value.ratio),
                out.stats.simulated_rounds.to_string(),
            ]);
        }
    }
    Table {
        id: "E9",
        title: "(1+ε)-approximate min-cut via tree packing (Corollary 1)".into(),
        headers: ["graph", "trees", "exact", "approx", "ratio", "sim rounds"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

/// E10 — folding ablation (Lemma 1 vs Theorem 7): congestion `k·d_DT` vs
/// `O(k log² n)`.
pub fn e10_folding_ablation(full: bool) -> Table {
    let lens: &[usize] = if full {
        &[8, 16, 32, 64, 128]
    } else {
        &[8, 16, 32]
    };
    let mut rows = Vec::new();
    for &len in lens {
        let (g, cst) = grid_chain(len, 3);
        let mut rng = StdRng::seed_from_u64(len as u64);
        let parts = workloads::voronoi_parts(&g, len, &mut rng);
        let unfolded = CliqueSumShortcutBuilder::unfolded(cst.clone(), SteinerBuilder);
        let folded = CliqueSumShortcutBuilder::folded(cst.clone(), SteinerBuilder);
        let qu = ShortcutPlan::build(&g, 0, parts.clone(), &unfolded)
            .quality()
            .clone();
        let qf = ShortcutPlan::build(&g, 0, parts, &folded).quality().clone();
        rows.push(vec![
            len.to_string(),
            cst.max_depth().to_string(),
            cst.fold().max_depth().to_string(),
            qu.congestion.to_string(),
            qf.congestion.to_string(),
            qu.block.to_string(),
            qf.block.to_string(),
        ]);
    }
    Table {
        id: "E10",
        title: "Folding ablation (Lemma 1 congestion ~ depth vs Theorem 7 polylog)".into(),
        headers: [
            "chain bags",
            "depth",
            "folded depth",
            "congestion unfolded",
            "congestion folded",
            "block unfolded",
            "block folded",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// One E11 row: runs all three SSSP tiers via [`compare_sssp`] and formats
/// the comparison.
fn e11_row<B: ShortcutBuilder + Send + 'static>(
    family: &str,
    wg: &WeightedGraph,
    parts: &Partition,
    builder: B,
    source: NodeId,
    epsilon: f64,
    max_phases: usize,
) -> Vec<String> {
    let g = wg.graph();
    let cmp = compare_sssp(
        wg,
        source,
        parts,
        builder,
        epsilon,
        max_phases,
        config(g.n()),
    )
    .expect("sssp comparison");
    vec![
        family.to_string(),
        g.n().to_string(),
        diameter(g).to_string(),
        cmp.exact_rounds.to_string(),
        cmp.scaled_rounds.to_string(),
        format!("{:.3}", cmp.scaled_stretch),
        cmp.shortcut_rounds.to_string(),
        format!("{:.3}", cmp.shortcut_stretch),
        cmp.shortcut_phases.to_string(),
        if cmp.shortcut_converged { "yes" } else { "no" }.to_string(),
    ]
}

/// Comb workload for E11: each tooth (plus its spine node) is one part.
fn comb_parts(teeth: usize, tooth_len: usize) -> (Graph, Partition) {
    let g = generators::comb(teeth, tooth_len);
    let parts: Vec<Vec<NodeId>> = (0..teeth)
        .map(|i| {
            let mut p = vec![i];
            p.extend(teeth + i * tooth_len..teeth + (i + 1) * tooth_len);
            p
        })
        .collect();
    let p = Partition::new(&g, parts).expect("tooth parts are connected");
    (g, p)
}

/// E11 — SSSP rounds vs the Bellman–Ford baseline across families
/// (the paper's third payoff problem). Heavy-hub wheels (planar) and fans
/// (treewidth 2) are where shortest paths take `Θ(n)` hops at hop diameter
/// 2 and the shortcut tier wins outright; maze grids, apex grids, and combs
/// are the controls where Bellman–Ford is already hop-optimal.
pub fn e11_sssp_rounds(full: bool) -> Table {
    let eps = 0.5;
    let mut rows = Vec::new();
    // Planar heavy-hub wheels.
    let wheels: &[(usize, usize)] = if full {
        &[(192, 16), (256, 16), (384, 32)]
    } else {
        &[(192, 16), (256, 16)]
    };
    for &(n, seg) in wheels {
        let (wg, parts) = workloads::heavy_hub_wheel(n, seg, 64, 8192);
        let budget = parts.len() + 2;
        rows.push(e11_row(
            &format!("wheel({n},{seg})"),
            &wg,
            &parts,
            SteinerBuilder,
            0,
            eps,
            budget,
        ));
    }
    // Bounded-treewidth heavy-hub fans (treewidth 2).
    let fans: &[(usize, usize)] = if full {
        &[(192, 16), (256, 16), (320, 20)]
    } else {
        &[(192, 16)]
    };
    for &(n, seg) in fans {
        let (wg, parts) = workloads::heavy_hub_fan(n, seg, 64, 8192);
        let budget = parts.len() + 2;
        rows.push(e11_row(
            &format!("fan({n},{seg})"),
            &wg,
            &parts,
            SteinerBuilder,
            1,
            eps,
            budget,
        ));
    }
    // Controls: maze grid, maze apex grid, comb — Bellman–Ford rounds are
    // already near the hop diameter there.
    let mut rng = StdRng::seed_from_u64(11);
    let (wg, parts) = workloads::maze_grid(12, 12, 6, &mut rng);
    let budget = parts.len() + 2;
    rows.push(e11_row(
        "maze-grid(12x12)",
        &wg,
        &parts,
        AutoCappedBuilder,
        0,
        eps,
        budget,
    ));
    if full {
        let (wg, parts) = workloads::maze_apex_grid(16, 4, 8, &mut rng);
        let budget = parts.len() + 2;
        rows.push(e11_row(
            "maze-apex(16x16)",
            &wg,
            &parts,
            AutoCappedBuilder,
            0,
            eps,
            budget,
        ));
    }
    let (comb, parts) = comb_parts(12, 6);
    let wg = WeightModel::Uniform { lo: 64, hi: 512 }.apply(&comb, &mut rng);
    let budget = parts.len() + 2;
    rows.push(e11_row(
        "comb(12,6)",
        &wg,
        &parts,
        SteinerBuilder,
        0,
        eps,
        budget,
    ));
    Table {
        id: "E11",
        title: "SSSP rounds vs Bellman-Ford baseline (ε=0.5; wheels/fans: SP hops ≫ D)".into(),
        headers: [
            "family",
            "n",
            "D",
            "bf rounds",
            "scaled rounds",
            "scaled str",
            "shortcut rounds",
            "shortcut str",
            "phases",
            "conv",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E12 — approximation quality vs ε: the scaled tier's provable `(1+ε)`
/// bound and the shortcut tier's measured stretch under tight and generous
/// phase budgets.
pub fn e12_sssp_quality(full: bool) -> Table {
    let epsilons: &[f64] = if full {
        &[0.05, 0.1, 0.25, 0.5, 1.0]
    } else {
        &[0.1, 0.5, 1.0]
    };
    let mut rows = Vec::new();
    let cases: Vec<(String, WeightedGraph, Partition, NodeId)> = {
        let mut v = Vec::new();
        let (wg, parts) = workloads::heavy_hub_wheel(256, 16, 64, 8192);
        v.push(("wheel(256,16)".to_string(), wg, parts, 0));
        if full {
            let (wg, parts) = workloads::heavy_hub_fan(256, 16, 64, 8192);
            v.push(("fan(256,16)".to_string(), wg, parts, 1));
        }
        v
    };
    for (name, wg, parts, src) in cases {
        let reference = traversal::dijkstra(&wg, src);
        // One session per graph serves the whole ε × budget sweep: per-source
        // shortcut plans (tree, shortcut, ρ) are cached by weight scale, so
        // only the first query of each scale pays for construction.
        let n_parts = parts.len();
        let mut session = Solver::builder(&wg)
            .parts(PartsStrategy::Explicit(parts))
            .shortcut_builder(SteinerBuilder)
            .config(config(wg.graph().n()))
            .build()
            .expect("session");
        for &eps in epsilons {
            let scaled = session
                .sssp(src, Tier::Scaled { epsilon: eps })
                .expect("scaled sssp");
            let scale = match scaled.value.detail {
                SsspDetail::Scaled { scale, .. } => scale,
                _ => unreachable!("scaled tier"),
            };
            let scaled_stretch = minex_algo::sssp::max_stretch(&scaled.value.dist, &reference.dist);
            for budget in [n_parts / 2 + 1, n_parts + 2] {
                let out = session
                    .sssp(
                        src,
                        Tier::Shortcut {
                            epsilon: eps,
                            max_phases: budget,
                        },
                    )
                    .expect("shortcut sssp");
                let converged = match out.value.detail {
                    SsspDetail::Shortcut { converged, .. } => converged,
                    _ => unreachable!("shortcut tier"),
                };
                let stretch = minex_algo::sssp::max_stretch(&out.value.dist, &reference.dist);
                rows.push(vec![
                    name.clone(),
                    format!("{eps:.2}"),
                    scale.to_string(),
                    budget.to_string(),
                    scaled.stats.simulated_rounds.to_string(),
                    format!("{scaled_stretch:.4}"),
                    out.stats.simulated_rounds.to_string(),
                    format!("{stretch:.4}"),
                    format!("{:.2}", 1.0 + eps),
                    if converged { "yes" } else { "no" }.to_string(),
                ]);
            }
        }
    }
    Table {
        id: "E12",
        title: "SSSP approximation quality vs ε (scaled tier provable, shortcut tier measured)"
            .into(),
        headers: [
            "graph",
            "eps",
            "scale",
            "budget",
            "scaled rounds",
            "scaled str",
            "shortcut rounds",
            "shortcut str",
            "1+eps",
            "conv",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E13 — engine scaling: wall-clock throughput (rounds/sec) of the CONGEST
/// execution engine vs thread count on the largest benchmarked families
/// (planar triangulated grid, k-tree, maze grid), with `RunStats` equality
/// across engines asserted on every row.
///
/// The timing columns are machine-dependent, so E13 is **excluded from the
/// golden-CSV regression gate** (`expected/` holds E1–E12 only). Speedups
/// only materialize on multicore hardware; on a single-core box the extra
/// thread counts measure pure engine overhead.
pub fn e13_engine_scaling(full: bool) -> Table {
    let thread_counts: &[usize] = if full { &[1, 2, 4, 8] } else { &[1, 2, 4] };
    let mut rng = StdRng::seed_from_u64(13);
    let mut cases: Vec<(String, WeightedGraph)> = Vec::new();
    let side = if full { 96 } else { 64 };
    cases.push((
        format!("tri-grid {side}x{side}"),
        WeightModel::DistinctShuffled.apply(&generators::triangulated_grid(side, side), &mut rng),
    ));
    let kn = if full { 8192 } else { 4096 };
    let (kt, _) = generators::k_tree(kn, 3, &mut rng);
    cases.push((
        format!("k-tree({kn},3)"),
        WeightModel::DistinctShuffled.apply(&kt, &mut rng),
    ));
    let mside = if full { 64 } else { 32 };
    let (mg, _) = workloads::maze_grid(mside, mside, 8, &mut rng);
    cases.push((format!("maze {mside}x{mside}"), mg));
    let mut rows = Vec::new();
    for (family, wg) in cases {
        let n = wg.graph().n();
        let mut reference = None;
        let mut base_secs = f64::NAN;
        for &threads in thread_counts {
            let start = Instant::now();
            let out = minex_algo::sssp::bellman_ford_sssp(&wg, 0, config(n).with_threads(threads))
                .expect("bellman-ford");
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            match reference {
                None => {
                    reference = Some(out.stats);
                    base_secs = secs;
                }
                Some(r) => assert_eq!(
                    r, out.stats,
                    "{family}: engine stats diverge at {threads} threads"
                ),
            }
            rows.push(vec![
                family.clone(),
                n.to_string(),
                threads.to_string(),
                out.stats.rounds.to_string(),
                out.stats.messages.to_string(),
                format!("{:.1}", secs * 1e3),
                format!("{:.1}", out.stats.rounds as f64 / secs / 1e3),
                format!("{:.2}", base_secs / secs),
            ]);
        }
    }
    Table {
        id: "E13",
        title: "Engine scaling: rounds/sec vs threads (byte-identical RunStats asserted)".into(),
        headers: [
            "family",
            "n",
            "threads",
            "rounds",
            "messages",
            "wall ms",
            "krounds/s",
            "speedup",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E14 — plan-once / query-many amortization: wall time of **one**
/// [`Solver`] session serving `N` mixed queries versus `N` independent
/// legacy-style calls. The queries cycle through a 4-query working set —
/// shortcut SSSP, MST, and two distinct part-wise MIN aggregations — the
/// serving pattern the session API exists for: many users asking a bounded
/// set of questions about one network. The legacy side re-plans (tree,
/// shortcut, ρ flood) *and* re-simulates every call; the session side
/// builds one plan and serves repeats from its deterministic result memo.
/// Outputs are asserted identical pairwise on every row — reuse must never
/// change results.
///
/// The timing columns are machine-dependent, so E14 (like E13) is
/// **excluded from the golden-CSV regression gate**; its rows also feed the
/// `plan_reuse` section of `BENCH_pr.json`.
// The baseline half of the measurement builds a fresh one-shot session per
// query — the re-planning cost the session API amortizes away (what the
// removed legacy free functions did on every call).
pub fn e14_plan_reuse(full: bool) -> Table {
    let (n, seg) = if full { (192, 16) } else { (96, 8) };
    let (wg, parts) = workloads::heavy_hub_wheel(n, seg, 64, 4096);
    let g = wg.graph();
    let budget = parts.len() + 2;
    let cfg = config(g.n());
    let eps = 0.5;
    let values_for = |i: usize| -> Vec<u64> {
        (0..g.n() as u64)
            .map(|v| (v * 31 + i as u64 * 17) % 4096)
            .collect()
    };
    let mut rows = Vec::new();
    for &queries in &[1usize, 8, 64] {
        // Baseline: every query builds a fresh session — the plan (tree,
        // shortcut, ρ flood for SSSP) is recomputed call after call, and
        // every repeat re-simulates.
        let fresh_session = || {
            Solver::builder(&wg)
                .parts(PartsStrategy::Explicit(parts.clone()))
                .shortcut_builder(SteinerBuilder)
                .config(cfg)
                .build()
                .expect("session")
        };
        let mut legacy_out: Vec<Vec<u64>> = Vec::new();
        let start = Instant::now();
        for i in 0..queries {
            match i % 4 {
                0 => {
                    let out = fresh_session()
                        .sssp(
                            0,
                            Tier::Shortcut {
                                epsilon: eps,
                                max_phases: budget,
                            },
                        )
                        .expect("fresh sssp");
                    legacy_out.push(out.value.dist);
                }
                1 => {
                    let out = fresh_session().mst().expect("fresh mst");
                    legacy_out.push(out.value.edges.iter().map(|&e| e as u64).collect());
                }
                k => {
                    let agg = fresh_session()
                        .partwise_min(&values_for(k), 32)
                        .expect("fresh partwise");
                    legacy_out.push(agg.value.minima);
                }
            }
        }
        let legacy_secs = start.elapsed().as_secs_f64();
        // Session: one plan, N queries, repeats served from the memo.
        let mut solver_out: Vec<Vec<u64>> = Vec::new();
        let start = Instant::now();
        let mut session = Solver::builder(&wg)
            .parts(PartsStrategy::Explicit(parts.clone()))
            .shortcut_builder(SteinerBuilder)
            .config(cfg)
            .build()
            .expect("session");
        for i in 0..queries {
            match i % 4 {
                0 => {
                    let out = session
                        .sssp(
                            0,
                            Tier::Shortcut {
                                epsilon: eps,
                                max_phases: budget,
                            },
                        )
                        .expect("session sssp");
                    solver_out.push(out.value.dist);
                }
                1 => {
                    let out = session.mst().expect("session mst");
                    solver_out.push(out.value.edges.iter().map(|&e| e as u64).collect());
                }
                k => {
                    let agg = session
                        .partwise_min(&values_for(k), 32)
                        .expect("session partwise");
                    solver_out.push(agg.value.minima);
                }
            }
        }
        let solver_secs = start.elapsed().as_secs_f64().max(1e-9);
        let agree = legacy_out == solver_out;
        assert!(agree, "plan reuse must not change results (N={queries})");
        rows.push(vec![
            format!("wheel({n},{seg})"),
            queries.to_string(),
            format!("{:.1}", legacy_secs * 1e3),
            format!("{:.1}", solver_secs * 1e3),
            format!("{:.2}", legacy_secs / solver_secs),
            if agree { "yes" } else { "no" }.to_string(),
        ]);
    }
    Table {
        id: "E14",
        title: "Plan reuse: 1 session serving N mixed queries vs N independent legacy calls".into(),
        headers: [
            "workload",
            "queries",
            "legacy ms",
            "solver ms",
            "speedup",
            "agree",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// A `rounds`-round broadcast storm: every node broadcasts every round
/// until its budget runs out. Exercises the engine's full per-round
/// node/message machinery with a *predictable* round count, so E15 can
/// measure rounds/sec on million-node graphs without waiting for a
/// diameter-long flood to quiesce.
#[derive(Debug, Clone)]
struct BoundedStorm {
    rounds_left: usize,
}

impl minex_congest::NodeProgram for BoundedStorm {
    type Msg = u32;
    fn on_round(&mut self, ctx: &mut minex_congest::Ctx<'_, Self::Msg>) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.broadcast(ctx.node() as u32 & 0xFFFF);
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Peak resident set size in megabytes (`VmHWM`), or `None` off Linux.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Best-effort reset of the `VmHWM` high-water mark (Linux: writing `5` to
/// `/proc/self/clear_refs`), so each E15 row's "peak rss" reflects *that
/// row's* build + measurement instead of the whole sweep's monotone
/// maximum. Failure is fine — the column then degrades to the process-wide
/// high-water mark.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// How many back-to-back sweeps to run inside one timed block so the
/// measurement is not sub-millisecond noise: aim for ~4M adjacency entries
/// per block.
fn sweep_iters(m: usize) -> usize {
    (4_000_000 / (2 * m).max(1)).max(1)
}

/// Times full neighbor-iteration sweeps — every node's neighbor ids
/// accumulated in node-id order, exactly the per-round walk the CONGEST
/// engine's node loop performs — and returns the best seconds per sweep.
/// The accumulator is `u32` so the packed CSR rows can vectorize; the
/// nested-Vec baseline's strided `(usize, usize)` pairs cannot, which *is*
/// the layout advantage being measured. Inputs pass through
/// [`std::hint::black_box`] every repetition so the optimizer can neither
/// hoist the sweep out of the timing loop nor dead-code it.
fn sweep_csr(g: &Graph, reps: usize) -> f64 {
    let iters = sweep_iters(g.m());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            let g = std::hint::black_box(g);
            let mut acc = 0u32;
            for v in g.nodes() {
                for &w in g.neighbor_targets(v) {
                    acc = acc.wrapping_add(w);
                }
            }
            std::hint::black_box(acc);
        }
        let per_sweep = start.elapsed().as_secs_f64().max(1e-9) / iters as f64;
        best = best.min(per_sweep);
    }
    best
}

/// Measured speedup of the CSR neighbor-iteration sweep over the same
/// sweep on a freshly materialized nested-Vec copy of `g` (best-of-`reps`
/// each). This is E15's "iter x" column as a reusable primitive, exported
/// so the tier-2 scale test can assert the ≥2× acceptance bar directly on
/// the million-node instance it has already built.
pub fn neighbor_sweep_speedup(g: &Graph, reps: usize) -> f64 {
    let csr = sweep_csr(g, reps);
    let r = minex_graphs::reference::AdjListGraph::from(g);
    sweep_reference(&r, reps) / csr
}

/// The same node-id-order sweep over the nested-Vec reference.
fn sweep_reference(r: &minex_graphs::reference::AdjListGraph, reps: usize) -> f64 {
    let iters = sweep_iters(r.m());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            let r = std::hint::black_box(r);
            let mut acc = 0u32;
            for v in 0..r.n() {
                for (w, _) in r.neighbors(v) {
                    acc = acc.wrapping_add(w as u32);
                }
            }
            std::hint::black_box(acc);
        }
        let per_sweep = start.elapsed().as_secs_f64().max(1e-9) / iters as f64;
        best = best.min(per_sweep);
    }
    best
}

/// Untimed cross-representation consistency check: the full
/// `(neighbor, edge id)` stream must be identical on both sides.
fn sweep_checksum_csr(g: &Graph) -> u64 {
    let mut acc = 0u64;
    for v in g.nodes() {
        for (&w, &e) in g.neighbor_targets(v).iter().zip(g.neighbor_edge_ids(v)) {
            acc = acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(w as u64 ^ (e as u64) << 32);
        }
    }
    acc
}

/// Reference-side counterpart of [`sweep_checksum_csr`].
fn sweep_checksum_reference(r: &minex_graphs::reference::AdjListGraph) -> u64 {
    let mut acc = 0u64;
    for v in 0..r.n() {
        for (w, e) in r.neighbors(v) {
            acc = acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(w as u64 ^ (e as u64) << 32);
        }
    }
    acc
}

/// E15 — graph-core scale: the CSR representation against the pre-CSR
/// nested-Vec baseline ([`minex_graphs::reference`]) on the two families
/// the scale roadmap names, planar triangulated grids and k-trees, with
/// `n` growing toward `10⁶` (`--full` includes the million-node rows).
///
/// Per row: generator build time (streamed straight into CSR), exact heap
/// bytes per edge of both representations, a full neighbor-iteration sweep
/// on each (the microbench behind the "≥ 2× faster" acceptance bar), the
/// engine's measured rounds/sec driving a bounded broadcast storm over the
/// CSR graph, and the process's peak RSS.
///
/// Wall-clock columns are machine-dependent, so E15 is **excluded from the
/// golden-CSV gate** (like E13/E14); its rows also feed the `scale`
/// section of `BENCH_pr.json`.
pub fn e15_scale(full: bool) -> Table {
    let storm_rounds = 12usize;
    let reps = 3usize;
    let mut rows = Vec::new();
    // The largest quick-mode instances are sized so the nested-Vec
    // baseline (~56 B/edge) spills out of L3 while the CSR graph
    // (~25 B/edge) stays closer to cache — the regime the graph core is
    // built for; `--full` extends both families to a million nodes.
    let sides: &[usize] = if full {
        &[100, 316, 640, 1000]
    } else {
        &[100, 316, 640]
    };
    let kns: &[usize] = if full {
        &[10_000, 100_000, 400_000, 1_000_000]
    } else {
        &[10_000, 100_000, 400_000]
    };
    // Each case is built, measured, and dropped before the next starts —
    // the sweep's real peak memory is one graph plus its transient
    // baseline, matching the streaming-constructor story, and the per-row
    // RSS column (high-water mark reset at row start) describes that row.
    type CaseBuilder = Box<dyn Fn() -> Graph>;
    let mut cases: Vec<(String, CaseBuilder)> = Vec::new();
    for &side in sides {
        cases.push((
            format!("tri-grid {side}x{side}"),
            Box::new(move || generators::triangulated_grid(side, side)),
        ));
    }
    for &kn in kns {
        cases.push((
            format!("k-tree({kn},3)"),
            Box::new(move || {
                let mut rng = StdRng::seed_from_u64(15);
                generators::k_tree(kn, 3, &mut rng).0
            }),
        ));
    }
    for (family, build) in cases {
        reset_peak_rss();
        let start = Instant::now();
        let g = build();
        let build_secs = start.elapsed().as_secs_f64();
        let (n, m) = (g.n(), g.m());
        let csr_bytes = g.heap_bytes() as f64 / m as f64;
        let csr_secs = sweep_csr(&g, reps);
        // Materialize the pre-CSR representation, measure, and drop it
        // before the engine run so the RSS column reflects the CSR graph.
        let (adj_bytes, adj_secs) = {
            let r = minex_graphs::reference::AdjListGraph::from(&g);
            assert_eq!(
                sweep_checksum_csr(&g),
                sweep_checksum_reference(&r),
                "{family}: adjacency streams diverge across representations"
            );
            (r.heap_bytes() as f64 / m as f64, sweep_reference(&r, reps))
        };
        // The baseline is gone; from here the high-water mark tracks the
        // CSR graph plus the engine's own buffers.
        reset_peak_rss();
        let mut programs = vec![
            BoundedStorm {
                rounds_left: storm_rounds,
            };
            n
        ];
        let start = Instant::now();
        let stats = minex_congest::run(&g, &mut programs, config(n)).expect("storm quiesces");
        let engine_secs = start.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(stats.rounds, storm_rounds, "{family}: storm rounds");
        rows.push(vec![
            family,
            n.to_string(),
            m.to_string(),
            format!("{:.1}", build_secs * 1e3),
            format!("{csr_bytes:.1}"),
            format!("{adj_bytes:.1}"),
            format!("{:.2}", adj_bytes / csr_bytes),
            format!("{:.2}", csr_secs * 1e3),
            format!("{:.2}", adj_secs * 1e3),
            format!("{:.2}", adj_secs / csr_secs),
            format!("{:.1}", stats.rounds as f64 / engine_secs / 1e3),
            peak_rss_mb().map_or("-".into(), |mb| format!("{mb:.0}")),
        ]);
    }
    Table {
        id: "E15",
        title: "Graph-core scale: CSR vs nested-Vec baseline toward 10^6 nodes".into(),
        headers: [
            "family",
            "n",
            "m",
            "build ms",
            "csr B/e",
            "adj B/e",
            "mem x",
            "sweep csr ms",
            "sweep adj ms",
            "iter x",
            "krounds/s",
            "peak rss MB",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E16 (dynamic graphs): incremental [`Solver::apply`] repair against a
/// from-scratch session rebuild under single-edge churn.
///
/// Each row takes a family instance with an explicit 64-cell Voronoi
/// partition, materializes a Steiner-builder session plan, then repeatedly
/// deletes and re-inserts one non-tree edge (whose removal provably leaves
/// the BFS tree unchanged, so repair recomputes only the parts the edge
/// touches). The **repair** leg drives the mutation through
/// [`Solver::apply`]; the **rebuild** leg pays what a static deployment
/// pays — a fresh session on the mutated weighted graph plus its plan,
/// including the explicit partition's `O(parts · n)` revalidation and a
/// full shortcut build. A cross-leg oracle asserts the repaired plan's
/// quality equals the rebuilt one's on the mutated graph.
pub fn e16_dynamic_repair(full: bool) -> Table {
    let reps = 3usize;
    let parts_k = 64usize;
    let mut rows = Vec::new();
    // Quick mode covers 10^4 and 10^5 nodes per family; `--full` extends
    // both families to a million nodes for the nightly scale job.
    let sides: &[usize] = if full { &[100, 316, 1000] } else { &[100, 316] };
    let kns: &[usize] = if full {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[10_000, 100_000]
    };
    type CaseBuilder = Box<dyn Fn() -> (WeightedGraph, Partition)>;
    let mut cases: Vec<(String, CaseBuilder)> = Vec::new();
    for &side in sides {
        cases.push((
            format!("maze {side}x{side}"),
            Box::new(move || {
                let mut rng = StdRng::seed_from_u64(16);
                workloads::maze_grid(side, side, parts_k, &mut rng)
            }),
        ));
    }
    for &kn in kns {
        cases.push((
            format!("k-tree({kn},3)"),
            Box::new(move || {
                let mut rng = StdRng::seed_from_u64(16);
                let g = generators::k_tree(kn, 3, &mut rng).0;
                let parts = workloads::voronoi_parts(&g, parts_k, &mut rng);
                let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
                (wg, parts)
            }),
        ));
    }
    for (family, build) in cases {
        let (wg, parts) = build();
        let (n, m) = (wg.graph().n(), wg.graph().m());
        let strategy = PartsStrategy::Explicit(parts.clone());
        let config = CongestConfig::for_nodes(n);
        let mut session = Solver::builder(&wg)
            .parts(strategy.clone())
            .shortcut_builder(SteinerBuilder)
            .config(config)
            .build()
            .expect("valid session");
        session.plan().expect("family instances are connected");
        // The churn target: the first non-tree edge. Deleting it cannot
        // change BFS discovery (both endpoints are found through other
        // edges first), so the repaired tree is the old tree and the
        // dirty region is exactly the parts the edge touches.
        let (e, u, v) = {
            let tree = session.plan().expect("plan cached").tree();
            wg.graph()
                .edges()
                .find(|&(e, _, _)| !tree.is_tree_edge(e))
                .expect("every family instance has a cycle")
        };
        let weight = wg.weight(e);
        // The rebuild leg's input, prepared outside the clock: the session
        // graph minus the churned edge (surviving ids keep their order, so
        // the weight vector just drops slot `e`).
        let deleted = {
            let edges: Vec<(NodeId, NodeId)> = wg
                .graph()
                .edges()
                .filter(|&(ee, _, _)| ee != e)
                .map(|(_, a, b)| (a, b))
                .collect();
            let weights: Vec<u64> = (0..m)
                .filter(|&ee| ee != e)
                .map(|ee| wg.weight(ee))
                .collect();
            let g = Graph::from_edges(n, edges).expect("still valid");
            WeightedGraph::new(g, weights)
        };
        // Pre-clone the strategies the rebuild leg consumes, so the clock
        // measures session construction, not `Partition` copying.
        let mut strategies: Vec<PartsStrategy> = (0..2 * reps).map(|_| strategy.clone()).collect();

        let mut repair_secs = 0.0;
        let mut dirty_parts = 0usize;
        for _ in 0..reps {
            let start = Instant::now();
            let del = session
                .apply(&[EdgeMutation::Delete { u, v }])
                .expect("valid delete");
            session.plan().expect("still connected");
            let ins = session
                .apply(&[EdgeMutation::Insert { u, v, weight }])
                .expect("valid insert");
            session.plan().expect("still connected");
            repair_secs += start.elapsed().as_secs_f64() / 2.0;
            assert!(
                del.plan_repaired && ins.plan_repaired,
                "{family}: plan must repair"
            );
            assert!(
                !del.plan.full_rebuild && !ins.plan.full_rebuild,
                "{family}: steiner repair must stay incremental"
            );
            dirty_parts = del.plan.parts_rebuilt.max(ins.plan.parts_rebuilt);
        }

        let mut rebuild_secs = 0.0;
        let mut rebuilt_quality = 0usize;
        for _ in 0..reps {
            let start = Instant::now();
            let mut after_delete = Solver::builder(&deleted)
                .parts(strategies.pop().expect("pre-cloned"))
                .shortcut_builder(SteinerBuilder)
                .config(config)
                .build()
                .expect("valid session");
            after_delete.plan().expect("still connected");
            let mut after_reinsert = Solver::builder(&wg)
                .parts(strategies.pop().expect("pre-cloned"))
                .shortcut_builder(SteinerBuilder)
                .config(config)
                .build()
                .expect("valid session");
            after_reinsert.plan().expect("still connected");
            rebuild_secs += start.elapsed().as_secs_f64() / 2.0;
            rebuilt_quality = after_delete.plan().expect("cached").quality().quality;
        }
        // Cross-leg oracle: repairing onto the deleted graph must land on
        // the same measured quality the from-scratch rebuild reports.
        session
            .apply(&[EdgeMutation::Delete { u, v }])
            .expect("valid delete");
        assert_eq!(
            session.plan().expect("still connected").quality().quality,
            rebuilt_quality,
            "{family}: repaired plan diverges from a fresh rebuild"
        );
        session
            .apply(&[EdgeMutation::Insert { u, v, weight }])
            .expect("valid insert");

        let repair_ms = repair_secs / reps as f64 * 1e3;
        let rebuild_ms = rebuild_secs / reps as f64 * 1e3;
        rows.push(vec![
            family,
            n.to_string(),
            m.to_string(),
            parts.len().to_string(),
            format!("{repair_ms:.2}"),
            format!("{rebuild_ms:.2}"),
            format!("{:.2}", rebuild_ms / repair_ms.max(1e-9)),
            dirty_parts.to_string(),
        ]);
    }
    Table {
        id: "E16",
        title: "Dynamic repair: Solver::apply vs from-scratch rebuild under single-edge churn"
            .into(),
        headers: [
            "family",
            "n",
            "m",
            "parts",
            "repair ms",
            "rebuild ms",
            "speedup",
            "parts rebuilt",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// E17 (telemetry) — *observed* max edge congestion of a shortcut-served
/// aggregation against the plan's analytic quality bound, across the
/// generator families (planar tri-grid, treewidth-3 k-tree, maze grid,
/// heavy-hub wheel).
///
/// Each row opens a traced [`Solver`] session, serves one part-wise MIN
/// (the Theorem 1 primitive every payoff algorithm reduces to), and reads
/// the busiest link off the session's [`minex_congest::CongestionProfile`].
/// The analytic
/// side is `QualityReport::edge_congestion_bound`: an edge carries at most
/// two messages per round (one per direction), so `2 · quality·⌈log₂ n⌉`
/// rounds bound its traffic. Every row must satisfy observed ≤ bound —
/// asserted by `e17_observed_congestion_within_analytic_bound` — and the
/// whole table is deterministic, so it joins the engine-equivalence gate
/// (but, like E13–E16, has no golden: the goldens cover E1–E12).
pub fn e17_congestion(full: bool) -> Table {
    let mut cases: Vec<(String, WeightedGraph, Partition, &'static str)> = Vec::new();
    let sides: &[usize] = if full { &[12, 16, 24] } else { &[12, 16] };
    for &side in sides {
        let mut rng = StdRng::seed_from_u64(side as u64);
        let g = generators::triangulated_grid(side, side);
        let parts = workloads::voronoi_parts(&g, side, &mut rng);
        let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
        cases.push((format!("tri-grid {side}x{side}"), wg, parts, "auto"));
    }
    let kns: &[usize] = if full { &[512, 2048] } else { &[512] };
    for &kn in kns {
        let mut rng = StdRng::seed_from_u64(kn as u64);
        let (g, _) = generators::k_tree(kn, 3, &mut rng);
        let parts = workloads::voronoi_parts(&g, (kn as f64).sqrt() as usize, &mut rng);
        let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
        cases.push((format!("k-tree({kn},3)"), wg, parts, "auto"));
    }
    let mazes: &[(usize, usize)] = if full {
        &[(12, 6), (16, 8)]
    } else {
        &[(12, 6)]
    };
    for &(side, k) in mazes {
        let mut rng = StdRng::seed_from_u64(17);
        let (wg, parts) = workloads::maze_grid(side, side, k, &mut rng);
        cases.push((format!("maze {side}x{side}"), wg, parts, "auto"));
    }
    let hubs: &[(usize, usize)] = if full {
        &[(192, 16), (256, 16)]
    } else {
        &[(192, 16)]
    };
    for &(n, seg) in hubs {
        let (wg, parts) = workloads::heavy_hub_wheel(n, seg, 64, 8192);
        cases.push((format!("wheel({n},{seg})"), wg, parts, "steiner"));
    }
    let mut rows = Vec::new();
    for (family, wg, parts, builder) in cases {
        let (n, m, n_parts) = (wg.graph().n(), wg.graph().m(), parts.len());
        let builder: Box<dyn ShortcutBuilder + Send> = match builder {
            "steiner" => Box::new(SteinerBuilder),
            _ => Box::new(AutoCappedBuilder),
        };
        let mut session = Solver::builder(&wg)
            .parts(PartsStrategy::Explicit(parts))
            .shortcut_builder(builder)
            .config(config(n))
            .trace(true)
            .build()
            .expect("session");
        let q = session.plan().expect("connected").quality().clone();
        let values: Vec<u64> = (0..n as u64).rev().collect();
        let agg = session.partwise_min(&values, 32).expect("aggregation");
        let trace = session.take_trace().expect("tracing is on");
        let observed = trace.profile.max_edge_messages();
        let budget = q.round_budget(n);
        let bound = q.edge_congestion_bound(n);
        rows.push(vec![
            family,
            n.to_string(),
            m.to_string(),
            n_parts.to_string(),
            q.quality.to_string(),
            agg.stats.simulated_rounds.to_string(),
            budget.to_string(),
            observed.to_string(),
            bound.to_string(),
            format!("{:.3}", observed as f64 / bound.max(1) as f64),
        ]);
    }
    Table {
        id: "E17",
        title: "Observed max edge congestion vs the analytic bound (2·quality·⌈log₂ n⌉)".into(),
        headers: [
            "family",
            "n",
            "m",
            "parts",
            "quality",
            "agg rounds",
            "round budget",
            "max edge msgs",
            "bound",
            "obs/bound",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// **E18 — Solver-as-a-service throughput.** Aggregate queries/sec against
/// an in-process `minex-serve` daemon as concurrent clients grow.
///
/// Each client uploads its own distinctly-weighted copy of a triangulated
/// grid, so the fleet fingerprints it into a *separate* session: the
/// per-session query locks never contend and service parallelism is pure
/// cross-session concurrency (bounded by cores — single-core boxes can
/// only pipeline client-side work against server-side work). Every
/// response body is compared byte-for-byte against a single-threaded
/// in-process [`Solver`] running the identical query mix; the `identical`
/// column (asserted here, unconditionally) is the serving determinism
/// contract.
pub fn e18_serve(full: bool) -> Table {
    use minex_algo::wire::{obj, JsonValue, ToWire};
    use minex_serve::{start, Client, CreateSession, ServerConfig};
    use std::sync::Arc;

    let (side, queries) = if full { (8usize, 48usize) } else { (5, 16) };
    let client_counts: &[usize] = if full { &[1, 2, 4, 8] } else { &[1, 2, 8] };
    let grid_for = |seed: u64| -> Arc<WeightedGraph> {
        let g = generators::triangulated_grid(side, side);
        let weights: Vec<u64> = (0..g.m() as u64)
            .map(|e| 1 + (e.wrapping_mul(2654435761) ^ seed) % 4096)
            .collect();
        Arc::new(WeightedGraph::new(g, weights))
    };
    let mix_query = |kind: usize, n: usize| -> minex_algo::wire::JsonValue {
        match kind {
            0 => obj([("query", JsonValue::Str("mst".into()))]),
            1 => obj([("query", JsonValue::Str("components".into()))]),
            _ => obj([
                ("query", JsonValue::Str("partwise_min".into())),
                (
                    "values",
                    JsonValue::Array((0..n as u64).map(JsonValue::UInt).collect()),
                ),
                ("value_bits", JsonValue::UInt(32)),
            ]),
        }
    };
    // The reference: the same mix on a single-threaded owned solver,
    // reports rendered to their exact wire bodies.
    let reference = |wg: &Arc<WeightedGraph>| -> Vec<String> {
        let n = wg.graph().n();
        let mut solver = Solver::from_arc(Arc::clone(wg))
            .parts(PartsStrategy::Singletons)
            .shortcut_builder(AutoCappedBuilder)
            .config(CongestConfig::for_nodes(n).with_threads(1))
            .build()
            .expect("reference solver");
        let values: Vec<u64> = (0..n as u64).collect();
        (0..queries)
            .map(|i| match i % 3 {
                0 => solver.mst().expect("mst").to_wire().to_string(),
                1 => solver
                    .components()
                    .expect("components")
                    .to_wire()
                    .to_string(),
                _ => solver
                    .partwise_min(&values, 32)
                    .expect("partwise")
                    .to_wire()
                    .to_string(),
            })
            .collect()
    };

    let mut rows = Vec::new();
    let mut base_qps = 0.0f64;
    for &clients in client_counts {
        let expected: Vec<Vec<String>> = (0..clients)
            .map(|c| reference(&grid_for(c as u64 + 1)))
            .collect();
        let server = start(ServerConfig::default()).expect("bind");
        let addr = server.addr();
        let started = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let wg = grid_for(c as u64 + 1);
                std::thread::spawn(move || -> Vec<String> {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut req = CreateSession::from_weighted(&wg);
                    req.threads = Some(1);
                    let session = client.create_session(&req).expect("create session");
                    let n = wg.graph().n();
                    (0..queries)
                        .map(|i| {
                            client
                                .query(&session, &mix_query(i % 3, n))
                                .expect("query")
                                .to_string()
                        })
                        .collect()
                })
            })
            .collect();
        let got: Vec<Vec<String>> = workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect();
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        server.shutdown();
        let identical = got == expected;
        assert!(
            identical,
            "served reports must be byte-identical to the in-process solver ({clients} clients)"
        );
        let qps = (clients * queries) as f64 / elapsed;
        if clients == 1 {
            base_qps = qps;
        }
        rows.push(vec![
            format!("grid({side},{side})"),
            clients.to_string(),
            (clients * queries).to_string(),
            format!("{:.1}", elapsed * 1e3),
            format!("{qps:.1}"),
            format!("{:.2}", qps / base_qps.max(1e-9)),
            if identical { "yes" } else { "no" }.to_string(),
        ]);
    }
    Table {
        id: "E18",
        title: "Solver-as-a-service: aggregate queries/sec vs concurrent clients (one session per client)".into(),
        headers: [
            "workload",
            "clients",
            "queries",
            "elapsed ms",
            "qps",
            "speedup",
            "identical",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

/// The deterministic traced session behind `experiments --trace` (and the
/// `MINEX_TRACE` env var): a fixed 8×8 tri-grid workload serving an MST
/// (twice — the repeat is a memo hit), a part-wise MIN, and an exact SSSP,
/// exported as JSON Lines via `SessionTrace::to_jsonl`.
///
/// The output is byte-identical across the sequential and parallel engines
/// and any `MINEX_THREADS` setting — the CI telemetry step `cmp`s the
/// files from two thread counts, and `trace_jsonl_is_engine_independent`
/// asserts the same in-process.
pub fn trace_session_jsonl() -> String {
    let g = generators::triangulated_grid(8, 8);
    let mut rng = StdRng::seed_from_u64(17);
    let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
    let parts = workloads::voronoi_parts(&g, 4, &mut rng);
    let mut session = Solver::builder(&wg)
        .parts(PartsStrategy::Explicit(parts))
        .shortcut_builder(SteinerBuilder)
        .config(config(g.n()))
        .trace(true)
        .build()
        .expect("session");
    session.mst().expect("mst");
    session.mst().expect("memo-served mst");
    let values: Vec<u64> = (0..g.n() as u64).collect();
    session.partwise_min(&values, 32).expect("aggregation");
    session.sssp(0, Tier::Exact).expect("exact sssp");
    session.take_trace().expect("tracing is on").to_jsonl()
}

/// Best-of-`reps` wall milliseconds of the dispatching entry point
/// ([`minex_congest::run`], which checks the telemetry slot once and
/// monomorphizes to the `NoopSink` loop) versus calling
/// [`minex_congest::run_with_sink`] with `NoopSink` directly, driving the
/// E15-style bounded broadcast storm on a 48×48 tri-grid.
///
/// Returns `(run_ms, direct_ms)`. The `<2%` overhead *assertion* lives in
/// `minex-congest`'s `sink_overhead` test (with the usual timing-assert
/// escape hatches); this sampler only records the figures, for the
/// `telemetry` section of `BENCH_pr.json`.
pub fn sink_overhead_ms(reps: usize) -> (f64, f64) {
    let g = generators::triangulated_grid(48, 48);
    let cfg = config(g.n());
    let best = |f: &mut dyn FnMut(&mut Vec<BoundedStorm>) -> minex_congest::RunStats| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut programs = vec![BoundedStorm { rounds_left: 24 }; g.n()];
            let start = Instant::now();
            let stats = f(&mut programs);
            best = best.min(start.elapsed().as_secs_f64().max(1e-9));
            assert_eq!(stats.rounds, 24, "storm must quiesce on schedule");
        }
        best * 1e3
    };
    let run_ms = best(&mut |p| minex_congest::run(&g, p, cfg).expect("storm"));
    let direct_ms = best(&mut |p| {
        minex_congest::run_with_sink(&g, p, cfg, &mut minex_congest::NoopSink).expect("storm")
    });
    (run_ms, direct_ms)
}

/// An experiment runner: `full` selects the larger parameter sweep.
pub type ExperimentFn = fn(bool) -> Table;

/// Experiments whose columns are wall-clock measurements (machine
/// dependent): excluded from the golden-CSV gate and from determinism
/// comparisons. The single source of truth for "which tables are timing".
pub const TIMING_EXPERIMENTS: &[&str] = &["E13", "E14", "E15", "E16", "E18"];

/// The experiment registry: `(id, runner)` pairs, lazily invocable.
pub fn experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("E1", e1_planar_quality as ExperimentFn),
        ("E2", e2_treewidth),
        ("E3", e3_clique_sum),
        ("E4", e4_genus_vortex),
        ("E5", e5_apex),
        ("E6", e6_mst_rounds),
        ("E7", e7_lower_bound),
        ("E8", e8_aggregation),
        ("E9", e9_mincut),
        ("E10", e10_folding_ablation),
        ("E11", e11_sssp_rounds),
        ("E12", e12_sssp_quality),
        ("E13", e13_engine_scaling),
        ("E14", e14_plan_reuse),
        ("E15", e15_scale),
        ("E16", e16_dynamic_repair),
        ("E17", e17_congestion),
        ("E18", e18_serve),
    ]
}

/// Runs every experiment; `full` selects the larger sweeps.
pub fn run_all(full: bool) -> Vec<Table> {
    experiments().into_iter().map(|(_, f)| f(full)).collect()
}

/// Runs only the deterministic experiments — everything except
/// [`TIMING_EXPERIMENTS`] — whose tables must be byte-identical across
/// runs and engines. This is what the engine-equivalence suite compares.
pub fn run_deterministic(full: bool) -> Vec<Table> {
    experiments()
        .into_iter()
        .filter(|(id, _)| !TIMING_EXPERIMENTS.contains(id))
        .map(|(_, f)| f(full))
        .collect()
}

/// The shortcut-free builder, re-exported for the bench binaries.
pub fn naive_builder() -> NoShortcutBuilder {
    NoShortcutBuilder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t = Table {
            id: "E0",
            title: "demo".into(),
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let s = t.render();
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    fn quick_experiments_smoke() {
        assert!(!e1_planar_quality(false).rows.is_empty());
        assert!(!e10_folding_ablation(false).rows.is_empty());
    }

    #[test]
    fn csv_rendering_escapes() {
        let t = Table {
            id: "E0",
            title: "demo".into(),
            headers: vec!["a".into(), "b,c".into()],
            rows: vec![vec!["plain".into(), "says \"hi\", twice".into()]],
        };
        let csv = t.to_csv();
        assert_eq!(csv, "a,\"b,c\"\nplain,\"says \"\"hi\"\", twice\"\n");
    }

    #[test]
    fn e14_plan_reuse_beats_legacy_for_batched_queries() {
        // The acceptance bar: plan-once/query-many must beat N independent
        // legacy calls on wall time for N ≥ 8. The solver side does a
        // strict subset of the legacy side's work (same simulations, no
        // rebuilt trees/shortcuts/ρ floods), so losing requires scheduler
        // noise to pinch the solver's timing window specifically — rare but
        // possible on a loaded box, hence one retry before declaring a
        // regression real. Output agreement is asserted unconditionally.
        // `MINEX_SKIP_TIMING_ASSERTS=1` keeps only the output-agreement
        // checks, for pathologically loaded or heavily virtualized boxes.
        let timing_asserts = std::env::var_os("MINEX_SKIP_TIMING_ASSERTS").is_none();
        let attempt = || {
            let t = e14_plan_reuse(false);
            assert_eq!(t.rows.len(), 3);
            t.rows.iter().all(|row| {
                let queries: usize = row[1].parse().unwrap();
                let speedup: f64 = row[4].parse().unwrap();
                assert_eq!(row[5], "yes", "outputs must agree (N={queries})");
                !timing_asserts || queries < 8 || speedup > 1.0
            })
        };
        assert!(
            attempt() || attempt() || attempt(),
            "plan reuse slower than N>=8 independent legacy calls in three consecutive runs"
        );
    }

    #[test]
    fn e18_serving_is_deterministic_and_scales_across_sessions() {
        // Byte-identical served reports are asserted inside `e18_serve`
        // unconditionally — that is the serving determinism contract. The
        // throughput bar (≥2× aggregate qps at 8 clients vs 1) measures
        // cross-session parallelism, which needs real cores and an
        // optimized build: a single-core box can only overlap client-side
        // parse/build work with server-side service, so like E14/E15 the
        // wall-clock assertion gets the `MINEX_SKIP_TIMING_ASSERTS`
        // escape hatch, a debug-build skip, a core-count gate, and
        // retries against scheduler noise.
        let timing_asserts = std::env::var_os("MINEX_SKIP_TIMING_ASSERTS").is_none()
            && !cfg!(debug_assertions)
            && std::thread::available_parallelism().is_ok_and(|p| p.get() >= 4);
        let attempt = || {
            let t = e18_serve(false);
            for row in &t.rows {
                assert_eq!(
                    row[6], "yes",
                    "served reports diverged ({} clients)",
                    row[1]
                );
            }
            let row8 = t.rows.iter().find(|r| r[1] == "8").expect("8-client row");
            let speedup: f64 = row8[5].parse().unwrap();
            !timing_asserts || speedup >= 2.0
        };
        assert!(
            attempt() || attempt() || attempt(),
            "8 concurrent clients never reached 2x the 1-client qps in three runs"
        );
    }

    #[test]
    fn e15_csr_beats_nested_vec_baseline() {
        // The graph-core acceptance bars. Memory is deterministic
        // arithmetic over exact heap sizes, so it is always asserted: CSR
        // must cost ≤ 26 bytes/edge (≈24 + the offsets term) and at least
        // halve the nested-Vec baseline. The iteration speedup is
        // wall-clock and can be pinched by a loaded box, so like E14 it
        // gets retries and the `MINEX_SKIP_TIMING_ASSERTS` escape hatch —
        // and it is only meaningful on optimized builds (the CSR advantage
        // is partly auto-vectorization, which debug builds do not
        // perform). When timing is out of scope there is no reason to pay
        // for the full sweep either: the memory bars hold identically on
        // tiny instances, so that path stays in the per-push CI budget.
        let timing_asserts =
            std::env::var_os("MINEX_SKIP_TIMING_ASSERTS").is_none() && !cfg!(debug_assertions);
        if !timing_asserts {
            let mut rng = StdRng::seed_from_u64(15);
            for g in [
                generators::triangulated_grid(32, 32),
                generators::k_tree(2048, 3, &mut rng).0,
            ] {
                let csr_bytes = g.heap_bytes() as f64 / g.m() as f64;
                let r = minex_graphs::reference::AdjListGraph::from(&g);
                let mem_ratio = r.heap_bytes() as f64 / g.heap_bytes() as f64;
                assert!(csr_bytes <= 26.0, "{csr_bytes} B/edge");
                assert!(mem_ratio >= 2.0, "mem ratio {mem_ratio}");
            }
            return;
        }
        let attempt = || {
            let t = e15_scale(false);
            assert_eq!(t.rows.len(), 6);
            for row in &t.rows {
                let csr_bytes: f64 = row[4].parse().unwrap();
                let mem_ratio: f64 = row[6].parse().unwrap();
                assert!(csr_bytes <= 26.0, "{}: {csr_bytes} B/edge", row[0]);
                assert!(mem_ratio >= 2.0, "{}: mem ratio {mem_ratio}", row[0]);
            }
            // Iteration floors for the quick-mode rows. The authoritative
            // ≥2× acceptance bar is asserted on the *million-node*
            // instance (where the baseline is fully out of cache: ~3.6×
            // mesh, ~2.2× k-tree) by the tier-2 scale test via
            // [`neighbor_sweep_speedup`]; the largest quick rows sit right
            // at the cache boundary and get conservative floors instead,
            // small cache-resident rows only parity.
            t.rows.iter().all(|row| {
                let n: usize = row[1].parse().unwrap();
                let mesh = row[0].starts_with("tri-grid");
                let iter_speedup: f64 = row[9].parse().unwrap();
                let bar = match (mesh, n) {
                    (true, 400_000..) => 1.5,
                    (false, 400_000..) => 1.3,
                    _ => 1.0,
                };
                iter_speedup >= bar
            })
        };
        assert!(
            attempt() || attempt() || attempt(),
            "CSR neighbor sweep under 2x the nested-Vec baseline in three consecutive runs"
        );
    }

    #[test]
    fn e16_repair_beats_rebuild() {
        // The dynamic-graph acceptance bar: incremental repair must beat a
        // from-scratch session rebuild under single-edge churn *where the
        // rebuild is actually expensive* — the maze family, whose Voronoi
        // cells carry deep Steiner trees and whose explicit partition costs
        // `O(parts·n)` to revalidate from scratch. On low-diameter k-trees
        // a full build is already near-linear, so both legs degenerate to
        // the same `O(n + m)` traversal passes and the honest expectation
        // is parity, not a win — those rows get a catastrophe floor, not a
        // speedup bar. Like E14 and E15, the timing legs get retries, the
        // `MINEX_SKIP_TIMING_ASSERTS` escape hatch, and a debug-build
        // bypass (the rebuild leg's advantage is partly allocator and
        // memset throughput, which debug builds distort). The correctness
        // oracle — repaired quality equals rebuilt quality — is asserted
        // inside `e16_dynamic_repair` itself on every run; the skip path
        // still exercises it on a small instance.
        let timing_asserts =
            std::env::var_os("MINEX_SKIP_TIMING_ASSERTS").is_none() && !cfg!(debug_assertions);
        if !timing_asserts {
            // Small correctness-only pass: a 20x20 maze through the same
            // repair/rebuild/oracle loop, ignoring the clock.
            let mut rng = StdRng::seed_from_u64(16);
            let (wg, parts) = workloads::maze_grid(20, 20, 8, &mut rng);
            let mut session = Solver::builder(&wg)
                .parts(PartsStrategy::Explicit(parts))
                .shortcut_builder(SteinerBuilder)
                .build()
                .unwrap();
            let q0 = session.plan().unwrap().quality().quality;
            let (_, u, v) = {
                let tree = session.plan().unwrap().tree();
                wg.graph()
                    .edges()
                    .find(|&(e, _, _)| !tree.is_tree_edge(e))
                    .unwrap()
            };
            let del = session.apply(&[EdgeMutation::Delete { u, v }]).unwrap();
            assert!(del.plan_repaired && !del.plan.full_rebuild);
            let ins = session
                .apply(&[EdgeMutation::Insert { u, v, weight: 64 }])
                .unwrap();
            assert!(ins.plan_repaired);
            assert_eq!(session.plan().unwrap().quality().quality, q0);
            return;
        }
        let attempt = || {
            let t = e16_dynamic_repair(false);
            assert_eq!(t.rows.len(), 4);
            t.rows.iter().all(|row| {
                let speedup: f64 = row[6].parse().unwrap();
                let parts_total: usize = row[3].parse().unwrap();
                let dirty: usize = row[7].parse().unwrap();
                assert!(
                    dirty < parts_total,
                    "{}: dirty region must be local",
                    row[0]
                );
                if row[0] == "maze 316x316" {
                    // The headline claim at 1e5 nodes: a clear win.
                    speedup > 1.0
                } else {
                    // Small instances and k-trees: parity is expected;
                    // only a catastrophic repair regression fails.
                    speedup > 0.4
                }
            })
        };
        assert!(
            attempt() || attempt() || attempt(),
            "incremental repair slower than a full rebuild in three consecutive runs"
        );
    }

    #[test]
    #[ignore = "tier-2 scale gate: run with --release on the nightly scale job"]
    fn e16_repair_at_most_half_rebuild_cost_at_1e5() {
        // The PR-6 acceptance bar, pinned on the 10^5-node maze row:
        // single-edge repair must cost at most 0.5x a from-scratch rebuild
        // (i.e. be >= 2x cheaper). Asserted with retries; the nightly scale
        // job treats a third consecutive miss as a regression.
        let attempt = || {
            let t = e16_dynamic_repair(false);
            let row = t
                .rows
                .iter()
                .find(|row| row[0] == "maze 316x316")
                .expect("the 1e5-node maze row exists");
            let repair: f64 = row[4].parse().unwrap();
            let rebuild: f64 = row[5].parse().unwrap();
            repair <= 0.5 * rebuild
        };
        assert!(
            attempt() || attempt() || attempt(),
            "repair cost above half the rebuild cost at 1e5 nodes in three consecutive runs"
        );
    }

    #[test]
    fn e17_observed_congestion_within_analytic_bound() {
        // The acceptance bar: the busiest link a traced session actually
        // observed never exceeds the plan's analytic congestion bound, on
        // every row of every registered family. Also pins the chain the
        // bound is derived through: observed ≤ 2·rounds (one message per
        // direction per round) and rounds ≤ the round budget.
        let t = e17_congestion(false);
        assert_eq!(t.rows.len(), 5, "quick mode covers all four families");
        for row in &t.rows {
            let rounds: usize = row[5].parse().unwrap();
            let budget: usize = row[6].parse().unwrap();
            let observed: usize = row[7].parse().unwrap();
            let bound: usize = row[8].parse().unwrap();
            assert!(observed >= 1, "{}: the aggregation sent traffic", row[0]);
            assert!(observed <= 2 * rounds, "{}: per-round edge cap", row[0]);
            assert!(
                rounds <= budget,
                "{}: {rounds} rounds > budget {budget}",
                row[0]
            );
            assert!(
                observed <= bound,
                "{}: observed {observed} > bound {bound}",
                row[0]
            );
        }
    }

    #[test]
    fn e17_and_trace_export_are_engine_independent() {
        // The determinism contract at the bench surface: the E17 table and
        // the `--trace` JSONL export are byte-identical across the
        // sequential and 4-thread engines (the CI telemetry step repeats
        // the JSONL comparison across MINEX_THREADS processes).
        let seq = with_engine_threads(1, || e17_congestion(false).to_csv());
        let par = with_engine_threads(4, || e17_congestion(false).to_csv());
        assert_eq!(seq, par, "E17 diverges across engines");
        let seq = with_engine_threads(1, trace_session_jsonl);
        let par = with_engine_threads(4, trace_session_jsonl);
        assert_eq!(seq, par, "trace export diverges across engines");
        assert!(seq.lines().all(|l| l.starts_with("{\"type\":\"")));
        assert!(seq.starts_with("{\"type\":\"counters\""));
        assert!(seq
            .lines()
            .last()
            .unwrap()
            .starts_with("{\"type\":\"summary\""));
        // The fixed workload exercises the memo path: 4 queries, 1 hit.
        assert!(seq.contains("\"queries\":4,\"memo_hits\":1,\"memo_misses\":3"));
    }

    #[test]
    fn e11_shortcut_tier_beats_baseline_on_hub_families() {
        let t = e11_sssp_rounds(false);
        assert_eq!(t.headers.len(), 10);
        for row in &t.rows {
            let family = &row[0];
            let bf: usize = row[3].parse().unwrap();
            let shortcut: usize = row[6].parse().unwrap();
            let stretch: f64 = row[7].parse().unwrap();
            assert!(stretch >= 1.0);
            if family.starts_with("wheel") || family.starts_with("fan") {
                assert!(shortcut < bf, "{family}: shortcut {shortcut} vs bf {bf}");
                assert!(stretch <= 1.5, "{family}: stretch {stretch}");
            }
        }
    }
}

//! E4 — Genus+Vortex witness decomposition and shortcuts.

use criterion::{criterion_group, criterion_main, Criterion};
use minex_core::construct::{ShortcutBuilder, TreewidthBuilder};
use minex_core::RootedTree;
use minex_decomp::TreeDecomposition;
use minex_graphs::generators;
use minex_graphs::NodeId;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_genus_vortex");
    group.sample_size(10);
    let base = generators::toroidal_grid(6, 12);
    let mut rng = StdRng::seed_from_u64(1);
    let cycle: Vec<NodeId> = (0..12).collect();
    let (g, rec) = generators::add_vortex(&base, &cycle, 4, 2, &mut rng).unwrap();
    let td = TreeDecomposition::of_toroidal_grid(6, 12).reinsert_vortex(&rec, None);
    let tree = RootedTree::bfs(&g, 0);
    let parts = minex_algo::workloads::voronoi_parts(&g, 12, &mut rng);
    group.bench_function("torus_vortex_shortcut", |b| {
        let builder = TreewidthBuilder::new(&td);
        b.iter(|| builder.build(&g, &tree, &parts))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E8 — part-wise aggregation engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::partwise::partwise_min;
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::construct::{ShortcutBuilder, SteinerBuilder};
use minex_core::RootedTree;
use minex_graphs::generators;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_aggregation");
    group.sample_size(10);
    for side in [12usize, 20] {
        let g = generators::triangulated_grid(side, side);
        let tree = RootedTree::bfs(&g, 0);
        let mut rng = StdRng::seed_from_u64(side as u64);
        let parts = workloads::voronoi_parts(&g, side, &mut rng);
        let shortcut = SteinerBuilder.build(&g, &tree, &parts);
        let values: Vec<u64> = (0..g.n() as u64).rev().collect();
        let config = CongestConfig::for_nodes(g.n())
            .with_bandwidth(192)
            .with_max_rounds(1_000_000);
        group.bench_with_input(BenchmarkId::new("grid", side), &side, |b, _| {
            b.iter(|| {
                partwise_min(&g, &parts, &shortcut, &values, 32, config)
                    .unwrap()
                    .stats
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

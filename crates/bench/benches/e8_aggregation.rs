//! E8 — part-wise aggregation engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::solver::{PartsStrategy, Solver};
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::construct::SteinerBuilder;
use minex_graphs::generators;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_aggregation");
    group.sample_size(10);
    for side in [12usize, 20] {
        let g = generators::triangulated_grid(side, side);
        let mut rng = StdRng::seed_from_u64(side as u64);
        let parts = workloads::voronoi_parts(&g, side, &mut rng);
        let config = CongestConfig::for_nodes(g.n())
            .with_bandwidth(192)
            .with_max_rounds(1_000_000);
        // Warm session: the plan is built once; each iteration varies the
        // values, so every query re-runs the aggregation engine.
        let mut session = Solver::for_graph(&g)
            .parts(PartsStrategy::Explicit(parts))
            .shortcut_builder(SteinerBuilder)
            .config(config)
            .build()
            .unwrap();
        let mut round = 0u64;
        group.bench_with_input(BenchmarkId::new("grid", side), &side, |b, _| {
            b.iter(|| {
                round += 1;
                let values: Vec<u64> = (0..g.n() as u64)
                    .map(|v| (v * 7 + round) % 100_003)
                    .collect();
                session
                    .partwise_min(&values, 32)
                    .unwrap()
                    .stats
                    .simulated_rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

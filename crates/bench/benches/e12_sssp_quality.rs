//! E12 — scaled SSSP quality/rounds trade (wall-clock of the simulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::sssp::scaled_sssp;
use minex_algo::workloads;
use minex_congest::CongestConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_sssp_quality");
    group.sample_size(10);
    let (wg, _) = workloads::heavy_hub_wheel(256, 16, 64, 8192);
    let config = CongestConfig::for_nodes(wg.graph().n())
        .with_bandwidth(192)
        .with_max_rounds(1_000_000);
    for eps_pct in [10u64, 50, 100] {
        let eps = eps_pct as f64 / 100.0;
        group.bench_with_input(BenchmarkId::new("wheel256", eps_pct), &eps, |b, &eps| {
            b.iter(|| scaled_sssp(&wg, 0, eps, config).unwrap().simulated_rounds())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E5 — Lemma 9 apex construction and Lemma 7 gates.

use criterion::{criterion_group, criterion_main, Criterion};
use minex_core::cells::CellPartition;
use minex_core::construct::{ApexBuilder, ShortcutBuilder, SteinerBuilder};
use minex_core::gates::planar_gates;
use minex_core::{Partition, RootedTree};
use minex_graphs::generators;
use minex_graphs::{traversal, NodeId};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_apex");
    group.sample_size(10);
    let side = 16;
    let (g, apex) = generators::apex_grid(side, side, 4);
    let tree = RootedTree::bfs(&g, apex);
    let cols: Vec<Vec<NodeId>> = (0..side)
        .map(|cc| (0..side).map(|r| r * side + cc).collect())
        .collect();
    let parts = Partition::new(&g, cols).unwrap();
    group.bench_function("apex_builder", |b| {
        let builder = ApexBuilder::new(vec![apex], SteinerBuilder);
        b.iter(|| builder.build(&g, &tree, &parts))
    });
    let (base, emb) = generators::grid_embedded(side, side);
    let seeds: Vec<NodeId> = (0..base.n()).step_by(side).collect();
    let bfs = traversal::multi_source_bfs(&base, &seeds);
    let mut cell_sets: Vec<Vec<NodeId>> = vec![Vec::new(); seeds.len()];
    for v in 0..base.n() {
        cell_sets[bfs.source_of[v]].push(v);
    }
    cell_sets.retain(|s| !s.is_empty());
    let cells = CellPartition::new(&base, cell_sets);
    group.bench_function("planar_gates", |b| {
        b.iter(|| planar_gates(&base, &emb, &cells).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E13 — engine scaling: wall-clock of one Bellman–Ford workload per family
//! under the sequential and multi-threaded engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::sssp::bellman_ford_sssp;
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_graphs::{generators, WeightModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_engine_scaling");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(13);
    let grid =
        WeightModel::DistinctShuffled.apply(&generators::triangulated_grid(48, 48), &mut rng);
    let (maze, _) = workloads::maze_grid(32, 32, 8, &mut rng);
    for (family, wg) in [("tri_grid_48", &grid), ("maze_32", &maze)] {
        let config = CongestConfig::for_nodes(wg.graph().n())
            .with_bandwidth(192)
            .with_max_rounds(2_000_000);
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(family, threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        bellman_ford_sssp(wg, 0, config.with_threads(threads))
                            .unwrap()
                            .stats
                            .rounds
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E2 — treewidth-witness shortcut construction (Theorem 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_core::construct::{ShortcutBuilder, TreewidthBuilder};
use minex_core::RootedTree;
use minex_decomp::TreeDecomposition;
use minex_graphs::generators;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_treewidth");
    group.sample_size(10);
    for k in [2usize, 4] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let (g, rec) = generators::k_tree(400, k, &mut rng);
        let td = TreeDecomposition::from_k_tree(g.n(), &rec);
        let tree = RootedTree::bfs(&g, 0);
        let parts = minex_algo::workloads::voronoi_parts(&g, 20, &mut rng);
        group.bench_with_input(BenchmarkId::new("build", k), &k, |b, _| {
            let builder = TreewidthBuilder::new(&td);
            b.iter(|| builder.build(&g, &tree, &parts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

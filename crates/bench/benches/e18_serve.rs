//! E18 — serving throughput of the `minex-serve` daemon (wall-clock).
//!
//! One iteration = every client runs its full query mix (`mst` /
//! `components` / `partwise_min`) against its own session over keep-alive
//! HTTP. Sessions are created once, outside the timed loop, so the
//! benchmark isolates steady-state serving: wire codec + HTTP framing +
//! admission gate + per-session lock + memoized solver queries. Compare
//! `clients/1` against `clients/8` for the cross-session scaling E18's
//! table reports.

use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::wire::{obj, JsonValue};
use minex_graphs::{generators, WeightedGraph};
use minex_serve::{start, Client, CreateSession, ServerConfig};

fn grid_for(side: usize, seed: u64) -> Arc<WeightedGraph> {
    let g = generators::triangulated_grid(side, side);
    let weights: Vec<u64> = (0..g.m() as u64)
        .map(|e| 1 + (e.wrapping_mul(2654435761) ^ seed) % 4096)
        .collect();
    Arc::new(WeightedGraph::new(g, weights))
}

fn mix_query(kind: usize, n: usize) -> JsonValue {
    match kind {
        0 => obj([("query", JsonValue::Str("mst".into()))]),
        1 => obj([("query", JsonValue::Str("components".into()))]),
        _ => obj([
            ("query", JsonValue::Str("partwise_min".into())),
            (
                "values",
                JsonValue::Array((0..n as u64).map(JsonValue::UInt).collect()),
            ),
            ("value_bits", JsonValue::UInt(32)),
        ]),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_serve");
    group.sample_size(10);
    let side = 5usize;
    let queries = 12usize;
    for clients in [1usize, 8] {
        let server = start(ServerConfig::default()).expect("bind");
        let addr = server.addr();
        // Warm sessions up front; the timed loop measures serving only.
        let sessions: Vec<String> = (0..clients)
            .map(|cid| {
                let wg = grid_for(side, cid as u64 + 1);
                let mut client = Client::connect(addr).expect("connect");
                let mut req = CreateSession::from_weighted(&wg);
                req.threads = Some(1);
                client.create_session(&req).expect("create session")
            })
            .collect();
        let n = grid_for(side, 1).graph().n();
        group.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let workers: Vec<_> = (0..clients)
                        .map(|cid| {
                            let session = sessions[cid].clone();
                            thread::spawn(move || {
                                let mut client = Client::connect(addr).expect("connect");
                                let mut bytes = 0usize;
                                for i in 0..queries {
                                    bytes += client
                                        .query(&session, &mix_query(i % 3, n))
                                        .expect("query")
                                        .to_string()
                                        .len();
                                }
                                bytes
                            })
                        })
                        .collect();
                    workers
                        .into_iter()
                        .map(|w| w.join().expect("client thread"))
                        .sum::<usize>()
                })
            },
        );
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E14 — amortized query latency of the plan-once / query-many `Solver`
//! session vs independent one-shot sessions (wall-clock).
//!
//! One iteration = N mixed queries (one shortcut SSSP per four queries,
//! part-wise MIN aggregations otherwise). The `solver_*` benchmarks share a
//! single warm session across the whole run; the `fresh_*` benchmarks build
//! a new session per query, paying for the plan (tree + shortcut + ρ flood
//! for SSSP) call after call — what the removed legacy free functions did.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::solver::{PartsStrategy, Solver, Tier};
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::construct::SteinerBuilder;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_plan_reuse");
    group.sample_size(10);
    let (wg, parts) = workloads::heavy_hub_wheel(96, 8, 64, 4096);
    let g = wg.graph();
    let budget = parts.len() + 2;
    let config = CongestConfig::for_nodes(g.n())
        .with_bandwidth(192)
        .with_max_rounds(1_000_000);
    let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 31) % 4096).collect();
    let fresh_session = || {
        Solver::builder(&wg)
            .parts(PartsStrategy::Explicit(parts.clone()))
            .shortcut_builder(SteinerBuilder)
            .config(config)
            .build()
            .unwrap()
    };

    for queries in [1usize, 8, 64] {
        // The one-shot path, spelled out: every query pays for its own plan.
        group.bench_with_input(
            BenchmarkId::new("fresh_mixed", queries),
            &queries,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for i in 0..queries {
                        if i % 4 == 0 {
                            total += fresh_session()
                                .sssp(
                                    0,
                                    Tier::Shortcut {
                                        epsilon: 0.5,
                                        max_phases: budget,
                                    },
                                )
                                .unwrap()
                                .stats
                                .simulated_rounds;
                        } else {
                            total += fresh_session()
                                .partwise_min(&values, 32)
                                .unwrap()
                                .stats
                                .simulated_rounds;
                        }
                    }
                    total
                })
            },
        );
        // The session path: one plan, N queries.
        let mut session = fresh_session();
        group.bench_with_input(
            BenchmarkId::new("solver_mixed", queries),
            &queries,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for i in 0..queries {
                        if i % 4 == 0 {
                            total += session
                                .sssp(
                                    0,
                                    Tier::Shortcut {
                                        epsilon: 0.5,
                                        max_phases: budget,
                                    },
                                )
                                .unwrap()
                                .stats
                                .simulated_rounds;
                        } else {
                            total += session
                                .partwise_min(&values, 32)
                                .unwrap()
                                .stats
                                .simulated_rounds;
                        }
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E11 — SSSP tier comparison (wall-clock of the simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use minex_algo::solver::{PartsStrategy, Solver, Tier};
use minex_algo::sssp::bellman_ford_sssp;
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::construct::SteinerBuilder;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_sssp");
    group.sample_size(10);
    let (wg, parts) = workloads::heavy_hub_wheel(256, 16, 64, 8192);
    let config = CongestConfig::for_nodes(wg.graph().n())
        .with_bandwidth(192)
        .with_max_rounds(1_000_000);
    group.bench_function("bellman_ford_wheel256", |b| {
        b.iter(|| bellman_ford_sssp(&wg, 0, config).unwrap().stats.rounds)
    });
    let budget = parts.len() + 2;
    group.bench_function("shortcut_sssp_wheel256", |b| {
        // A fresh session per iteration: the one-shot cost (plan reuse is
        // benchmarked by e14_plan_reuse).
        b.iter(|| {
            Solver::builder(&wg)
                .parts(PartsStrategy::Explicit(parts.clone()))
                .shortcut_builder(SteinerBuilder)
                .config(config)
                .build()
                .unwrap()
                .sssp(
                    0,
                    Tier::Shortcut {
                        epsilon: 0.5,
                        max_phases: budget,
                    },
                )
                .unwrap()
                .stats
                .simulated_rounds
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E10 — decomposition-tree folding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_decomp::CliqueSumTree;
use minex_graphs::generators::{self, CliqueSumBuilder};
use minex_graphs::NodeId;

fn chain(len: usize) -> CliqueSumTree {
    let comp = generators::triangulated_grid(3, 3);
    let mut builder = CliqueSumBuilder::new(&comp, 2);
    let mut last: Vec<NodeId> = (0..comp.n()).collect();
    for _ in 1..len {
        let host = vec![last[7], last[8]];
        last = builder.glue(&comp, &host, &[0, 1]).unwrap();
    }
    CliqueSumTree::new(builder.build().1).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_folding");
    for len in [32usize, 128] {
        let cst = chain(len);
        group.bench_with_input(BenchmarkId::new("fold", len), &len, |b, _| {
            b.iter(|| cst.fold().max_depth())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E1 — planar shortcut construction and quality measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_core::construct::{AutoCappedBuilder, ShortcutBuilder, SteinerBuilder};
use minex_core::{measure_quality, RootedTree};
use minex_graphs::generators;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_planar_quality");
    group.sample_size(10);
    for side in [16usize, 32] {
        let g = generators::triangulated_grid(side, side);
        let tree = RootedTree::bfs(&g, 0);
        let mut rng = StdRng::seed_from_u64(side as u64);
        let parts = minex_algo::workloads::voronoi_parts(&g, side, &mut rng);
        group.bench_with_input(BenchmarkId::new("steiner", side), &side, |b, _| {
            b.iter(|| {
                let s = SteinerBuilder.build(&g, &tree, &parts);
                measure_quality(&g, &tree, &parts, &s).quality
            })
        });
        group.bench_with_input(BenchmarkId::new("auto_capped", side), &side, |b, _| {
            b.iter(|| {
                let s = AutoCappedBuilder.build(&g, &tree, &parts);
                measure_quality(&g, &tree, &parts, &s).quality
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

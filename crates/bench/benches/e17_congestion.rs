//! E17 — congestion telemetry: a traced Solver session serving the
//! part-wise MIN primitive (recorder on), against the same query untraced
//! (recorder off), so the criterion history tracks both the aggregation
//! itself and the cost of observing it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::solver::{PartsStrategy, Solver};
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::construct::SteinerBuilder;
use minex_graphs::generators;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_congestion");
    group.sample_size(10);
    for side in [12usize, 16] {
        let g = generators::triangulated_grid(side, side);
        let mut rng = StdRng::seed_from_u64(side as u64);
        let parts = workloads::voronoi_parts(&g, side, &mut rng);
        let config = CongestConfig::for_nodes(g.n())
            .with_bandwidth(192)
            .with_max_rounds(1_000_000);
        for traced in [false, true] {
            // Warm session: the plan is built once; each iteration varies
            // the values so every query re-runs the aggregation engine,
            // and traced sessions drain the recorder so the profile does
            // not grow across iterations.
            let mut session = Solver::for_graph(&g)
                .parts(PartsStrategy::Explicit(parts.clone()))
                .shortcut_builder(SteinerBuilder)
                .config(config)
                .trace(traced)
                .build()
                .unwrap();
            let label = if traced { "traced" } else { "untraced" };
            let mut round = 0u64;
            group.bench_with_input(
                BenchmarkId::new(format!("grid_{label}"), side),
                &side,
                |b, _| {
                    b.iter(|| {
                        round += 1;
                        let values: Vec<u64> = (0..g.n() as u64)
                            .map(|v| (v * 7 + round) % 100_003)
                            .collect();
                        let rounds = session
                            .partwise_min(&values, 32)
                            .unwrap()
                            .stats
                            .simulated_rounds;
                        let observed = session
                            .take_trace()
                            .map_or(0, |t| t.profile.max_edge_messages());
                        (rounds, observed)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

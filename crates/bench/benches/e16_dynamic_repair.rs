//! E16 — dynamic repair: `Solver::apply` + incremental plan repair against
//! a from-scratch session rebuild under single-edge churn, plus the raw
//! `DeltaGraph` mutation/snapshot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_algo::solver::{PartsStrategy, Solver};
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::construct::SteinerBuilder;
use minex_graphs::{DeltaGraph, EdgeMutation, GraphView};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_dynamic_repair");
    group.sample_size(10);
    for side in [100usize, 316] {
        let mut rng = StdRng::seed_from_u64(16);
        let (wg, parts) = workloads::maze_grid(side, side, 64, &mut rng);
        let n = wg.graph().n();
        let strategy = PartsStrategy::Explicit(parts);
        let mut session = Solver::builder(&wg)
            .parts(strategy.clone())
            .shortcut_builder(SteinerBuilder)
            .config(CongestConfig::for_nodes(n))
            .build()
            .unwrap();
        session.plan().unwrap();
        let (e, u, v) = {
            let tree = session.plan().unwrap().tree();
            wg.graph()
                .edges()
                .find(|&(e, _, _)| !tree.is_tree_edge(e))
                .unwrap()
        };
        let weight = wg.weight(e);
        group.bench_with_input(BenchmarkId::new("repair_maze", side), &side, |b, _| {
            b.iter(|| {
                session.apply(&[EdgeMutation::Delete { u, v }]).unwrap();
                session.plan().unwrap();
                session
                    .apply(&[EdgeMutation::Insert { u, v, weight }])
                    .unwrap();
                session.plan().unwrap().quality().quality
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild_maze", side), &side, |b, _| {
            b.iter(|| {
                let mut fresh = Solver::builder(&wg)
                    .parts(strategy.clone())
                    .shortcut_builder(SteinerBuilder)
                    .config(CongestConfig::for_nodes(n))
                    .build()
                    .unwrap();
                fresh.plan().unwrap().quality().quality
            })
        });
        group.bench_with_input(
            BenchmarkId::new("delta_delete_insert", side),
            &side,
            |b, _| {
                let mut dg = DeltaGraph::new(wg.graph().clone());
                b.iter(|| {
                    dg.delete_edge(u, v).unwrap();
                    dg.insert_edge(u, v).unwrap();
                    dg.m()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

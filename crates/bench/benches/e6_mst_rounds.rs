//! E6 — MST via shortcuts (wall-clock of the simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use minex_algo::solver::Solver;
use minex_congest::CongestConfig;
use minex_core::construct::AutoCappedBuilder;
use minex_graphs::{generators, WeightModel};
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_mst");
    group.sample_size(10);
    let g = generators::triangulated_grid(10, 10);
    let mut rng = StdRng::seed_from_u64(6);
    let wg = WeightModel::DistinctShuffled.apply(&g, &mut rng);
    let config = CongestConfig::for_nodes(g.n())
        .with_bandwidth(192)
        .with_max_rounds(1_000_000);
    group.bench_function("boruvka_shortcut_grid10", |b| {
        // A fresh session per iteration: this measures the one-shot cost
        // (memoized repeats are E14's subject).
        b.iter(|| {
            Solver::builder(&wg)
                .shortcut_builder(AutoCappedBuilder)
                .config(config)
                .build()
                .unwrap()
                .mst()
                .unwrap()
                .stats
                .simulated_rounds
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E9 — tree-packing min-cut approximation.

use criterion::{criterion_group, criterion_main, Criterion};
use minex_algo::mincut::stoer_wagner;
use minex_algo::solver::Solver;
use minex_congest::CongestConfig;
use minex_core::construct::SteinerBuilder;
use minex_graphs::{generators, WeightedGraph};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_mincut");
    group.sample_size(10);
    let g = generators::triangulated_grid(6, 6);
    let wg = WeightedGraph::unit(g);
    group.bench_function("stoer_wagner_36", |b| b.iter(|| stoer_wagner(&wg)));
    let config = CongestConfig::for_nodes(wg.graph().n())
        .with_bandwidth(192)
        .with_max_rounds(1_000_000);
    group.bench_function("packing_4_trees", |b| {
        b.iter(|| {
            Solver::builder(&wg)
                .shortcut_builder(SteinerBuilder)
                .config(config)
                .build()
                .unwrap()
                .min_cut_with(4, false)
                .unwrap()
                .value
                .approx_value
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

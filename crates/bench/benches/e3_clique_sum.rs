//! E3 — Theorem 7 clique-sum construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_core::construct::{CliqueSumShortcutBuilder, ShortcutBuilder, SteinerBuilder};
use minex_core::RootedTree;
use minex_decomp::CliqueSumTree;
use minex_graphs::generators::{self, CliqueSumBuilder};
use minex_graphs::NodeId;
use rand::{rngs::StdRng, SeedableRng};

fn chain(len: usize) -> (minex_graphs::Graph, CliqueSumTree) {
    let comp = generators::triangulated_grid(4, 4);
    let mut builder = CliqueSumBuilder::new(&comp, 2);
    let mut last: Vec<NodeId> = (0..comp.n()).collect();
    for _ in 1..len {
        let host = vec![last[14], last[15]];
        last = builder.glue(&comp, &host, &[0, 1]).unwrap();
    }
    let (g, rec) = builder.build();
    (g, CliqueSumTree::new(rec).unwrap())
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_clique_sum");
    group.sample_size(10);
    for len in [8usize, 24] {
        let (g, cst) = chain(len);
        let tree = RootedTree::bfs(&g, 0);
        let mut rng = StdRng::seed_from_u64(len as u64);
        let parts = minex_algo::workloads::voronoi_parts(&g, len, &mut rng);
        group.bench_with_input(BenchmarkId::new("folded", len), &len, |b, _| {
            let builder = CliqueSumShortcutBuilder::folded(cst.clone(), SteinerBuilder);
            b.iter(|| builder.build(&g, &tree, &parts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

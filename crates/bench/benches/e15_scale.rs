//! E15 — graph-core scale: CSR build and neighbor-sweep throughput against
//! the nested-Vec reference representation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minex_graphs::generators;
use minex_graphs::reference::AdjListGraph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_scale");
    group.sample_size(10);
    for side in [100usize, 316] {
        group.bench_with_input(BenchmarkId::new("build_tri_grid", side), &side, |b, &s| {
            b.iter(|| generators::triangulated_grid(s, s).m())
        });
        let g = generators::triangulated_grid(side, side);
        group.bench_with_input(BenchmarkId::new("sweep_csr", side), &g, |b, g| {
            b.iter(|| {
                let mut acc = 0u32;
                for v in g.nodes() {
                    for &w in g.neighbor_targets(v) {
                        acc = acc.wrapping_add(w);
                    }
                }
                acc
            })
        });
        let r = AdjListGraph::from(&g);
        group.bench_with_input(BenchmarkId::new("sweep_adjlist", side), &r, |b, r| {
            b.iter(|| {
                let mut acc = 0u32;
                for v in 0..r.n() {
                    for (w, _) in r.neighbors(v) {
                        acc = acc.wrapping_add(w as u32);
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

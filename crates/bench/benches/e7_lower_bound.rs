//! E7 — aggregation on the lower-bound family.

use criterion::{criterion_group, criterion_main, Criterion};
use minex_algo::solver::{PartsStrategy, Solver};
use minex_algo::workloads;
use minex_congest::CongestConfig;
use minex_core::construct::AutoCappedBuilder;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_lower_bound");
    group.sample_size(10);
    let (g, parts) = workloads::lower_bound_path_parts(12, 12);
    let values: Vec<u64> = (0..g.n() as u64).collect();
    let config = CongestConfig::for_nodes(g.n())
        .with_bandwidth(192)
        .with_max_rounds(1_000_000);
    group.bench_function("gamma_12_aggregation", |b| {
        b.iter(|| {
            Solver::for_graph(&g)
                .parts(PartsStrategy::Explicit(parts.clone()))
                .shortcut_builder(AutoCappedBuilder)
                .config(config)
                .root(g.n() - 1)
                .build()
                .unwrap()
                .partwise_min(&values, 32)
                .unwrap()
                .stats
                .simulated_rounds
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

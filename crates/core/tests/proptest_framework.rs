//! Property tests of the shortcut framework on randomized instances.

use proptest::prelude::*;

use minex_core::construct::{
    ApexBuilder, CliqueSumShortcutBuilder, ShortcutBuilder, SteinerBuilder, TreewidthBuilder,
};
use minex_core::{measure_quality, validate_tree_restricted, Partition, RootedTree};
use minex_decomp::{CliqueSumTree, TreeDecomposition};
use minex_graphs::{generators, traversal, Graph};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Voronoi parts from k random seeds.
fn voronoi(g: &Graph, k: usize, rng: &mut StdRng) -> Partition {
    let seeds: Vec<usize> = (0..k.max(1)).map(|_| rng.random_range(0..g.n())).collect();
    let bfs = traversal::multi_source_bfs(g, &seeds);
    let labels: Vec<Option<usize>> = bfs.source_of.iter().map(|&s| Some(s)).collect();
    Partition::from_labels(g, &labels).expect("voronoi parts connected")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn treewidth_builder_invariants(n in 12usize..80, k in 2usize..5, seed in 0u64..400) {
        prop_assume!(n > k + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, rec) = generators::k_tree(n, k, &mut rng);
        let td = TreeDecomposition::from_k_tree(g.n(), &rec);
        let builder = TreewidthBuilder::new(&td);
        let tree = RootedTree::bfs(&g, 0);
        let parts = voronoi(&g, n / 6 + 1, &mut rng);
        let s = builder.build(&g, &tree, &parts);
        prop_assert!(validate_tree_restricted(&s, &tree).is_ok());
        let q = measure_quality(&g, &tree, &parts, &s);
        // Theorem 5: block O(k). Generous constant, must hold always.
        prop_assert!(q.block <= 8 * (k + 1), "block {} for k {}", q.block, k);
    }

    #[test]
    fn clique_sum_builder_invariants(bags in 1usize..14, seed in 0u64..400, fold in proptest::bool::ANY) {
        let comps = vec![
            generators::triangulated_grid(3, 3),
            generators::complete(4),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, rec) = generators::random_clique_sum(&comps, bags, 3, &mut rng);
        let cst = CliqueSumTree::new(rec).unwrap();
        prop_assert!(cst.validate(&g).is_ok());
        let tree = RootedTree::bfs(&g, 0);
        let parts = voronoi(&g, bags, &mut rng);
        let builder = if fold {
            CliqueSumShortcutBuilder::folded(cst, SteinerBuilder)
        } else {
            CliqueSumShortcutBuilder::unfolded(cst, SteinerBuilder)
        };
        let s = builder.build(&g, &tree, &parts);
        prop_assert!(validate_tree_restricted(&s, &tree).is_ok());
        let q = measure_quality(&g, &tree, &parts, &s);
        // Theorem 7: block ≤ 2k + O(b_F); with k=3 and Steiner inner
        // builders this stays a small constant.
        prop_assert!(q.block <= 24, "block {}", q.block);
    }

    #[test]
    fn apex_builder_invariants(rows in 3usize..8, cols in 3usize..8, seed in 0u64..300) {
        let base = generators::grid(rows, cols);
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, apices) = generators::add_random_apices(&base, 1 + (seed % 3) as usize, 0.2, &mut rng);
        let tree = RootedTree::bfs(&g, apices[0]);
        let parts = voronoi(&g, rows, &mut rng);
        let builder = ApexBuilder::new(apices, SteinerBuilder);
        let s = builder.build(&g, &tree, &parts);
        prop_assert!(validate_tree_restricted(&s, &tree).is_ok());
        let q = measure_quality(&g, &tree, &parts, &s);
        prop_assert_eq!(q.quality, q.block * q.tree_diameter + q.congestion);
    }

    #[test]
    fn folding_always_validates(len in 1usize..40) {
        // Deep chains are the worst case for folding.
        let comp = generators::triangulated_grid(3, 3);
        let mut builder = minex_graphs::generators::CliqueSumBuilder::new(&comp, 2);
        let mut last: Vec<usize> = (0..comp.n()).collect();
        for _ in 1..len {
            let host = vec![last[7], last[8]];
            last = builder.glue(&comp, &host, &[0, 1]).unwrap();
        }
        let (g, rec) = builder.build();
        let cst = CliqueSumTree::new(rec).unwrap();
        prop_assert!(cst.validate(&g).is_ok());
        let folded = cst.fold();
        prop_assert!(folded.validate(&cst).is_ok());
        // Depth compression: folded depth ≤ 2·log2(len) + 2.
        let log = (usize::BITS - len.next_power_of_two().leading_zeros()) as usize;
        prop_assert!(folded.max_depth() <= 2 * log + 2,
            "len {} folded depth {}", len, folded.max_depth());
    }

    #[test]
    fn gate_construction_on_striped_grids(rows in 2usize..8, cols in 4usize..14, width in 1usize..5) {
        use minex_core::cells::CellPartition;
        use minex_core::gates::{planar_gates, validate_gates};
        let (g, emb) = generators::grid_embedded(rows, cols);
        let mut cell_sets: Vec<Vec<usize>> = Vec::new();
        let mut c = 0;
        while c < cols {
            let hi = (c + width).min(cols);
            cell_sets.push(
                (0..rows).flat_map(|r| (c..hi).map(move |cc| r * cols + cc)).collect(),
            );
            c = hi;
        }
        let cells = CellPartition::new(&g, cell_sets);
        let collection = planar_gates(&g, &emb, &cells).unwrap();
        let s = validate_gates(&g, &cells, &collection).unwrap();
        // Lemma 7: s = O(d) with the paper's constant 36.
        prop_assert!(s <= 36.0 * (cells.diameter() as f64 + 1.0), "s={s}");
    }
}

//! The plan-once / query-many seam: a [`ShortcutPlan`] bundles everything a
//! shortcut-driven algorithm needs about one `(network, tree, parts)`
//! configuration — the rooted spanning tree, the partition, the constructed
//! shortcut, and its measured [`QualityReport`] — computed **once** and then
//! served to arbitrarily many queries.
//!
//! The paper's central observation is that this one structural object
//! simultaneously accelerates MST, min-cut, SSSP, and any other part-wise
//! aggregation problem; follow-up work (Ghaffari–Haeupler, Chang) reuses the
//! same decomposition across many queries. `ShortcutPlan` is the type that
//! makes this reuse explicit: build it with any [`ShortcutBuilder`]
//! (dyn-erased, so sessions can carry heterogeneous builders behind one
//! pointer) and hand out cheap references to its pieces.
//!
//! The `minex-algo` crate's `Solver` session API caches `ShortcutPlan`s —
//! one per session anchor, plus per-fragmentation re-plans for Borůvka-style
//! drivers — so repeated queries never rebuild trees, partitions, or
//! shortcuts.

use minex_graphs::{Graph, NodeId};

use crate::construct::ShortcutBuilder;
use crate::parts::Partition;
use crate::shortcut::{measure_quality, QualityReport, Shortcut};
use crate::spanning::RootedTree;

/// A fully materialized shortcut plan: spanning tree, partition, shortcut,
/// and measured quality, ready to serve queries.
///
/// Construction is deterministic: the same `(graph, root, parts, builder)`
/// always produces the same plan, so caching a plan and replaying queries
/// against it is observationally identical to rebuilding it per query.
#[derive(Debug, Clone)]
pub struct ShortcutPlan {
    tree: RootedTree,
    parts: Partition,
    shortcut: Shortcut,
    quality: QualityReport,
}

impl ShortcutPlan {
    /// Builds the plan for `g` with a BFS spanning tree rooted at `root`:
    /// runs `builder` once and measures the resulting shortcut's quality.
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or disconnected, or `root` is out of range
    /// (the panics of [`RootedTree::bfs`]).
    pub fn build(g: &Graph, root: NodeId, parts: Partition, builder: &dyn ShortcutBuilder) -> Self {
        let tree = RootedTree::bfs(g, root);
        Self::with_tree(g, tree, parts, builder)
    }

    /// Like [`ShortcutPlan::build`], but reuses an already constructed
    /// spanning tree instead of running BFS again.
    pub fn with_tree(
        g: &Graph,
        tree: RootedTree,
        parts: Partition,
        builder: &dyn ShortcutBuilder,
    ) -> Self {
        let shortcut = builder.build(g, &tree, &parts);
        let quality = measure_quality(g, &tree, &parts, &shortcut);
        ShortcutPlan {
            tree,
            parts,
            shortcut,
            quality,
        }
    }

    /// The rooted spanning tree the shortcut is restricted to.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The partition the plan serves.
    pub fn parts(&self) -> &Partition {
        &self.parts
    }

    /// The constructed shortcut (one tree-restricted edge set per part).
    pub fn shortcut(&self) -> &Shortcut {
        &self.shortcut
    }

    /// The measured Definitions 11–13 parameters of [`Self::shortcut`].
    pub fn quality(&self) -> &QualityReport {
        &self.quality
    }

    /// Decomposes the plan into its parts (tree, partition, shortcut,
    /// quality), for callers that want to own the pieces.
    pub fn into_parts(self) -> (RootedTree, Partition, Shortcut, QualityReport) {
        (self.tree, self.parts, self.shortcut, self.quality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{AutoCappedBuilder, SteinerBuilder};
    use minex_graphs::generators;

    #[test]
    fn plan_matches_manual_construction() {
        let g = generators::triangulated_grid(5, 5);
        let parts = Partition::new(&g, vec![(0..5).collect(), (5..10).collect()]).unwrap();
        let plan = ShortcutPlan::build(&g, 0, parts.clone(), &SteinerBuilder);
        let tree = RootedTree::bfs(&g, 0);
        let manual = SteinerBuilder.build(&g, &tree, &parts);
        assert_eq!(plan.shortcut(), &manual);
        assert_eq!(plan.quality(), &measure_quality(&g, &tree, &parts, &manual));
        assert_eq!(plan.parts().len(), 2);
    }

    #[test]
    fn plan_is_deterministic_and_cheap_to_share() {
        let g = generators::wheel(17);
        let parts = Partition::new(&g, vec![(0..8).collect()]).unwrap();
        let a = ShortcutPlan::build(&g, 16, parts.clone(), &AutoCappedBuilder);
        let b = ShortcutPlan::build(&g, 16, parts, &AutoCappedBuilder);
        assert_eq!(a.shortcut(), b.shortcut());
        assert_eq!(a.quality(), b.quality());
    }

    #[test]
    fn boxed_builders_build_plans() {
        // The dyn-erased path a Solver session uses.
        let g = generators::grid(4, 4);
        let parts = Partition::new(&g, vec![vec![0, 1], vec![14, 15]]).unwrap();
        let boxed: Box<dyn ShortcutBuilder> = Box::new(SteinerBuilder);
        let plan = ShortcutPlan::build(&g, 0, parts.clone(), &*boxed);
        let via_impl = ShortcutPlan::build(&g, 0, parts, &boxed);
        assert_eq!(plan.shortcut(), via_impl.shortcut());
        assert_eq!(boxed.name(), "steiner");
    }

    #[test]
    fn into_parts_round_trips() {
        let g = generators::path(6);
        let parts = Partition::new(&g, vec![vec![0, 1, 2]]).unwrap();
        let plan = ShortcutPlan::build(&g, 0, parts, &SteinerBuilder);
        let quality = plan.quality().clone();
        let (tree, parts, shortcut, q) = plan.into_parts();
        assert_eq!(tree.root(), 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(shortcut.len(), 1);
        assert_eq!(q, quality);
    }
}

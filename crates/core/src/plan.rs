//! The plan-once / query-many seam: a [`ShortcutPlan`] bundles everything a
//! shortcut-driven algorithm needs about one `(network, tree, parts)`
//! configuration — the rooted spanning tree, the partition, the constructed
//! shortcut, and its measured [`QualityReport`] — computed **once** and then
//! served to arbitrarily many queries.
//!
//! The paper's central observation is that this one structural object
//! simultaneously accelerates MST, min-cut, SSSP, and any other part-wise
//! aggregation problem; follow-up work (Ghaffari–Haeupler, Chang) reuses the
//! same decomposition across many queries. `ShortcutPlan` is the type that
//! makes this reuse explicit: build it with any [`ShortcutBuilder`]
//! (dyn-erased, so sessions can carry heterogeneous builders behind one
//! pointer) and hand out cheap references to its pieces.
//!
//! The `minex-algo` crate's `Solver` session API caches `ShortcutPlan`s —
//! one per session anchor, plus per-fragmentation re-plans for Borůvka-style
//! drivers — so repeated queries never rebuild trees, partitions, or
//! shortcuts.

use minex_graphs::{EdgeId, Graph, NodeId};

use crate::construct::ShortcutBuilder;
use crate::parts::Partition;
use crate::shortcut::{measure_quality, QualityReport, Shortcut};
use crate::spanning::RootedTree;

/// What [`ShortcutPlan::repair`] did, for callers that surface repair
/// telemetry (the solver's `RepairStats` embeds this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanRepairStats {
    /// The partition differed from the previous plan's, forcing a full
    /// rebuild regardless of dirty-region analysis.
    pub partition_changed: bool,
    /// The builder declined incremental rebuilding (or the partition
    /// changed) and `build` ran over every part.
    pub full_rebuild: bool,
    /// Total number of parts in the repaired plan.
    pub parts_total: usize,
    /// Parts whose shortcut edges were recomputed.
    pub parts_rebuilt: usize,
    /// Parts whose previous edges were reused (remapped to new edge ids).
    pub parts_reused: usize,
    /// Nodes whose spanning-tree parent changed under the mutation batch.
    pub tree_changed_nodes: usize,
}

/// A fully materialized shortcut plan: spanning tree, partition, shortcut,
/// and measured quality, ready to serve queries.
///
/// Construction is deterministic: the same `(graph, root, parts, builder)`
/// always produces the same plan, so caching a plan and replaying queries
/// against it is observationally identical to rebuilding it per query.
#[derive(Debug, Clone)]
pub struct ShortcutPlan {
    tree: RootedTree,
    parts: Partition,
    shortcut: Shortcut,
    quality: QualityReport,
}

impl ShortcutPlan {
    /// Builds the plan for `g` with a BFS spanning tree rooted at `root`:
    /// runs `builder` once and measures the resulting shortcut's quality.
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or disconnected, or `root` is out of range
    /// (the panics of [`RootedTree::bfs`]).
    pub fn build(g: &Graph, root: NodeId, parts: Partition, builder: &dyn ShortcutBuilder) -> Self {
        let tree = RootedTree::bfs(g, root);
        Self::with_tree(g, tree, parts, builder)
    }

    /// Like [`ShortcutPlan::build`], but reuses an already constructed
    /// spanning tree instead of running BFS again.
    pub fn with_tree(
        g: &Graph,
        tree: RootedTree,
        parts: Partition,
        builder: &dyn ShortcutBuilder,
    ) -> Self {
        let shortcut = builder.build(g, &tree, &parts);
        let quality = measure_quality(g, &tree, &parts, &shortcut);
        ShortcutPlan {
            tree,
            parts,
            shortcut,
            quality,
        }
    }

    /// The rooted spanning tree the shortcut is restricted to.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The partition the plan serves.
    pub fn parts(&self) -> &Partition {
        &self.parts
    }

    /// The constructed shortcut (one tree-restricted edge set per part).
    pub fn shortcut(&self) -> &Shortcut {
        &self.shortcut
    }

    /// The measured Definitions 11–13 parameters of [`Self::shortcut`].
    pub fn quality(&self) -> &QualityReport {
        &self.quality
    }

    /// Decomposes the plan into its parts (tree, partition, shortcut,
    /// quality), for callers that want to own the pieces.
    pub fn into_parts(self) -> (RootedTree, Partition, Shortcut, QualityReport) {
        (self.tree, self.parts, self.shortcut, self.quality)
    }

    /// Repairs this plan after edge churn, recomputing only the dirty
    /// region. The result is **byte-identical** to
    /// `ShortcutPlan::build(g, root, parts, builder)` on the mutated graph
    /// — repair is an optimization, never a semantic fork.
    ///
    /// Inputs describe the mutation batch:
    ///
    /// * `g` is the *mutated* (compacted) graph; `root` the plan anchor.
    /// * `edge_remap[old_id]` is the edge's id in `g`, or `None` if the
    ///   edge was deleted (mutations renumber ids — they are lexicographic
    ///   ranks).
    /// * `touched` lists the endpoints of every mutated edge.
    ///
    /// The spanning tree is always re-derived (BFS is one `O(n + m)` pass;
    /// byte-identity demands it). A part is **dirty** when a mutation can
    /// reach its shortcut: one of its nodes was a mutation endpoint or
    /// changed tree parent, one of its previous shortcut edges vanished or
    /// left the tree, or such an edge's endpoint changed parent / was
    /// touched. Clean parts keep their previous edges, remapped to the new
    /// ids; dirty parts go through
    /// [`ShortcutBuilder::rebuild_parts`], and builders that decline (the
    /// default — required for builders with cross-part coupling) fall back
    /// to a full [`ShortcutBuilder::build`]. Quality is always re-measured
    /// on the mutated graph.
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or disconnected, `root` is out of range, or
    /// the node count changed (churn mutates edges, never nodes).
    pub fn repair(
        &self,
        g: &Graph,
        root: NodeId,
        parts: Partition,
        builder: &dyn ShortcutBuilder,
        edge_remap: &[Option<EdgeId>],
        touched: &[NodeId],
    ) -> (ShortcutPlan, PlanRepairStats) {
        assert_eq!(
            g.n(),
            self.tree.n(),
            "edge churn cannot change the node count"
        );
        let tree = RootedTree::bfs(g, root);
        let mut stats = PlanRepairStats {
            parts_total: parts.len(),
            ..PlanRepairStats::default()
        };
        // `moved` marks nodes whose tree parent pointer changed; `unstable`
        // additionally marks mutation endpoints. A part is dirty if it
        // *contains* an unstable node (a part-local construction may look at
        // the graph around its own nodes), but a remapped shortcut edge only
        // goes stale if one of its endpoints *moved*: by the
        // [`ShortcutBuilder::rebuild_parts`] contract a part's edges depend
        // on nothing outside the part's nodes and the tree, and an old tree
        // path whose nodes all kept their parent pointers is the same parent
        // chain in the new tree. Churn at a hub (k-trees!) would otherwise
        // dirty every part whose Steiner paths route through it.
        let mut moved = vec![false; g.n()];
        for (v, m) in moved.iter_mut().enumerate() {
            if self.tree.parent(v) != tree.parent(v) {
                *m = true;
                stats.tree_changed_nodes += 1;
            }
        }
        let mut unstable = moved.clone();
        for &v in touched {
            unstable[v] = true;
        }
        stats.partition_changed = parts.parts() != self.parts.parts();
        let shortcut = if stats.partition_changed {
            None
        } else {
            // Remap each part's previous edges; collect dirty part indices.
            let mut per_part: Vec<Vec<EdgeId>> = Vec::with_capacity(parts.len());
            let mut dirty: Vec<usize> = Vec::new();
            for (i, part) in parts.parts().iter().enumerate() {
                let mut is_dirty = part.iter().any(|&v| unstable[v]);
                let mut mapped = Vec::with_capacity(self.shortcut.edges(i).len());
                if !is_dirty {
                    for &e in self.shortcut.edges(i) {
                        match edge_remap.get(e).copied().flatten() {
                            Some(ne) if tree.is_tree_edge(ne) => {
                                let (u, v) = g.endpoints(ne);
                                if moved[u] || moved[v] {
                                    is_dirty = true;
                                    break;
                                }
                                mapped.push(ne);
                            }
                            _ => {
                                is_dirty = true;
                                break;
                            }
                        }
                    }
                }
                if is_dirty {
                    dirty.push(i);
                    mapped.clear();
                }
                per_part.push(mapped);
            }
            stats.parts_rebuilt = dirty.len();
            stats.parts_reused = parts.len() - dirty.len();
            builder.rebuild_parts(g, &tree, &parts, &Shortcut::new(per_part), &dirty)
        };
        let shortcut = shortcut.unwrap_or_else(|| {
            stats.full_rebuild = true;
            stats.parts_rebuilt = parts.len();
            stats.parts_reused = 0;
            builder.build(g, &tree, &parts)
        });
        let quality = measure_quality(g, &tree, &parts, &shortcut);
        (
            ShortcutPlan {
                tree,
                parts,
                shortcut,
                quality,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{AutoCappedBuilder, SteinerBuilder};
    use minex_graphs::generators;

    #[test]
    fn plan_matches_manual_construction() {
        let g = generators::triangulated_grid(5, 5);
        let parts = Partition::new(&g, vec![(0..5).collect(), (5..10).collect()]).unwrap();
        let plan = ShortcutPlan::build(&g, 0, parts.clone(), &SteinerBuilder);
        let tree = RootedTree::bfs(&g, 0);
        let manual = SteinerBuilder.build(&g, &tree, &parts);
        assert_eq!(plan.shortcut(), &manual);
        assert_eq!(plan.quality(), &measure_quality(&g, &tree, &parts, &manual));
        assert_eq!(plan.parts().len(), 2);
    }

    #[test]
    fn plan_is_deterministic_and_cheap_to_share() {
        let g = generators::wheel(17);
        let parts = Partition::new(&g, vec![(0..8).collect()]).unwrap();
        let a = ShortcutPlan::build(&g, 16, parts.clone(), &AutoCappedBuilder);
        let b = ShortcutPlan::build(&g, 16, parts, &AutoCappedBuilder);
        assert_eq!(a.shortcut(), b.shortcut());
        assert_eq!(a.quality(), b.quality());
    }

    #[test]
    fn boxed_builders_build_plans() {
        // The dyn-erased path a Solver session uses.
        let g = generators::grid(4, 4);
        let parts = Partition::new(&g, vec![vec![0, 1], vec![14, 15]]).unwrap();
        let boxed: Box<dyn ShortcutBuilder> = Box::new(SteinerBuilder);
        let plan = ShortcutPlan::build(&g, 0, parts.clone(), &*boxed);
        let via_impl = ShortcutPlan::build(&g, 0, parts, &boxed);
        assert_eq!(plan.shortcut(), via_impl.shortcut());
        assert_eq!(boxed.name(), "steiner");
    }

    /// Old → new edge-id remap for two graphs over the same node set: a
    /// merge of the two sorted canonical edge lists.
    fn remap(old: &Graph, new: &Graph) -> Vec<Option<usize>> {
        old.edges()
            .map(|(_, u, v)| new.edge_between(u, v))
            .collect()
    }

    /// Repairing after a batch must reproduce a from-scratch build exactly.
    fn assert_repair_matches_fresh(
        old: &Graph,
        new: &Graph,
        root: usize,
        parts: &Partition,
        builder: &dyn ShortcutBuilder,
        touched: &[usize],
    ) -> PlanRepairStats {
        let prev = ShortcutPlan::build(old, root, parts.clone(), builder);
        let (repaired, stats) =
            prev.repair(new, root, parts.clone(), builder, &remap(old, new), touched);
        let fresh = ShortcutPlan::build(new, root, parts.clone(), builder);
        assert_eq!(repaired.shortcut(), fresh.shortcut());
        assert_eq!(repaired.quality(), fresh.quality());
        assert_eq!(repaired.tree().root(), fresh.tree().root());
        for v in 0..new.n() {
            assert_eq!(repaired.tree().parent(v), fresh.tree().parent(v));
        }
        stats
    }

    #[test]
    fn steiner_repair_reuses_untouched_parts() {
        let old = generators::triangulated_grid(6, 6);
        // Delete a diagonal far from both parts: the BFS tree is unchanged
        // and every part stays clean.
        let victim = {
            let t = RootedTree::bfs(&old, 0);
            old.edges()
                .find(|&(e, u, v)| !t.is_tree_edge(e) && u >= 24 && v >= 24)
                .map(|(_, u, v)| (u, v))
                .expect("a non-tree edge in the last rows")
        };
        let new = Graph::from_edges(
            old.n(),
            old.edges()
                .filter(|&(_, u, v)| (u, v) != victim)
                .map(|(_, u, v)| (u, v)),
        )
        .unwrap();
        let parts = Partition::new(&old, vec![(0..6).collect(), (6..12).collect()]).unwrap();
        let stats = assert_repair_matches_fresh(
            &old,
            &new,
            0,
            &parts,
            &SteinerBuilder,
            &[victim.0, victim.1],
        );
        assert!(!stats.full_rebuild);
        assert!(!stats.partition_changed);
        assert_eq!(stats.parts_reused, 2);
        assert_eq!(stats.parts_rebuilt, 0);
    }

    #[test]
    fn steiner_repair_rebuilds_dirty_parts_only() {
        let old = generators::triangulated_grid(6, 6);
        // Insert an edge incident to part 0's region.
        let new = Graph::from_edges(
            old.n(),
            old.edges().map(|(_, u, v)| (u, v)).chain([(0, 13)]),
        )
        .unwrap();
        let parts = Partition::new(&old, vec![(0..6).collect(), (24..30).collect()]).unwrap();
        let stats = assert_repair_matches_fresh(&old, &new, 35, &parts, &SteinerBuilder, &[0, 13]);
        assert!(!stats.full_rebuild);
        assert_eq!(stats.parts_rebuilt, 1, "only the touched part rebuilds");
        assert_eq!(stats.parts_reused, 1);
    }

    #[test]
    fn coupled_builders_fall_back_to_full_rebuild() {
        // AutoCappedBuilder's quality sweep couples parts globally, so it
        // keeps the default rebuild_parts — repair must do a full build and
        // still agree with fresh construction.
        let old = generators::wheel(17);
        let new = Graph::from_edges(old.n(), old.edges().map(|(_, u, v)| (u, v)).chain([(0, 8)]))
            .unwrap();
        let parts = Partition::new(&old, vec![(0..4).collect(), (8..12).collect()]).unwrap();
        let stats =
            assert_repair_matches_fresh(&old, &new, 16, &parts, &AutoCappedBuilder, &[0, 8]);
        assert!(stats.full_rebuild);
        assert_eq!(stats.parts_rebuilt, 2);
        assert_eq!(stats.parts_reused, 0);
    }

    #[test]
    fn partition_change_forces_full_rebuild() {
        let g = generators::grid(4, 4);
        let parts_a = Partition::new(&g, vec![vec![0, 1]]).unwrap();
        let parts_b = Partition::new(&g, vec![vec![14, 15]]).unwrap();
        let prev = ShortcutPlan::build(&g, 0, parts_a, &SteinerBuilder);
        let identity: Vec<Option<usize>> = (0..g.m()).map(Some).collect();
        let (repaired, stats) =
            prev.repair(&g, 0, parts_b.clone(), &SteinerBuilder, &identity, &[]);
        assert!(stats.partition_changed);
        assert!(stats.full_rebuild);
        let fresh = ShortcutPlan::build(&g, 0, parts_b, &SteinerBuilder);
        assert_eq!(repaired.shortcut(), fresh.shortcut());
        assert_eq!(repaired.quality(), fresh.quality());
    }

    #[test]
    fn into_parts_round_trips() {
        let g = generators::path(6);
        let parts = Partition::new(&g, vec![vec![0, 1, 2]]).unwrap();
        let plan = ShortcutPlan::build(&g, 0, parts, &SteinerBuilder);
        let quality = plan.quality().clone();
        let (tree, parts, shortcut, q) = plan.into_parts();
        assert_eq!(tree.root(), 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(shortcut.len(), 1);
        assert_eq!(q, quality);
    }
}

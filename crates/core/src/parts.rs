//! Parts (Definition 9): pairwise disjoint, individually connected node sets.

use std::error::Error;
use std::fmt;

use minex_graphs::{traversal, Graph, NodeId};

/// Error produced when a partition violates Definition 9.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A node id was `>= n`.
    NodeOutOfRange(NodeId),
    /// A node appears in two parts.
    Overlap(NodeId),
    /// A part does not induce a connected subgraph.
    PartDisconnected {
        /// The offending part's index.
        part: usize,
    },
    /// A part is empty.
    EmptyPart {
        /// The offending part's index.
        part: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
            PartitionError::Overlap(v) => write!(f, "node {v} belongs to two parts"),
            PartitionError::PartDisconnected { part } => {
                write!(f, "part {part} does not induce a connected subgraph")
            }
            PartitionError::EmptyPart { part } => write!(f, "part {part} is empty"),
        }
    }
}

impl Error for PartitionError {}

/// A family of parts `P = (P_1, …, P_N)` per Definition 9: disjoint and each
/// inducing a connected subgraph. Parts need not cover every node.
///
/// # Examples
///
/// ```
/// use minex_core::Partition;
/// use minex_graphs::generators;
///
/// let g = generators::path(6);
/// let parts = Partition::new(&g, vec![vec![0, 1], vec![3, 4, 5]])?;
/// assert_eq!(parts.len(), 2);
/// assert_eq!(parts.part_of(4), Some(1));
/// assert_eq!(parts.part_of(2), None);
/// # Ok::<(), minex_core::PartitionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Partition {
    parts: Vec<Vec<NodeId>>,
    part_of: Vec<Option<usize>>,
}

impl Partition {
    /// Validates and wraps the given parts.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionError`] describing the first violated condition.
    pub fn new(g: &Graph, mut parts: Vec<Vec<NodeId>>) -> Result<Self, PartitionError> {
        let mut part_of: Vec<Option<usize>> = vec![None; g.n()];
        for (i, part) in parts.iter_mut().enumerate() {
            if part.is_empty() {
                return Err(PartitionError::EmptyPart { part: i });
            }
            part.sort_unstable();
            part.dedup();
            for &v in part.iter() {
                if v >= g.n() {
                    return Err(PartitionError::NodeOutOfRange(v));
                }
                if part_of[v].is_some() {
                    return Err(PartitionError::Overlap(v));
                }
                part_of[v] = Some(i);
            }
            if !traversal::is_connected_subset(g, part) {
                return Err(PartitionError::PartDisconnected { part: i });
            }
        }
        Ok(Partition { parts, part_of })
    }

    /// Builds a partition from per-node labels (`None` = unassigned).
    /// Labels are compacted to dense part indices by first appearance.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn from_labels(g: &Graph, labels: &[Option<usize>]) -> Result<Self, PartitionError> {
        assert_eq!(labels.len(), g.n(), "one label per node required");
        let mut remap: std::collections::HashMap<usize, usize> = Default::default();
        let mut parts: Vec<Vec<NodeId>> = Vec::new();
        for (v, &label) in labels.iter().enumerate() {
            if let Some(l) = label {
                let next = parts.len();
                let idx = *remap.entry(l).or_insert(next);
                if idx == parts.len() {
                    parts.push(Vec::new());
                }
                parts[idx].push(v);
            }
        }
        Partition::new(g, parts)
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether there are no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The parts, each sorted.
    pub fn parts(&self) -> &[Vec<NodeId>] {
        &self.parts
    }

    /// Nodes of part `i`.
    pub fn part(&self, i: usize) -> &[NodeId] {
        &self.parts[i]
    }

    /// The part containing `v`, if any.
    pub fn part_of(&self, v: NodeId) -> Option<usize> {
        self.part_of[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::generators;

    #[test]
    fn valid_partition() {
        let g = generators::cycle(8);
        let p = Partition::new(&g, vec![vec![0, 1, 2], vec![4, 5]]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.part_of(1), Some(0));
        assert_eq!(p.part_of(6), None);
        assert_eq!(p.part(1), &[4, 5]);
    }

    #[test]
    fn rejects_overlap() {
        let g = generators::path(4);
        assert_eq!(
            Partition::new(&g, vec![vec![0, 1], vec![1, 2]]).unwrap_err(),
            PartitionError::Overlap(1)
        );
    }

    #[test]
    fn rejects_disconnected_part() {
        let g = generators::path(5);
        assert_eq!(
            Partition::new(&g, vec![vec![0, 2]]).unwrap_err(),
            PartitionError::PartDisconnected { part: 0 }
        );
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        let g = generators::path(3);
        assert_eq!(
            Partition::new(&g, vec![vec![]]).unwrap_err(),
            PartitionError::EmptyPart { part: 0 }
        );
        assert_eq!(
            Partition::new(&g, vec![vec![7]]).unwrap_err(),
            PartitionError::NodeOutOfRange(7)
        );
    }

    #[test]
    fn from_labels_compacts() {
        let g = generators::path(6);
        let labels = vec![Some(9), Some(9), None, None, Some(4), Some(4)];
        let p = Partition::from_labels(&g, &labels).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.part(0), &[0, 1]);
        assert_eq!(p.part(1), &[4, 5]);
    }

    #[test]
    fn duplicate_nodes_within_part_ok() {
        let g = generators::path(3);
        let p = Partition::new(&g, vec![vec![1, 1, 2]]).unwrap();
        assert_eq!(p.part(0), &[1, 2]);
    }
}

//! Rooted spanning trees: the `T` of tree-restricted shortcuts.
//!
//! Theorem 1 instantiates `T` as a BFS tree of the network (so its diameter
//! is at most `2D`); the constructions work for any spanning tree.

use minex_graphs::{traversal, EdgeId, Graph, NodeId};

/// A rooted spanning tree of a connected graph, with the bookkeeping the
/// shortcut constructions need: parent pointers, preorder, subtree sizes,
/// tree-edge mask, and the tree's own diameter `d_T`.
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
    /// Preorder: parents before children.
    order: Vec<NodeId>,
    tree_edge: Vec<bool>,
    diameter: usize,
}

impl RootedTree {
    /// Builds the BFS spanning tree of `g` rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not connected or `root` is out of range.
    pub fn bfs(g: &Graph, root: NodeId) -> Self {
        assert!(root < g.n(), "root out of range");
        let bfs = traversal::bfs(g, root);
        assert_eq!(bfs.order.len(), g.n(), "graph must be connected");
        Self::from_parents(g, root, bfs.parent, bfs.parent_edge, bfs.order)
    }

    /// Wraps explicit parent pointers (`parent[root] = None`); `parent_edge`
    /// must name the corresponding graph edges.
    ///
    /// # Panics
    ///
    /// Panics if the pointers do not encode a spanning tree of `g`.
    pub fn from_parent_pointers(g: &Graph, root: NodeId, parent: Vec<Option<NodeId>>) -> Self {
        assert_eq!(parent.len(), g.n(), "one parent entry per node");
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; g.n()];
        for v in 0..g.n() {
            if let Some(p) = parent[v] {
                let e = g
                    .edge_between(v, p)
                    .expect("tree parent must be a graph neighbor");
                parent_edge[v] = Some(e);
            } else {
                assert_eq!(v, root, "only the root may lack a parent");
            }
        }
        // Preorder via repeated relaxation (children after parents).
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
        for (v, pv) in parent.iter().enumerate() {
            if let Some(p) = *pv {
                children[p].push(v);
            }
        }
        let mut order = Vec::with_capacity(g.n());
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in &children[v] {
                stack.push(c);
            }
        }
        assert_eq!(order.len(), g.n(), "parent pointers must span the graph");
        Self::from_parents(g, root, parent, parent_edge, order)
    }

    fn from_parents(
        g: &Graph,
        root: NodeId,
        parent: Vec<Option<NodeId>>,
        parent_edge: Vec<Option<EdgeId>>,
        order: Vec<NodeId>,
    ) -> Self {
        let n = g.n();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut tree_edge = vec![false; g.m()];
        let mut depth = vec![0usize; n];
        for &v in &order {
            if let Some(p) = parent[v] {
                children[p].push(v);
                depth[v] = depth[p] + 1;
                tree_edge[parent_edge[v].expect("parent implies edge")] = true;
            }
        }
        // Tree diameter via double sweep on tree edges (exact on trees).
        let diameter = if n == 0 {
            0
        } else {
            let d1 = traversal::bfs_masked(g, root, &tree_edge);
            let far = (0..n).max_by_key(|&v| d1[v]).expect("non-empty");
            let d2 = traversal::bfs_masked(g, far, &tree_edge);
            d2.into_iter().max().expect("non-empty")
        };
        RootedTree {
            root,
            parent,
            parent_edge,
            children,
            depth,
            order,
            tree_edge,
            diameter,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// The edge to `v`'s parent.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v]
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Depth of `v` below the root.
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v]
    }

    /// Nodes in preorder (each parent before its children).
    pub fn preorder(&self) -> &[NodeId] {
        &self.order
    }

    /// Whether graph edge `e` belongs to the tree.
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.tree_edge[e]
    }

    /// The tree-edge mask, indexed by graph edge id.
    pub fn tree_edge_mask(&self) -> &[bool] {
        &self.tree_edge
    }

    /// The diameter `d_T` of the tree itself (not of the host graph).
    pub fn diameter(&self) -> usize {
        self.diameter
    }

    /// Height: maximum depth.
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Walks from `v` to `ancestor`, yielding the parent edges used.
    ///
    /// # Panics
    ///
    /// Panics if `ancestor` is not actually an ancestor of `v`.
    pub fn path_edges_to_ancestor(&self, v: NodeId, ancestor: NodeId) -> Vec<EdgeId> {
        let mut out = Vec::new();
        let mut cur = v;
        while cur != ancestor {
            let e = self
                .parent_edge(cur)
                .expect("must reach ancestor before the root");
            out.push(e);
            cur = self
                .parent(cur)
                .expect("must reach ancestor before the root");
        }
        out
    }

    /// Lowest common ancestor of `a` and `b` by depth walking.
    pub fn lca(&self, mut a: NodeId, mut b: NodeId) -> NodeId {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("deeper node has a parent");
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("deeper node has a parent");
        }
        while a != b {
            a = self.parent[a].expect("non-root");
            b = self.parent[b].expect("non-root");
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::generators;

    #[test]
    fn bfs_tree_of_grid() {
        let g = generators::grid(4, 4);
        let t = RootedTree::bfs(&g, 0);
        assert_eq!(t.root(), 0);
        assert_eq!(t.preorder().len(), 16);
        assert_eq!(t.preorder()[0], 0);
        // Exactly n-1 tree edges.
        assert_eq!(t.tree_edge_mask().iter().filter(|&&b| b).count(), 15);
        // BFS tree of a grid from a corner has diameter ≤ 2·(grid diameter).
        assert!(
            t.diameter() >= 6 && t.diameter() <= 12,
            "d={}",
            t.diameter()
        );
        assert_eq!(t.depth(15), 6);
    }

    #[test]
    fn path_tree_diameter() {
        let g = generators::path(10);
        let t = RootedTree::bfs(&g, 0);
        assert_eq!(t.diameter(), 9);
        assert_eq!(t.height(), 9);
        let mid = RootedTree::bfs(&g, 5);
        assert_eq!(mid.diameter(), 9);
        assert_eq!(mid.height(), 5);
    }

    #[test]
    fn lca_and_paths() {
        let g = generators::binary_tree(15);
        let t = RootedTree::bfs(&g, 0);
        assert_eq!(t.lca(7, 8), 3);
        assert_eq!(t.lca(7, 14), 0);
        let edges = t.path_edges_to_ancestor(7, 1);
        assert_eq!(edges.len(), 2);
        assert!(t.path_edges_to_ancestor(5, 5).is_empty());
    }

    #[test]
    fn from_parent_pointers_roundtrip() {
        let g = generators::cycle(6);
        // Spanning path 0-1-2-3-4-5 (skip the wrap edge).
        let parent = vec![None, Some(0), Some(1), Some(2), Some(3), Some(4)];
        let t = RootedTree::from_parent_pointers(&g, 0, parent);
        assert_eq!(t.diameter(), 5);
        assert!(!t.is_tree_edge(g.edge_between(0, 5).unwrap()));
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn bfs_rejects_disconnected() {
        let g = minex_graphs::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let _ = RootedTree::bfs(&g, 0);
    }

    #[test]
    fn singleton() {
        let g = generators::path(1);
        let t = RootedTree::bfs(&g, 0);
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.children(0), &[] as &[NodeId]);
    }
}

//! # minex-core
//!
//! Tree-restricted low-congestion shortcuts — the primary contribution of
//! *“Minor Excluded Network Families Admit Fast Distributed Algorithms”*
//! (Haeupler, Li, Zuzic; PODC 2018).
//!
//! The crate provides the complete framework:
//!
//! * [`Partition`] — parts (Definition 9);
//! * [`RootedTree`] — the spanning tree `T` of Definition 10;
//! * [`Shortcut`] + [`measure_quality`] — Definitions 10–13, exactly;
//! * [`construct`] — both the structure-oblivious constructions the
//!   distributed algorithm runs (\[HIZ16a\]-style capped pruning) and the
//!   witness-based constructions realizing the paper's existence proofs
//!   (Theorem 5 via tree decompositions, Theorem 7 via clique-sum trees
//!   with folding, Lemma 9/Theorem 8 via cells and apices);
//! * [`cells`] — cell partitions and β-cell-assignment (Definitions 14–15,
//!   Lemmas 4–6);
//! * [`gates`] — combinatorial gates on embedded planar graphs
//!   (Definitions 16–17, Lemma 7), machine-checking all six gate
//!   properties;
//! * [`ShortcutPlan`] — the plan-once / query-many bundle (tree, parts,
//!   shortcut, quality) that `minex::Solver` sessions cache and serve.
//!
//! ## Example
//!
//! ```
//! use minex_core::construct::{AutoCappedBuilder, ShortcutBuilder};
//! use minex_core::{measure_quality, Partition, RootedTree};
//! use minex_graphs::generators;
//!
//! let g = generators::triangulated_grid(8, 8);
//! let tree = RootedTree::bfs(&g, 0);
//! let parts = Partition::new(&g, vec![vec![0, 1, 2], vec![60, 61, 62]])?;
//! let shortcut = AutoCappedBuilder.build(&g, &tree, &parts);
//! let report = measure_quality(&g, &tree, &parts, &shortcut);
//! assert!(report.quality <= report.tree_diameter * 3);
//! # Ok::<(), minex_core::PartitionError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cells;
pub mod construct;
pub mod gates;
mod parts;
mod plan;
mod shortcut;
mod spanning;

pub use parts::{Partition, PartitionError};
pub use plan::{PlanRepairStats, ShortcutPlan};
pub use shortcut::{
    augmented_part_diameter, measure_quality, validate_tree_restricted, NotTreeRestricted,
    QualityReport, Shortcut,
};
pub use spanning::RootedTree;

//! Combinatorial gates on embedded planar graphs (Definitions 16–17,
//! Lemma 7).
//!
//! Given a straight-line lattice embedding and a cell partition, the
//! construction follows the paper's proof: for each pair of adjacent cells,
//! pick *extremal* inter-cell edges whose cycle (through the two cell
//! spanning trees) encloses every inter-cell edge of the pair; the enclosed
//! regions form a laminar family; each gate `S` is the region minus the
//! interiors of maximal nested regions, and its fence `F` is the part of
//! `S` on the bounding cycles.
//!
//! Everything is computed with exact integer geometry
//! ([`minex_graphs::geometry`]), and [`validate_gates`] machine-checks all
//! six properties of Definition 17, reporting the measured `s` parameter
//! (the paper proves `s ≤ 36·d` for planar graphs).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use minex_graphs::embedding::StraightLineEmbedding;
use minex_graphs::geometry::{point_in_polygon, polygon_area2, segment_in_polygon, Containment};
use minex_graphs::{traversal, Graph, NodeId};

use crate::cells::CellPartition;

/// One gate/fence pair of a combinatorial gate collection.
#[derive(Debug, Clone)]
pub struct Gate {
    /// The two cells the gate spans.
    pub cells: (usize, usize),
    /// The gate vertex set `S`.
    pub gate: Vec<NodeId>,
    /// The fence `F ⊆ S`.
    pub fence: Vec<NodeId>,
    /// The bounding cycle (polygon vertices, in order).
    pub cycle: Vec<NodeId>,
}

/// A collection of gates covering all inter-cell edges.
#[derive(Debug, Clone)]
pub struct GateCollection {
    /// The gates, one per adjacent cell pair.
    pub gates: Vec<Gate>,
    /// Measured `s = Σ|F| / |C|` (property 6 reports `Σ|F| ≤ s·|C|`).
    pub s_parameter: f64,
}

/// Violations of the gate construction or of Definition 17.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// Two regions cross (the laminar-family assumption failed).
    NotLaminar {
        /// Indices of the crossing gates.
        gates: (usize, usize),
    },
    /// No extremal pair encloses all inter-cell edges of a cell pair.
    NoExtremalPair {
        /// The offending cell pair.
        cells: (usize, usize),
    },
    /// Property 1 failed: a fence vertex is outside its gate.
    FenceOutsideGate {
        /// The offending gate index.
        gate: usize,
    },
    /// Property 2 failed: a boundary vertex of a gate is not in its fence.
    BoundaryNotFenced {
        /// The offending gate index.
        gate: usize,
        /// The unfenced boundary vertex.
        node: NodeId,
    },
    /// Property 3 failed: an inter-cell edge is covered by no gate.
    EdgeUncovered {
        /// The uncovered edge's endpoints.
        edge: (NodeId, NodeId),
    },
    /// Property 4 failed: a gate intersects more than two cells.
    TooManyCells {
        /// The offending gate index.
        gate: usize,
    },
    /// Property 5 failed: a non-fence vertex appears in two gates.
    InteriorShared {
        /// The shared vertex.
        node: NodeId,
    },
    /// The cell partition does not cover every node (required here).
    UncoveredNode(NodeId),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::NotLaminar { gates } => {
                write!(f, "regions of gates {} and {} cross", gates.0, gates.1)
            }
            GateError::NoExtremalPair { cells } => write!(
                f,
                "no extremal edge pair encloses all inter-cell edges of cells {:?}",
                cells
            ),
            GateError::FenceOutsideGate { gate } => {
                write!(f, "gate {gate} has a fence vertex outside the gate")
            }
            GateError::BoundaryNotFenced { gate, node } => {
                write!(f, "gate {gate} boundary vertex {node} is not fenced")
            }
            GateError::EdgeUncovered { edge } => {
                write!(f, "inter-cell edge {:?} not covered by any gate", edge)
            }
            GateError::TooManyCells { gate } => {
                write!(f, "gate {gate} intersects more than two cells")
            }
            GateError::InteriorShared { node } => {
                write!(f, "non-fence vertex {node} appears in two gates")
            }
            GateError::UncoveredNode(v) => write!(f, "node {v} not covered by any cell"),
        }
    }
}

impl Error for GateError {}

/// Builds the Lemma 7 gate collection for an embedded planar graph whose
/// nodes are fully covered by `cells`.
///
/// # Errors
///
/// Returns [`GateError::UncoveredNode`] if some node has no cell,
/// [`GateError::NoExtremalPair`] if extremal edges cannot be found (a sign
/// of a non-plane embedding), or [`GateError::NotLaminar`] if the resulting
/// regions cross.
pub fn planar_gates(
    g: &Graph,
    emb: &StraightLineEmbedding,
    cells: &CellPartition,
) -> Result<GateCollection, GateError> {
    for v in 0..g.n() {
        if cells.cell_of(v).is_none() {
            return Err(GateError::UncoveredNode(v));
        }
    }
    // Spanning tree of each cell (BFS within the induced subgraph), stored
    // as global parent pointers.
    let mut parent: Vec<Option<NodeId>> = vec![None; g.n()];
    let mut depth: Vec<usize> = vec![0; g.n()];
    for cell in cells.cells() {
        let (sub, map) = g.induced_subgraph(cell);
        let bfs = traversal::bfs(&sub, 0);
        let back: Vec<NodeId> = cell.clone();
        for (local, &p) in bfs.parent.iter().enumerate() {
            if let Some(p) = p {
                parent[back[local]] = Some(back[p]);
                depth[back[local]] = bfs.dist[local];
            }
        }
        let _ = map;
    }
    // Inter-cell edges per unordered cell pair.
    let mut pairs: HashMap<(usize, usize), Vec<(NodeId, NodeId)>> = HashMap::new();
    for (_, u, v) in g.edges() {
        let (cu, cv) = (
            cells.cell_of(u).expect("covered"),
            cells.cell_of(v).expect("covered"),
        );
        if cu != cv {
            let key = (cu.min(cv), cu.max(cv));
            // Orient the edge as (node in key.0, node in key.1).
            let (a, b) = if cu == key.0 { (u, v) } else { (v, u) };
            pairs.entry(key).or_default().push((a, b));
        }
    }
    let tree_path = |a: NodeId, b: NodeId| -> Vec<NodeId> {
        // Path between two nodes of the same cell tree, via parent pointers.
        let (mut x, mut y) = (a, b);
        let mut left = vec![x];
        let mut right = vec![y];
        while depth[x] > depth[y] {
            x = parent[x].expect("deeper node has parent");
            left.push(x);
        }
        while depth[y] > depth[x] {
            y = parent[y].expect("deeper node has parent");
            right.push(y);
        }
        while x != y {
            x = parent[x].expect("non-root");
            y = parent[y].expect("non-root");
            left.push(x);
            right.push(y);
        }
        right.pop();
        right.reverse();
        left.extend(right);
        left
    };
    // Extremal cycle per adjacent pair.
    let mut cycles: Vec<((usize, usize), Vec<NodeId>)> = Vec::new();
    let mut sorted_pairs: Vec<_> = pairs.into_iter().collect();
    sorted_pairs.sort_by_key(|(k, _)| *k);
    for (key, edges) in sorted_pairs {
        if edges.len() == 1 {
            let (a, b) = edges[0];
            cycles.push((key, vec![a, b]));
            continue;
        }
        let mut best: Option<(i128, Vec<NodeId>)> = None;
        for (i1, &(ui, uj)) in edges.iter().enumerate() {
            for &(vi, vj) in edges.iter().skip(i1 + 1) {
                // Cycle: ui →(T_i)→ vi → vj →(T_j)→ uj → ui.
                let mut poly: Vec<NodeId> = tree_path(ui, vi);
                let back = tree_path(vj, uj);
                poly.extend(back);
                // Simple-polygon sanity: all vertices distinct.
                let mut sorted = poly.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != poly.len() {
                    continue;
                }
                let coords: Vec<(i64, i64)> = poly.iter().map(|&v| emb.coord(v)).collect();
                // Must enclose every inter-cell edge of this pair.
                let covers = edges
                    .iter()
                    .all(|&(a, b)| segment_in_polygon(&coords, emb.coord(a), emb.coord(b)));
                if !covers {
                    continue;
                }
                let area = polygon_area2(&coords);
                if best.as_ref().map_or(true, |(ba, _)| area > *ba) {
                    best = Some((area, poly.clone()));
                }
            }
        }
        match best {
            Some((_, poly)) => cycles.push((key, poly)),
            None => return Err(GateError::NoExtremalPair { cells: key }),
        }
    }
    // Laminar nesting among regions.
    let polys: Vec<Vec<(i64, i64)>> = cycles
        .iter()
        .map(|(_, poly)| poly.iter().map(|&v| emb.coord(v)).collect())
        .collect();
    let k = cycles.len();
    // nested_in[i] = smallest-area j strictly containing i.
    let mut nested_in: Vec<Option<usize>> = vec![None; k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            match region_relation(&polys[i], &polys[j]) {
                RegionRelation::Crossing => return Err(GateError::NotLaminar { gates: (i, j) }),
                RegionRelation::FirstInsideSecond
                    if nested_in[i].map_or(true, |cur| {
                        polygon_area2(&polys[j]) < polygon_area2(&polys[cur])
                    }) =>
                {
                    nested_in[i] = Some(j);
                }
                _ => {}
            }
        }
    }
    // Gates and fences.
    let mut gates = Vec::with_capacity(k);
    let mut total_fence = 0usize;
    for (i, ((ca, cb), cycle)) in cycles.iter().enumerate() {
        let children: Vec<usize> = (0..k).filter(|&j| nested_in[j] == Some(i)).collect();
        let mut gate_nodes = Vec::new();
        let mut fence_nodes = Vec::new();
        let candidates: Vec<NodeId> = cells.cells()[*ca]
            .iter()
            .chain(cells.cells()[*cb].iter())
            .copied()
            .collect();
        for &v in &candidates {
            let p = emb.coord(v);
            if point_in_polygon(&polys[i], p) == Containment::Outside {
                continue;
            }
            // Exclude points strictly inside a maximal nested region.
            let in_child_interior = children
                .iter()
                .any(|&c| point_in_polygon(&polys[c], p) == Containment::Inside);
            if in_child_interior {
                continue;
            }
            gate_nodes.push(v);
            // Fence: on this cycle or on a maximal nested cycle.
            let on_own = cycle.contains(&v);
            let on_child = children.iter().any(|&c| cycles[c].1.contains(&v));
            if on_own || on_child {
                fence_nodes.push(v);
            }
        }
        total_fence += fence_nodes.len();
        gates.push(Gate {
            cells: (*ca, *cb),
            gate: gate_nodes,
            fence: fence_nodes,
            cycle: cycle.clone(),
        });
    }
    let s_parameter = if cells.is_empty() {
        0.0
    } else {
        total_fence as f64 / cells.len() as f64
    };
    Ok(GateCollection { gates, s_parameter })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionRelation {
    Disjoint,
    FirstInsideSecond,
    SecondInsideFirst,
    Crossing,
}

/// Classifies two simple lattice polygons, assuming they do not properly
/// cross edges (true for cycles of one plane graph).
fn region_relation(a: &[(i64, i64)], b: &[(i64, i64)]) -> RegionRelation {
    let classify = |poly: &[(i64, i64)], pts: &[(i64, i64)]| -> (usize, usize) {
        let mut inside = 0;
        let mut outside = 0;
        for &p in pts {
            match point_in_polygon(poly, p) {
                Containment::Inside => inside += 1,
                Containment::Outside => outside += 1,
                Containment::Boundary => {}
            }
        }
        (inside, outside)
    };
    let (a_in_b, a_out_b) = classify(b, a);
    let (b_in_a, b_out_a) = classify(a, b);
    if a_in_b > 0 && a_out_b > 0 || b_in_a > 0 && b_out_a > 0 {
        return RegionRelation::Crossing;
    }
    if a_in_b > 0 {
        return RegionRelation::FirstInsideSecond;
    }
    if b_in_a > 0 {
        return RegionRelation::SecondInsideFirst;
    }
    // All-boundary overlap: fall back to area comparison (identical or
    // touching regions).
    let (aa, ab) = (polygon_area2(a), polygon_area2(b));
    if a_out_b == 0 && b_out_a == 0 {
        if aa <= ab {
            RegionRelation::FirstInsideSecond
        } else {
            RegionRelation::SecondInsideFirst
        }
    } else {
        RegionRelation::Disjoint
    }
}

/// Machine-checks the six properties of Definition 17 and returns the
/// measured `s` parameter (`Σ|F| / |C|`).
///
/// # Errors
///
/// Returns the first violated property.
pub fn validate_gates(
    g: &Graph,
    cells: &CellPartition,
    collection: &GateCollection,
) -> Result<f64, GateError> {
    let mut gate_membership: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    for (gi, gate) in collection.gates.iter().enumerate() {
        // Property 1: F ⊆ S.
        for f in &gate.fence {
            if !gate.gate.contains(f) {
                return Err(GateError::FenceOutsideGate { gate: gi });
            }
        }
        // Property 4: gate intersects ≤ 2 cells.
        let mut touched: Vec<usize> = gate.gate.iter().filter_map(|&v| cells.cell_of(v)).collect();
        touched.sort_unstable();
        touched.dedup();
        if touched.len() > 2 {
            return Err(GateError::TooManyCells { gate: gi });
        }
        // Property 2: ∂S ⊆ F.
        let in_gate: std::collections::HashSet<NodeId> = gate.gate.iter().copied().collect();
        for &v in &gate.gate {
            let on_boundary = g.neighbors(v).any(|(w, _)| !in_gate.contains(&w));
            if on_boundary && !gate.fence.contains(&v) {
                return Err(GateError::BoundaryNotFenced { gate: gi, node: v });
            }
        }
        for &v in &gate.gate {
            gate_membership[v].push(gi);
        }
    }
    // Property 3: every inter-cell edge covered by some gate.
    for (_, u, v) in g.edges() {
        let (cu, cv) = (cells.cell_of(u), cells.cell_of(v));
        if cu != cv {
            let covered = collection
                .gates
                .iter()
                .any(|gate| gate.gate.contains(&u) && gate.gate.contains(&v));
            if !covered {
                return Err(GateError::EdgeUncovered { edge: (u, v) });
            }
        }
    }
    // Property 5: non-fence vertices belong to at most one gate.
    for (v, membership) in gate_membership.iter().enumerate() {
        let non_fence: Vec<usize> = membership
            .iter()
            .copied()
            .filter(|&gi| !collection.gates[gi].fence.contains(&v))
            .collect();
        if non_fence.len() > 1 {
            return Err(GateError::InteriorShared { node: v });
        }
    }
    // Property 6: report the measured s.
    let total_fence: usize = collection.gates.iter().map(|g2| g2.fence.len()).sum();
    Ok(if cells.is_empty() {
        0.0
    } else {
        total_fence as f64 / cells.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;
    use minex_graphs::generators;

    /// Grid with stripes of `width` columns as cells.
    fn striped_grid(
        rows: usize,
        cols: usize,
        width: usize,
    ) -> (Graph, StraightLineEmbedding, CellPartition) {
        let (g, emb) = generators::grid_embedded(rows, cols);
        let mut cell_sets: Vec<Vec<NodeId>> = Vec::new();
        let mut c = 0;
        while c < cols {
            let hi = (c + width).min(cols);
            let mut cell = Vec::new();
            for r in 0..rows {
                for cc in c..hi {
                    cell.push(r * cols + cc);
                }
            }
            cell_sets.push(cell);
            c = hi;
        }
        let cells = CellPartition::new(&g, cell_sets);
        (g, emb, cells)
    }

    #[test]
    fn gates_on_striped_grid_validate() {
        let (g, emb, cells) = striped_grid(6, 12, 3);
        let collection = planar_gates(&g, &emb, &cells).unwrap();
        let s = validate_gates(&g, &cells, &collection).unwrap();
        assert_eq!(collection.gates.len(), 3);
        // Lemma 7 shape: s ≤ 36·d (here d = cell diameter).
        assert!(
            s <= 36.0 * (cells.diameter() as f64 + 1.0),
            "s={s}, d={}",
            cells.diameter()
        );
    }

    #[test]
    fn gates_on_bfs_cells_of_triangulated_grid() {
        let (g, emb) = generators::triangulated_grid_embedded(8, 8);
        // Concurrent BFS from 4 seeds — the Section 2.3.3 cell partition.
        let seeds = [0, 7, 56, 63];
        let bfs = minex_graphs::traversal::multi_source_bfs(&g, &seeds);
        let mut cell_sets: Vec<Vec<NodeId>> = vec![Vec::new(); seeds.len()];
        for v in 0..g.n() {
            cell_sets[bfs.source_of[v]].push(v);
        }
        let cells = CellPartition::new(&g, cell_sets);
        let collection = planar_gates(&g, &emb, &cells).unwrap();
        let s = validate_gates(&g, &cells, &collection).unwrap();
        assert!(s <= 36.0 * (cells.diameter() as f64 + 1.0), "s={s}");
    }

    #[test]
    fn single_intercell_edge_degenerates_to_segment() {
        // Two 1-column cells joined by grid edges: cells of a 1×2 grid.
        let (g, emb) = generators::grid_embedded(1, 2);
        let cells = CellPartition::new(&g, vec![vec![0], vec![1]]);
        let collection = planar_gates(&g, &emb, &cells).unwrap();
        assert_eq!(collection.gates.len(), 1);
        assert_eq!(collection.gates[0].cycle.len(), 2);
        validate_gates(&g, &cells, &collection).unwrap();
    }

    #[test]
    fn lemma4_consequence_beta_is_bounded() {
        // Lemma 4: with an s-gate, either a part meets ≤ 2 cells or some
        // cell meets ≤ 2s parts. Check the peeling's measured β against 2s.
        let (g, emb, cells) = striped_grid(8, 16, 2);
        let collection = planar_gates(&g, &emb, &cells).unwrap();
        let s = validate_gates(&g, &cells, &collection).unwrap();
        // Row parts cross every stripe.
        let rows: Vec<Vec<NodeId>> = (0..8)
            .map(|r| (0..16).map(|c| r * 16 + c).collect())
            .collect();
        let parts = Partition::new(&g, rows).unwrap();
        let asg = crate::cells::assign_cells(&cells, &parts);
        assert!(
            (asg.beta as f64) <= (2.0 * s).max(2.0) * 2.0,
            "beta={} vs 2s={}",
            asg.beta,
            2.0 * s
        );
    }

    #[test]
    fn rejects_uncovered_nodes() {
        let (g, emb) = generators::grid_embedded(2, 2);
        let cells = CellPartition::new(&g, vec![vec![0, 1]]);
        let err = planar_gates(&g, &emb, &cells).unwrap_err();
        assert_eq!(err, GateError::UncoveredNode(2));
    }
}

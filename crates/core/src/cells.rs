//! Cell partitions and β-cell-assignment (Definitions 14–15, Lemmas 4–6).
//!
//! A *cell partition* splits the nodes into disjoint, connected,
//! low-diameter cells — canonically the subtrees left when an apex is
//! removed from the spanning tree. The *assignment* relation `R ⊆ C × P`
//! pairs cells with parts so that
//!
//! * every part is related to all cells it intersects **except at most 2**
//!   (property (i) of Definition 15), and
//! * no cell is related to more than `β` parts (property (ii)).
//!
//! [`assign_cells`] implements the peeling induction of Lemmas 5–6
//! directly: repeatedly retire a part that meets ≤ 2 cells, else retire the
//! cell currently meeting the fewest parts. The combinatorial-gate theory
//! (Lemma 4 / Lemma 7) guarantees that on planar-ish graphs the minimum cell
//! degree stays `O(s)`; here β is *measured* and reported.

use minex_graphs::{traversal, Graph, NodeId};

use crate::parts::Partition;
use crate::spanning::RootedTree;

/// A partition of (some) nodes into disjoint, connected, low-diameter cells.
#[derive(Debug, Clone)]
pub struct CellPartition {
    cells: Vec<Vec<NodeId>>,
    cell_of: Vec<Option<usize>>,
    /// Maximum measured cell diameter (within the cell's induced subgraph).
    diameter: usize,
}

impl CellPartition {
    /// Validates and wraps cells (disjoint, connected, non-empty).
    ///
    /// # Panics
    ///
    /// Panics on overlapping, empty, or disconnected cells — cells are
    /// produced by our own constructions, so violations are programmer
    /// errors.
    pub fn new(g: &Graph, cells: Vec<Vec<NodeId>>) -> Self {
        let mut cell_of: Vec<Option<usize>> = vec![None; g.n()];
        let mut diameter = 0;
        for (i, cell) in cells.iter().enumerate() {
            assert!(!cell.is_empty(), "cell {i} is empty");
            for &v in cell {
                assert!(cell_of[v].is_none(), "node {v} in two cells");
                cell_of[v] = Some(i);
            }
            let (sub, _) = g.induced_subgraph(cell);
            let d = traversal::diameter_double_sweep(&sub)
                .expect("cells must induce connected subgraphs");
            diameter = diameter.max(d);
        }
        CellPartition {
            cells,
            cell_of,
            diameter,
        }
    }

    /// The cells obtained by deleting `removed` (e.g. the apices) from the
    /// spanning tree: each remaining subtree is one cell (the canonical
    /// construction of Section 2.3.3, with BFS-subtree cells).
    pub fn from_tree_removal(g: &Graph, tree: &RootedTree, removed: &[NodeId]) -> Self {
        let mut is_removed = vec![false; g.n()];
        for &v in removed {
            is_removed[v] = true;
        }
        let mut uf = minex_graphs::UnionFind::new(g.n());
        for v in 0..g.n() {
            if is_removed[v] {
                continue;
            }
            if let Some(p) = tree.parent(v) {
                if !is_removed[p] {
                    uf.union(v, p);
                }
            }
        }
        let mut cells_map: std::collections::HashMap<usize, Vec<NodeId>> = Default::default();
        for (v, &removed) in is_removed.iter().enumerate() {
            if !removed {
                cells_map.entry(uf.find(v)).or_default().push(v);
            }
        }
        let mut cells: Vec<Vec<NodeId>> = cells_map.into_values().collect();
        cells.sort_unstable();
        CellPartition::new(g, cells)
    }

    /// The cells.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// The cell containing `v`, if any.
    pub fn cell_of(&self, v: NodeId) -> Option<usize> {
        self.cell_of[v]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Maximum measured cell diameter.
    pub fn diameter(&self) -> usize {
        self.diameter
    }
}

/// The result of the Lemma 5 peeling.
#[derive(Debug, Clone)]
pub struct CellAssignment {
    /// `related[p]` — cells related to part `p` in `R`.
    pub related: Vec<Vec<usize>>,
    /// `unrelated[p]` — cells intersecting part `p` but *not* related
    /// (guaranteed ≤ 2 per part).
    pub unrelated: Vec<Vec<usize>>,
    /// `cell_load[c]` — number of parts related to cell `c`.
    pub cell_load: Vec<usize>,
    /// The measured β: the maximum cell load.
    pub beta: usize,
}

/// Computes a cell assignment by the peeling induction of Lemma 5.
///
/// Both Definition 15 properties hold by construction; `beta` reports the
/// measured property-(ii) bound.
pub fn assign_cells(cells: &CellPartition, parts: &Partition) -> CellAssignment {
    let np = parts.len();
    let nc = cells.len();
    // Incidence sets.
    let mut cells_of_part: Vec<Vec<usize>> = vec![Vec::new(); np];
    let mut parts_of_cell: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for (p, part) in parts.parts().iter().enumerate() {
        let mut cs: Vec<usize> = part.iter().filter_map(|&v| cells.cell_of(v)).collect();
        cs.sort_unstable();
        cs.dedup();
        for &c in &cs {
            parts_of_cell[c].push(p);
        }
        cells_of_part[p] = cs;
    }
    let mut part_alive = vec![true; np];
    let mut cell_alive = vec![true; nc];
    let mut part_deg: Vec<usize> = cells_of_part.iter().map(Vec::len).collect();
    let mut cell_deg: Vec<usize> = parts_of_cell.iter().map(Vec::len).collect();
    let mut related = vec![Vec::new(); np];
    let mut unrelated = vec![Vec::new(); np];
    let mut cell_load = vec![0usize; nc];
    let mut beta = 0;
    let mut parts_left: usize = np;
    let mut cells_left: usize = nc;
    while parts_left > 0 && cells_left > 0 {
        // Retire every part currently meeting ≤ 2 live cells.
        let mut progressed = false;
        for p in 0..np {
            if part_alive[p] && part_deg[p] <= 2 {
                part_alive[p] = false;
                parts_left -= 1;
                progressed = true;
                for &c in &cells_of_part[p] {
                    if cell_alive[c] {
                        unrelated[p].push(c);
                        cell_deg[c] -= 1;
                    }
                }
            }
        }
        if progressed {
            continue;
        }
        // Retire the minimum-degree live cell, relating it to its parts.
        let c = (0..nc)
            .filter(|&c| cell_alive[c])
            .min_by_key(|&c| cell_deg[c])
            .expect("cells_left > 0");
        cell_alive[c] = false;
        cells_left -= 1;
        for &p in &parts_of_cell[c] {
            if part_alive[p] {
                related[p].push(c);
                cell_load[c] += 1;
                part_deg[p] -= 1;
            }
        }
        beta = beta.max(cell_load[c]);
    }
    // Cells exhausted: surviving parts have every cell related already.
    // Parts exhausted: surviving cells relate to nobody. Either way done.
    CellAssignment {
        related,
        unrelated,
        cell_load,
        beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::generators;

    #[test]
    fn tree_removal_cells_on_wheel() {
        let n = 16;
        let g = generators::wheel(n);
        let hub = n - 1;
        let tree = RootedTree::bfs(&g, hub);
        let cells = CellPartition::from_tree_removal(&g, &tree, &[hub]);
        // BFS tree from the hub is a star: removing the hub leaves rim
        // singletons.
        assert_eq!(cells.len(), n - 1);
        assert_eq!(cells.diameter(), 0);
        assert_eq!(cells.cell_of(hub), None);
    }

    #[test]
    fn tree_removal_cells_on_apex_grid() {
        let (g, apex) = generators::apex_grid(6, 6, 7);
        let tree = RootedTree::bfs(&g, apex);
        let cells = CellPartition::from_tree_removal(&g, &tree, &[apex]);
        // Cells cover all non-apex nodes.
        let covered: usize = cells.cells().iter().map(Vec::len).sum();
        assert_eq!(covered, g.n() - 1);
        // Each cell's diameter is bounded by twice the tree height.
        assert!(cells.diameter() <= 2 * tree.height());
    }

    #[test]
    fn assignment_properties_hold() {
        let (g, apex) = generators::apex_grid(8, 8, 3);
        let tree = RootedTree::bfs(&g, apex);
        let cells = CellPartition::from_tree_removal(&g, &tree, &[apex]);
        // Column parts of the grid (connected via column edges).
        let parts_vec: Vec<Vec<NodeId>> = (0..8)
            .map(|c| (0..8).map(|r| r * 8 + c).collect())
            .collect();
        let parts = Partition::new(&g, parts_vec).unwrap();
        let asg = assign_cells(&cells, &parts);
        for p in 0..parts.len() {
            assert!(asg.unrelated[p].len() <= 2, "part {p} skips too many cells");
            // related + unrelated = all intersecting cells.
            let mut all: Vec<usize> = asg.related[p]
                .iter()
                .chain(asg.unrelated[p].iter())
                .copied()
                .collect();
            all.sort_unstable();
            all.dedup();
            let mut expect: Vec<usize> = parts
                .part(p)
                .iter()
                .filter_map(|&v| cells.cell_of(v))
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(all, expect, "part {p} incidence mismatch");
        }
        assert_eq!(asg.beta, asg.cell_load.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn small_parts_need_no_assignment() {
        let g = generators::grid(4, 4);
        let tree = RootedTree::bfs(&g, 0);
        let cells = CellPartition::from_tree_removal(&g, &tree, &[]);
        assert_eq!(cells.len(), 1);
        let parts = Partition::new(&g, vec![vec![0, 1], vec![14, 15]]).unwrap();
        let asg = assign_cells(&cells, &parts);
        // Every part meets ≤ 2 cells (there is only one), so nothing is
        // related and everything is within the 2-cell allowance.
        assert!(asg.related.iter().all(Vec::is_empty));
        assert_eq!(asg.beta, 0);
    }

    #[test]
    fn empty_parts_or_cells() {
        let g = generators::path(4);
        let tree = RootedTree::bfs(&g, 0);
        let cells = CellPartition::from_tree_removal(&g, &tree, &[]);
        let parts = Partition::new(&g, vec![]).unwrap();
        let asg = assign_cells(&cells, &parts);
        assert!(asg.related.is_empty());
        assert_eq!(asg.beta, 0);
    }

    #[test]
    #[should_panic(expected = "in two cells")]
    fn rejects_overlapping_cells() {
        let g = generators::path(4);
        let _ = CellPartition::new(&g, vec![vec![0, 1], vec![1, 2]]);
    }
}

//! The structure-oblivious congestion-capped construction.
//!
//! This is the algorithmic side of the paper: Theorem 1 invokes the
//! \[HIZ16a\] result that near-optimal tree-restricted shortcuts can be
//! constructed distributively *without looking at any structure*. Our
//! implementation mirrors that construction's cap-and-prune shape
//! deterministically:
//!
//! 1. start from each part's Steiner subtree (block 1, unbounded
//!    congestion);
//! 2. on every tree edge whose load exceeds the cap `c`, keep the `c` parts
//!    with the largest *demand* (number of part nodes whose root path uses
//!    the edge) and evict the rest — eviction splits a part's subtree into
//!    more blocks but never hurts other parts;
//! 3. [`AutoCappedBuilder`] sweeps caps in powers of two and keeps the
//!    measured-quality winner, standing in for the binary search of the
//!    distributed construction.
//!
//! On families that admit good shortcuts the sweep finds them; on hard
//! instances (E7) every cap is bad — exactly the dichotomy the paper needs.

use minex_graphs::{EdgeId, Graph};

use crate::construct::{ShortcutBuilder, SteinerBuilder};
use crate::parts::Partition;
use crate::shortcut::{measure_quality, Shortcut};
use crate::spanning::RootedTree;

/// Congestion-capped pruning of Steiner-tree shortcuts at a fixed cap.
#[derive(Debug, Clone, Copy)]
pub struct CappedBuilder {
    /// Maximum number of parts allowed to keep any single tree edge.
    pub cap: usize,
}

impl CappedBuilder {
    /// Creates a builder with the given congestion cap (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "congestion cap must be positive");
        CappedBuilder { cap }
    }
}

impl ShortcutBuilder for CappedBuilder {
    fn name(&self) -> &'static str {
        "capped"
    }

    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        let base = SteinerBuilder.build(g, tree, parts);
        // Demand of (part, edge) = number of part nodes in the subtree below
        // the edge, computed bottom-up over the part's Steiner edges.
        // Edges are (v, parent(v)); identify each by its child endpoint v.
        let mut loads: Vec<Vec<(usize, u32)>> = vec![Vec::new(); g.m()]; // edge -> (part, demand)
        let mut cnt = vec![0u32; g.n()];
        for (i, part) in parts.parts().iter().enumerate() {
            let edges = base.edges(i);
            if edges.is_empty() {
                continue;
            }
            for &v in part {
                cnt[v] = 1;
            }
            // Child endpoint of a tree edge is the deeper endpoint; process
            // deepest first so counts accumulate upward.
            let mut by_depth: Vec<EdgeId> = edges.to_vec();
            by_depth.sort_by_key(|&e| {
                let (u, v) = g.endpoints(e);
                std::cmp::Reverse(tree.depth(u).max(tree.depth(v)))
            });
            for &e in &by_depth {
                let (u, v) = g.endpoints(e);
                let (child, parent) = if tree.depth(u) > tree.depth(v) {
                    (u, v)
                } else {
                    (v, u)
                };
                loads[e].push((i, cnt[child]));
                cnt[parent] += cnt[child];
            }
            // Reset the touched counters.
            for &v in part {
                cnt[v] = 0;
            }
            for &e in edges {
                let (u, v) = g.endpoints(e);
                cnt[u] = 0;
                cnt[v] = 0;
            }
        }
        // Evict low-demand parts from overloaded edges.
        let mut evict: Vec<Vec<EdgeId>> = vec![Vec::new(); parts.len()];
        for (e, users) in loads.iter_mut().enumerate() {
            if users.len() > self.cap {
                users.sort_by_key(|&(part, demand)| (std::cmp::Reverse(demand), part));
                for &(part, _) in users.iter().skip(self.cap) {
                    evict[part].push(e);
                }
            }
        }
        let per_part = (0..parts.len())
            .map(|i| {
                let banned = &evict[i];
                base.edges(i)
                    .iter()
                    .copied()
                    .filter(|e| !banned.contains(e))
                    .collect()
            })
            .collect();
        Shortcut::new(per_part)
    }
}

/// Sweeps congestion caps in powers of two (plus the uncapped Steiner
/// shortcut) and returns the measured-quality winner — the centralized
/// stand-in for the \[HIZ16a\] distributed search over qualities.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutoCappedBuilder;

impl ShortcutBuilder for AutoCappedBuilder {
    fn name(&self) -> &'static str {
        "auto-capped"
    }

    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        let mut best: Option<(usize, Shortcut)> = None;
        let mut consider = |s: Shortcut| {
            let q = measure_quality(g, tree, parts, &s).quality;
            if best.as_ref().map_or(true, |(bq, _)| q < *bq) {
                best = Some((q, s));
            }
        };
        consider(SteinerBuilder.build(g, tree, parts));
        let mut cap = 1;
        while cap <= parts.len().max(1) {
            consider(CappedBuilder::new(cap).build(g, tree, parts));
            cap *= 2;
        }
        best.expect("at least one candidate").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::validate_tree_restricted;
    use minex_graphs::generators;

    /// Adversarial workload for Steiner shortcuts: parts on one long path,
    /// all of whose Steiner trees share the path edges near the root.
    fn path_with_interval_parts(n: usize, k: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::path(n);
        let t = RootedTree::bfs(&g, 0);
        let size = n / k;
        let parts: Vec<Vec<usize>> = (0..k)
            .map(|i| (i * size..(i + 1) * size).collect())
            .collect();
        let p = Partition::new(&g, parts).unwrap();
        (g, t, p)
    }

    #[test]
    fn cap_bounds_congestion() {
        let (g, t, parts) = path_with_interval_parts(64, 8);
        for cap in [1, 2, 4] {
            let s = CappedBuilder::new(cap).build(&g, &t, &parts);
            validate_tree_restricted(&s, &t).unwrap();
            let q = measure_quality(&g, &t, &parts, &s);
            assert!(
                q.congestion <= cap,
                "cap {cap}: congestion {}",
                q.congestion
            );
        }
    }

    #[test]
    fn capping_trades_blocks_for_congestion() {
        let (g, t, parts) = path_with_interval_parts(64, 8);
        let steiner = SteinerBuilder.build(&g, &t, &parts);
        let qs = measure_quality(&g, &t, &parts, &steiner);
        let capped = CappedBuilder::new(1).build(&g, &t, &parts);
        let qc = measure_quality(&g, &t, &parts, &capped);
        assert_eq!(qs.block, 1);
        assert!(qc.congestion <= 1);
        assert!(qc.block >= qs.block, "eviction can only split blocks");
    }

    #[test]
    fn high_cap_equals_steiner() {
        let (g, t, parts) = path_with_interval_parts(40, 4);
        let s1 = CappedBuilder::new(100).build(&g, &t, &parts);
        let s2 = SteinerBuilder.build(&g, &t, &parts);
        assert_eq!(s1, s2);
    }

    #[test]
    fn auto_capped_never_worse_than_steiner() {
        let workloads = [
            path_with_interval_parts(64, 8),
            path_with_interval_parts(60, 3),
        ];
        for (g, t, parts) in workloads {
            let auto = AutoCappedBuilder.build(&g, &t, &parts);
            validate_tree_restricted(&auto, &t).unwrap();
            let qa = measure_quality(&g, &t, &parts, &auto);
            let qs = measure_quality(&g, &t, &parts, &SteinerBuilder.build(&g, &t, &parts));
            assert!(qa.quality <= qs.quality);
        }
    }

    #[test]
    fn auto_capped_on_grid_voronoi() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let g = generators::triangulated_grid(12, 12);
        let t = RootedTree::bfs(&g, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let seeds: Vec<usize> = (0..12).map(|_| rng.random_range(0..g.n())).collect();
        let bfs = minex_graphs::traversal::multi_source_bfs(&g, &seeds);
        let labels: Vec<Option<usize>> = bfs.source_of.iter().map(|&s| Some(s)).collect();
        let parts = Partition::from_labels(&g, &labels).unwrap();
        let s = AutoCappedBuilder.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        // Sanity: quality must beat the trivial per-part-diameter bound by a
        // wide margin on a planar mesh.
        assert!(q.quality <= 6 * t.diameter(), "quality {}", q.quality);
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn rejects_zero_cap() {
        let _ = CappedBuilder::new(0);
    }
}

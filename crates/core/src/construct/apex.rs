//! The apex construction (Lemma 9 / Theorem 8).
//!
//! Adding an apex can collapse the network diameter while the underlying
//! planar part stays "long", so per-part Steiner subtrees (whose quality
//! scales with the *tree* diameter) remain fine — but a naive construction
//! on the apex-free graph would not be competitive with the new diameter.
//! The Lemma 9 construction:
//!
//! 1. parts containing an apex get the entire spanning tree;
//! 2. removing the apices splits the BFS tree into low-diameter *cells*;
//! 3. a β-cell-assignment `R` (Lemma 5 peeling over the cell/part incidence)
//!    hands each part the cell subtrees `T[C]` of its related cells plus the
//!    *uplink* edges connecting those cells to the apices — global
//!    shortcuts;
//! 4. inside each cell, an inner builder serves the part fragments — local
//!    shortcuts.
//!
//! Block parameter: `1 + 2·b_inner` (≤ 2 unrelated cells per part, one
//! merged global block); congestion: `β + c_inner + q` — both measured.

use minex_graphs::{EdgeId, Graph, NodeId};

use crate::cells::{assign_cells, CellPartition};
use crate::construct::ShortcutBuilder;
use crate::parts::Partition;
use crate::shortcut::Shortcut;
use crate::spanning::RootedTree;

/// Lemma 9 / Theorem 8 shortcut construction for apex graphs.
#[derive(Debug)]
pub struct ApexBuilder<B> {
    apices: Vec<NodeId>,
    inner: B,
}

impl<B: ShortcutBuilder> ApexBuilder<B> {
    /// Creates the builder for a graph whose apices are `apices`; `inner`
    /// serves the per-cell local problems (the planar / genus+vortex family
    /// builder in the paper; any structure-oblivious builder here).
    pub fn new(apices: Vec<NodeId>, inner: B) -> Self {
        assert!(!apices.is_empty(), "apex builder needs at least one apex");
        ApexBuilder { apices, inner }
    }
}

impl<B: ShortcutBuilder> ShortcutBuilder for ApexBuilder<B> {
    fn name(&self) -> &'static str {
        "apex"
    }

    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        let mut per_part: Vec<Vec<EdgeId>> = vec![Vec::new(); parts.len()];
        let all_tree_edges: Vec<EdgeId> = (0..g.m()).filter(|&e| tree.is_tree_edge(e)).collect();
        let mut is_apex = vec![false; g.n()];
        for &a in &self.apices {
            is_apex[a] = true;
        }
        // (1) Parts containing an apex use the whole tree.
        let mut handled = vec![false; parts.len()];
        for (i, part) in parts.parts().iter().enumerate() {
            if part.iter().any(|&v| is_apex[v]) {
                per_part[i] = all_tree_edges.clone();
                handled[i] = true;
            }
        }
        // (2) Cells = components of T - apices.
        let cells = CellPartition::from_tree_removal(g, tree, &self.apices);
        if cells.is_empty() {
            return Shortcut::new(per_part);
        }
        // Restrict the assignment to unhandled parts by giving handled parts
        // no cell incidence: build a filtered view of parts. Simplest: run
        // the peeling on all parts, then ignore handled ones.
        let assignment = assign_cells(&cells, parts);
        // Precompute per-cell: subtree edges T[C] and apex uplink edges.
        let mut cell_tree_edges: Vec<Vec<EdgeId>> = Vec::with_capacity(cells.len());
        let mut cell_uplinks: Vec<Vec<EdgeId>> = Vec::with_capacity(cells.len());
        for cell in cells.cells() {
            let mut inside = Vec::new();
            let mut uplinks = Vec::new();
            for &v in cell {
                if let (Some(p), Some(e)) = (tree.parent(v), tree.parent_edge(v)) {
                    if cells.cell_of(p) == cells.cell_of(v) {
                        inside.push(e);
                    } else if is_apex[p] {
                        uplinks.push(e);
                    }
                }
                // Tree edges to apex children of v are that child's uplink
                // from the other side; collect them here too so the cell
                // reaches every adjacent apex.
                for &c in tree.children(v) {
                    if is_apex[c] {
                        uplinks.push(tree.parent_edge(c).expect("child edge"));
                    }
                }
            }
            cell_tree_edges.push(inside);
            cell_uplinks.push(uplinks);
        }
        // (3) Global shortcuts from the assignment.
        for (p, related) in assignment.related.iter().enumerate() {
            if handled[p] {
                continue;
            }
            for &c in related {
                per_part[p].extend_from_slice(&cell_tree_edges[c]);
                per_part[p].extend_from_slice(&cell_uplinks[c]);
            }
        }
        // (4) Local shortcuts inside every cell (related or not — the ≤ 2
        // unrelated cells per part are exactly why local shortcuts exist).
        for (ci, cell) in cells.cells().iter().enumerate() {
            let (sub, map) = g.induced_subgraph(cell);
            if sub.n() <= 1 {
                continue;
            }
            // Root the cell tree at its topmost node.
            let root_global = *cell
                .iter()
                .min_by_key(|&&v| tree.depth(v))
                .expect("cell non-empty");
            let parent_local: Vec<Option<usize>> = cell
                .iter()
                .map(|&v| {
                    tree.parent(v).and_then(|p| {
                        if cells.cell_of(p) == Some(ci) {
                            map[p]
                        } else {
                            None
                        }
                    })
                })
                .collect();
            // Cell subtrees of T are connected, so this spans `sub` iff the
            // induced subgraph is connected — which it is (cells come from
            // tree components).
            let local_tree = RootedTree::from_parent_pointers(
                &sub,
                map[root_global].expect("root in cell"),
                parent_local,
            );
            // Part fragments within the cell, split into connected pieces.
            let mut pieces: Vec<Vec<usize>> = Vec::new();
            let mut owners: Vec<usize> = Vec::new();
            let mut frag: std::collections::HashMap<usize, Vec<usize>> = Default::default();
            for &v in cell {
                if let Some(p) = parts.part_of(v) {
                    if !handled[p] {
                        frag.entry(p).or_default().push(map[v].expect("in cell"));
                    }
                }
            }
            let mut frag_sorted: Vec<(usize, Vec<usize>)> = frag.into_iter().collect();
            frag_sorted.sort_by_key(|(p, _)| *p);
            for (p, nodes) in frag_sorted {
                for piece in split_connected(&sub, &nodes) {
                    owners.push(p);
                    pieces.push(piece);
                }
            }
            if pieces.is_empty() {
                continue;
            }
            let local_parts = Partition::new(&sub, pieces).expect("pieces connected");
            let local = self.inner.build(&sub, &local_tree, &local_parts);
            // Map back (all local tree edges are real tree edges of T).
            let mut local_to_global_edge = vec![usize::MAX; sub.m()];
            for (le, lu, lv) in sub.edges() {
                let gu = cell[lu];
                let gv = cell[lv];
                local_to_global_edge[le] = g.edge_between(gu, gv).expect("induced edge exists");
            }
            for (piece, &owner) in owners.iter().enumerate() {
                for &le in local.edges(piece) {
                    let ge = local_to_global_edge[le];
                    if tree.is_tree_edge(ge) {
                        per_part[owner].push(ge);
                    }
                }
            }
        }
        Shortcut::new(per_part)
    }
}

/// Splits `nodes` into connected components within `g`.
fn split_connected(g: &Graph, nodes: &[usize]) -> Vec<Vec<usize>> {
    let member: std::collections::HashSet<usize> = nodes.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for &start in nodes {
        if seen.contains(&start) {
            continue;
        }
        let mut piece = Vec::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(v) = stack.pop() {
            piece.push(v);
            for (w, _) in g.neighbors(v) {
                if member.contains(&w) && !seen.contains(&w) {
                    seen.insert(w);
                    stack.push(w);
                }
            }
        }
        piece.sort_unstable();
        out.push(piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::SteinerBuilder;
    use crate::shortcut::{measure_quality, validate_tree_restricted};
    use minex_graphs::generators;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn wheel_rim_parts_get_constant_quality() {
        // The motivating example: wheel = cycle + apex. Rim parts would have
        // Θ(n) diameter alone; with apex shortcuts the quality is O(1)-ish.
        let n = 64;
        let g = generators::wheel(n);
        let hub = n - 1;
        let t = RootedTree::bfs(&g, hub);
        let rim_parts: Vec<Vec<NodeId>> = (0..(n - 1) / 8)
            .map(|i| (8 * i..8 * i + 8).collect())
            .collect();
        let parts = Partition::new(&g, rim_parts).unwrap();
        let b = ApexBuilder::new(vec![hub], SteinerBuilder);
        let s = b.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        // The BFS tree from the hub has diameter 2, cells are singletons:
        // blocks stay small and congestion is bounded by β + O(1).
        assert!(q.block <= 12, "block={}", q.block);
        assert!(q.quality <= 64, "quality={}", q.quality);
    }

    #[test]
    fn apex_grid_with_column_parts() {
        let (g, apex) = generators::apex_grid(10, 10, 4);
        let t = RootedTree::bfs(&g, apex);
        let cols: Vec<Vec<NodeId>> = (0..10)
            .map(|c| (0..10).map(|r| r * 10 + c).collect())
            .collect();
        let parts = Partition::new(&g, cols).unwrap();
        let b = ApexBuilder::new(vec![apex], SteinerBuilder);
        let s = b.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        assert!(q.block <= 2 + 2 * 3, "block={}", q.block);
    }

    #[test]
    fn part_containing_apex_gets_whole_tree() {
        let (g, apex) = generators::apex_grid(4, 4, 1);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![apex, 0], vec![5, 6]]).unwrap();
        let b = ApexBuilder::new(vec![apex], SteinerBuilder);
        let s = b.build(&g, &t, &parts);
        assert_eq!(s.edges(0).len(), g.n() - 1);
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.per_part_blocks[0], 1);
    }

    #[test]
    fn multiple_apices() {
        let base = generators::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let (g, apices) = generators::add_random_apices(&base, 3, 0.15, &mut rng);
        let t = RootedTree::bfs(&g, apices[0]);
        let seeds: Vec<usize> = (0..6).map(|_| rng.random_range(0..base.n())).collect();
        let bfs = minex_graphs::traversal::multi_source_bfs(&g, &seeds);
        let labels: Vec<Option<usize>> = (0..g.n())
            .map(|v| {
                if apices.contains(&v) {
                    None
                } else {
                    Some(bfs.source_of[v])
                }
            })
            .collect();
        // Labels may induce disconnected "parts" (apices removed): split.
        let mut groups: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (v, &l) in labels.iter().enumerate() {
            if let Some(l) = l {
                groups.entry(l).or_default().push(v);
            }
        }
        let mut grouped: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
        grouped.sort_unstable_by_key(|(l, _)| *l);
        let mut pieces = Vec::new();
        for (_, nodes) in grouped {
            pieces.extend(split_connected(&g, &nodes));
        }
        let parts = Partition::new(&g, pieces).unwrap();
        let b = ApexBuilder::new(apices, SteinerBuilder);
        let s = b.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
    }
}

//! Shortcut constructions.
//!
//! Two kinds of constructors exist, mirroring the paper's split between
//! algorithm and analysis:
//!
//! * **Structure-oblivious** ([`WholeTreeBuilder`], [`SteinerBuilder`],
//!   [`CappedBuilder`], [`AutoCappedBuilder`]) — run on any network without
//!   a witness, like the actual distributed algorithm of \[HIZ16a\] that
//!   Theorem 1 invokes.
//! * **Witness-based** ([`CliqueSumShortcutBuilder`],
//!   [`TreewidthBuilder`], [`ApexBuilder`]) — consume the structure records
//!   produced by the generators and realize the existence proofs of
//!   Theorems 5, 7, and 8 so their promised parameters can be measured.

mod apex;
mod capped;
mod clique_sum;
mod naive;
mod treewidth;

pub use apex::ApexBuilder;
pub use capped::{AutoCappedBuilder, CappedBuilder};
pub use clique_sum::CliqueSumShortcutBuilder;
pub use naive::{SteinerBuilder, WholeTreeBuilder};
pub use treewidth::TreewidthBuilder;

use minex_graphs::Graph;

use crate::parts::Partition;
use crate::shortcut::Shortcut;
use crate::spanning::RootedTree;

/// A tree-restricted shortcut construction: given the network, a spanning
/// tree, and the parts, produce one edge set per part (all on the tree).
///
/// The trait is **object safe** end to end: references and boxes to erased
/// builders (`&dyn ShortcutBuilder`, `Box<dyn ShortcutBuilder>`) implement
/// the trait themselves, so session types like `minex::Solver` and plan
/// types like [`crate::ShortcutPlan`] can hold heterogeneous builders
/// behind one pointer without generics.
pub trait ShortcutBuilder: std::fmt::Debug {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// Builds the shortcut. Implementations must return tree-restricted
    /// assignments covering exactly `parts.len()` parts.
    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut;

    /// Incrementally rebuilds only the `dirty` parts of `prev`, reusing
    /// every other part's edges unchanged — the hook
    /// [`ShortcutPlan::repair`](crate::ShortcutPlan::repair) calls after
    /// edge churn.
    ///
    /// `prev` already has clean parts' edge ids remapped to `g`'s ids;
    /// dirty slots hold stale data and must be recomputed against
    /// `(g, tree, parts)`. An implementation may only override this if its
    /// per-part output depends on nothing outside that part's nodes and
    /// the tree structure they hang on — builders with cross-part coupling
    /// (capped congestion balancing, global quality sweeps) must keep the
    /// default, which returns `None` to request a full
    /// [`build`](Self::build).
    fn rebuild_parts(
        &self,
        _g: &Graph,
        _tree: &RootedTree,
        _parts: &Partition,
        _prev: &Shortcut,
        _dirty: &[usize],
    ) -> Option<Shortcut> {
        None
    }
}

impl<B: ShortcutBuilder + ?Sized> ShortcutBuilder for &B {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        (**self).build(g, tree, parts)
    }
    fn rebuild_parts(
        &self,
        g: &Graph,
        tree: &RootedTree,
        parts: &Partition,
        prev: &Shortcut,
        dirty: &[usize],
    ) -> Option<Shortcut> {
        (**self).rebuild_parts(g, tree, parts, prev, dirty)
    }
}

impl ShortcutBuilder for Box<dyn ShortcutBuilder + '_> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        (**self).build(g, tree, parts)
    }
    fn rebuild_parts(
        &self,
        g: &Graph,
        tree: &RootedTree,
        parts: &Partition,
        prev: &Shortcut,
        dirty: &[usize],
    ) -> Option<Shortcut> {
        (**self).rebuild_parts(g, tree, parts, prev, dirty)
    }
}

// `Box<dyn ShortcutBuilder + Send>` is what long-lived owned sessions hold
// (a `Solver` must cross threads); it forwards the same way.
impl ShortcutBuilder for Box<dyn ShortcutBuilder + Send + '_> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        (**self).build(g, tree, parts)
    }
    fn rebuild_parts(
        &self,
        g: &Graph,
        tree: &RootedTree,
        parts: &Partition,
        prev: &Shortcut,
        dirty: &[usize],
    ) -> Option<Shortcut> {
        (**self).rebuild_parts(g, tree, parts, prev, dirty)
    }
}

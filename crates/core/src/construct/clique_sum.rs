//! The Theorem 7 construction: shortcuts for k-clique-sums of graphs from a
//! family with good shortcuts.
//!
//! For every part the construction builds
//!
//! * a **global shortcut**: with `h_P` the lowest-common-ancestor bag group
//!   of the part, the part may use every tree edge lying in a bag strictly
//!   below a qualifying child of `h_P` (Figure 2 of the paper); and
//! * **local shortcuts**: inside each bag group, the bag is *repaired* —
//!   partial cliques are completed (`B⁰_h`) and the spanning tree is
//!   re-connected through contracted outside components (`T²_h`) — an inner
//!   builder runs on the repaired instance, and only real tree edges that do
//!   not lie inside a parent separator survive (Figure 3).
//!
//! Run with [`CliqueSumTree`] depth directly (Lemma 1: congestion
//! `k · d_DT + c_F`) or with Theorem 7's folded tree (congestion
//! `O(k log² n) + c_F` at the price of double edges). Both variants are
//! exposed so experiment E10 can ablate the folding.

use minex_decomp::{CliqueSumTree, Lca};
use minex_graphs::{EdgeId, Graph, GraphBuilder, NodeId};

use crate::construct::ShortcutBuilder;
use crate::parts::Partition;
use crate::shortcut::Shortcut;
use crate::spanning::RootedTree;

/// Shortcut construction over a clique-sum decomposition tree.
#[derive(Debug)]
pub struct CliqueSumShortcutBuilder<B> {
    tree: CliqueSumTree,
    fold: bool,
    inner: B,
}

impl<B: ShortcutBuilder> CliqueSumShortcutBuilder<B> {
    /// Uses the decomposition tree as-is (the Lemma 1 construction, whose
    /// congestion scales with the tree depth `d_DT`).
    pub fn unfolded(tree: CliqueSumTree, inner: B) -> Self {
        CliqueSumShortcutBuilder {
            tree,
            fold: false,
            inner,
        }
    }

    /// Applies the Theorem 7 folding first (depth `O(log² n)`, double
    /// edges).
    pub fn folded(tree: CliqueSumTree, inner: B) -> Self {
        CliqueSumShortcutBuilder {
            tree,
            fold: true,
            inner,
        }
    }

    /// The decomposition tree in use.
    pub fn decomposition(&self) -> &CliqueSumTree {
        &self.tree
    }
}

/// A uniform view over the grouped (possibly folded) decomposition tree.
struct GroupedView {
    /// `groups[f]` — original bag indices merged into grouped node `f`.
    groups: Vec<Vec<usize>>,
    group_of: Vec<usize>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
    /// Links (indices into the record) crossing `f → parent(f)`.
    links_to_parent: Vec<Vec<usize>>,
}

impl GroupedView {
    fn identity(tree: &CliqueSumTree) -> Self {
        let b = tree.len();
        let mut children = vec![Vec::new(); b];
        for i in 0..b {
            if let Some(p) = tree.parent(i) {
                children[p].push(i);
            }
        }
        GroupedView {
            groups: (0..b).map(|i| vec![i]).collect(),
            group_of: (0..b).collect(),
            parent: (0..b).map(|i| tree.parent(i)).collect(),
            children,
            depth: (0..b).map(|i| tree.depth(i)).collect(),
            links_to_parent: (0..b)
                .map(|i| tree.parent_link_index(i).into_iter().collect())
                .collect(),
        }
    }

    fn folded(tree: &CliqueSumTree) -> Self {
        let f = tree.fold();
        GroupedView {
            groups: f.groups,
            group_of: f.group_of,
            parent: f.parent,
            children: f.children,
            depth: f.depth,
            links_to_parent: f.links_to_parent,
        }
    }

    /// The child of `ancestor` on the path toward `descendant`.
    fn child_toward(&self, ancestor: usize, descendant: usize) -> usize {
        let mut cur = descendant;
        while self.depth[cur] > self.depth[ancestor] + 1 {
            cur = self.parent[cur].expect("above the root");
        }
        debug_assert_eq!(self.parent[cur], Some(ancestor));
        cur
    }
}

impl<B: ShortcutBuilder> ShortcutBuilder for CliqueSumShortcutBuilder<B> {
    fn name(&self) -> &'static str {
        if self.fold {
            "clique-sum(folded)"
        } else {
            "clique-sum(unfolded)"
        }
    }

    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        let view = if self.fold {
            GroupedView::folded(&self.tree)
        } else {
            GroupedView::identity(&self.tree)
        };
        let mut per_part: Vec<Vec<EdgeId>> = vec![Vec::new(); parts.len()];
        let bags_of_node = self.tree.bags_of_nodes(g.n());
        global_shortcuts(g, tree, parts, &view, &bags_of_node, &mut per_part);
        local_shortcuts(
            g,
            tree,
            parts,
            &self.tree,
            &view,
            &bags_of_node,
            &self.inner,
            &mut per_part,
        );
        Shortcut::new(per_part)
    }
}

/// Global shortcuts per Figure 2 (grouped-tree version).
fn global_shortcuts(
    g: &Graph,
    tree: &RootedTree,
    parts: &Partition,
    view: &GroupedView,
    bags_of_node: &[Vec<usize>],
    per_part: &mut [Vec<EdgeId>],
) {
    let lca = Lca::new(&view.parent);
    // Per part: LCA group h_P and qualifying children.
    // qual[(child)] buckets parts by (parent = h_P, child on path).
    let mut qual: std::collections::HashMap<(usize, usize), Vec<usize>> = Default::default();
    for (i, part) in parts.parts().iter().enumerate() {
        let mut touched: Vec<usize> = part
            .iter()
            .flat_map(|&v| bags_of_node[v].iter().map(|&b| view.group_of[b]))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        if touched.is_empty() {
            continue;
        }
        let h = lca.lca_of_set(&touched);
        for &x in &touched {
            if x != h {
                let child = view.child_toward(h, x);
                qual.entry((h, child)).or_default().push(i);
            }
        }
    }
    // minex-lint: allow(D001) each bucket is sorted+deduped independently; visit order cannot reach any result
    for bucket in qual.values_mut() {
        bucket.sort_unstable();
        bucket.dedup();
    }
    // Per tree edge: walk up from every group containing the edge; hand the
    // edge to parts bucketed at each (ancestor, path-child), unless the edge
    // also lies in a bag of the ancestor group.
    for (e, u, v) in g.edges() {
        if !tree.is_tree_edge(e) {
            continue;
        }
        let bags_e = intersect_sorted(&bags_of_node[u], &bags_of_node[v]);
        if bags_e.is_empty() {
            continue;
        }
        let mut groups_e: Vec<usize> = bags_e.iter().map(|&b| view.group_of[b]).collect();
        groups_e.sort_unstable();
        groups_e.dedup();
        let in_group = |f: usize| -> bool {
            view.groups[f]
                .iter()
                .any(|&b| bags_e.binary_search(&b).is_ok())
        };
        let mut visited: std::collections::HashSet<(usize, usize)> = Default::default();
        for &f in &groups_e {
            let mut cur = f;
            while let Some(a) = view.parent[cur] {
                if !visited.insert((a, cur)) {
                    break;
                }
                if let Some(bucket) = qual.get(&(a, cur)) {
                    if !in_group(a) {
                        for &part in bucket {
                            per_part[part].push(e);
                        }
                    }
                }
                cur = a;
            }
        }
    }
}

/// Local shortcuts per Figure 3 (grouped-tree version with double edges).
#[allow(clippy::too_many_arguments)]
fn local_shortcuts<B: ShortcutBuilder>(
    g: &Graph,
    tree: &RootedTree,
    parts: &Partition,
    cst: &CliqueSumTree,
    view: &GroupedView,
    bags_of_node: &[Vec<usize>],
    inner: &B,
    per_part: &mut [Vec<EdgeId>],
) {
    let links = &cst.record().links;
    // stamp arrays reused across groups.
    let n = g.n();
    let mut in_vg_stamp = vec![usize::MAX; n];
    let mut comp_stamp = vec![usize::MAX; n];
    for (a, group) in view.groups.iter().enumerate() {
        // ---- The group's node set Vg.
        let mut vg: Vec<NodeId> = group
            .iter()
            .flat_map(|&b| cst.bag(b).iter().copied())
            .collect();
        vg.sort_unstable();
        vg.dedup();
        if vg.len() <= 1 {
            continue;
        }
        for &x in &vg {
            in_vg_stamp[x] = a;
        }
        let in_vg = |x: NodeId| in_vg_stamp[x] == a;
        let mut local_of: std::collections::HashMap<NodeId, usize> = Default::default();
        for (li, &x) in vg.iter().enumerate() {
            local_of.insert(x, li);
        }
        // ---- Incident links: to parent, to grouped children, internal.
        let mut incident_links: Vec<usize> = view.links_to_parent[a].clone();
        for &c in &view.children[a] {
            incident_links.extend_from_slice(&view.links_to_parent[c]);
        }
        for (li, (p, c, _)) in links.iter().enumerate() {
            if view.group_of[*p] == a && view.group_of[*c] == a {
                incident_links.push(li);
            }
        }
        incident_links.sort_unstable();
        incident_links.dedup();
        // ---- B⁰: induced subgraph + completed partial cliques.
        let mut lb = GraphBuilder::new(vg.len());
        for &x in &vg {
            for (w, _) in g.neighbors(x) {
                if x < w && in_vg(w) {
                    lb.add_edge(local_of[&x], local_of[&w])
                        .expect("induced edge");
                }
            }
        }
        for &li in &incident_links {
            let sep = &links[li].2;
            for (i1, &s) in sep.iter().enumerate() {
                for &t in sep.iter().skip(i1 + 1) {
                    if in_vg(s) && in_vg(t) {
                        lb.add_edge(local_of[&s], local_of[&t])
                            .expect("clique fill");
                    }
                }
            }
        }
        let local_graph = lb.build();
        // ---- T² forest: real tree edges inside Vg, then star edges through
        // outside components, cycle-free via union-find.
        let mut uf = minex_graphs::UnionFind::new(vg.len());
        let mut forest_adj: Vec<Vec<usize>> = vec![Vec::new(); vg.len()];
        let add_forest_edge = |uf: &mut minex_graphs::UnionFind,
                               forest_adj: &mut Vec<Vec<usize>>,
                               x: usize,
                               y: usize|
         -> bool {
            if uf.union(x, y) {
                forest_adj[x].push(y);
                forest_adj[y].push(x);
                true
            } else {
                false
            }
        };
        for &x in &vg {
            if let (Some(p), Some(_)) = (tree.parent(x), tree.parent_edge(x)) {
                if in_vg(p) {
                    add_forest_edge(&mut uf, &mut forest_adj, local_of[&x], local_of[&p]);
                }
            }
        }
        // Outside components of T \ Vg adjacent to Vg.
        let tree_neighbors = |x: NodeId| -> Vec<NodeId> {
            let mut out: Vec<NodeId> = tree.children(x).to_vec();
            if let Some(p) = tree.parent(x) {
                out.push(p);
            }
            out
        };
        for &x in &vg {
            for w in tree_neighbors(x) {
                if in_vg(w) || comp_stamp[w] == a {
                    continue;
                }
                // Flood the component of w in T \ Vg; collect attachments.
                let mut attachments: Vec<NodeId> = Vec::new();
                let mut stack = vec![w];
                comp_stamp[w] = a;
                let mut sample = w;
                while let Some(y) = stack.pop() {
                    sample = y;
                    for z in tree_neighbors(y) {
                        if in_vg(z) {
                            attachments.push(z);
                        } else if comp_stamp[z] != a {
                            comp_stamp[z] = a;
                            stack.push(z);
                        }
                    }
                }
                attachments.sort_unstable();
                attachments.dedup();
                if attachments.len() < 2 {
                    continue;
                }
                // Which side of the group does the component live on?
                let side_links: &[usize] = side_links_of(view, a, sample, bags_of_node);
                // Star the attachments within each side clique.
                for &li in side_links {
                    let sep = &links[li].2;
                    let att: Vec<usize> = attachments
                        .iter()
                        .filter(|x2| sep.contains(x2))
                        .map(|x2| local_of[x2])
                        .collect();
                    if att.len() >= 2 {
                        let center = att[0];
                        for &other in &att[1..] {
                            add_forest_edge(&mut uf, &mut forest_adj, center, other);
                        }
                    }
                }
            }
        }
        // ---- Forest components → per-component local problems.
        let (comp_of, comp_count) = uf.labels();
        let mut comp_nodes: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
        for (li, &c) in comp_of.iter().enumerate() {
            comp_nodes[c].push(li);
        }
        // Parent separators for the discard rule.
        let parent_seps: Vec<&Vec<NodeId>> = view.links_to_parent[a]
            .iter()
            .map(|&li| &links[li].2)
            .collect();
        for nodes in comp_nodes.iter().filter(|ns| ns.len() >= 2) {
            run_component(
                g,
                tree,
                parts,
                inner,
                &vg,
                &local_graph,
                &forest_adj,
                nodes,
                &parent_seps,
                per_part,
            );
        }
    }
}

/// Determines which grouped-tree edge an outside component hangs off, and
/// returns the link indices of that edge (≤ 2 partial cliques).
fn side_links_of<'a>(
    view: &'a GroupedView,
    a: usize,
    sample_node: NodeId,
    bags_of_node: &[Vec<usize>],
) -> &'a [usize] {
    // Any bag containing the sample determines the side.
    let Some(&b) = bags_of_node[sample_node].first() else {
        return &[];
    };
    let fx = view.group_of[b];
    if fx == a {
        // Sample also lives in this group's bags (possible when the node
        // set overlaps another bag of the same group but is not in Vg —
        // cannot happen since Vg is the full union; be safe).
        return &[];
    }
    // Climb: if a is an ancestor of fx, the side is the child toward fx;
    // otherwise the component hangs on the parent side.
    let mut cur = fx;
    while view.depth[cur] > view.depth[a] {
        let p = view.parent[cur].expect("above root");
        if p == a {
            return &view.links_to_parent[cur];
        }
        cur = p;
    }
    &view.links_to_parent[a]
}

/// Runs the inner builder on one repaired forest component and merges the
/// surviving edges back into the global answer.
#[allow(clippy::too_many_arguments)]
fn run_component<B: ShortcutBuilder>(
    g: &Graph,
    tree: &RootedTree,
    parts: &Partition,
    inner: &B,
    vg: &[NodeId],
    local_graph: &Graph,
    forest_adj: &[Vec<usize>],
    nodes: &[usize],
    parent_seps: &[&Vec<NodeId>],
    per_part: &mut [Vec<EdgeId>],
) {
    // Component-induced subgraph of B⁰.
    let (comp_graph, comp_map) = local_graph.induced_subgraph(nodes);
    let to_comp = |li: usize| comp_map[li].expect("component node mapped");
    // Spanning tree of the component from the forest adjacency.
    let root_local = nodes[0];
    let mut parent_comp: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen = vec![false; nodes.len()];
    seen[to_comp(root_local)] = true;
    let mut queue = std::collections::VecDeque::from([root_local]);
    while let Some(x) = queue.pop_front() {
        for &y in &forest_adj[x] {
            let cy = to_comp(y);
            if !seen[cy] {
                seen[cy] = true;
                parent_comp[cy] = Some(to_comp(x));
                queue.push_back(y);
            }
        }
    }
    if seen.iter().any(|&s| !s) {
        // The forest component did not span its union-find class (cannot
        // happen — labels come from the same forest); bail out defensively.
        return;
    }
    let comp_tree = RootedTree::from_parent_pointers(&comp_graph, to_comp(root_local), parent_comp);
    // Restrict parts: pieces = connected components of P ∩ comp within the
    // component graph.
    let mut owner_of_piece: Vec<usize> = Vec::new();
    let mut pieces: Vec<Vec<usize>> = Vec::new();
    {
        // Group component nodes by part.
        let mut nodes_of_part: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for &li in nodes {
            if let Some(p) = parts.part_of(vg[li]) {
                nodes_of_part.entry(p).or_default().push(to_comp(li));
            }
        }
        let mut sorted: Vec<(usize, Vec<usize>)> = nodes_of_part.into_iter().collect();
        sorted.sort_by_key(|(p, _)| *p);
        for (p, comp_ids) in sorted {
            for piece in split_connected(&comp_graph, &comp_ids) {
                owner_of_piece.push(p);
                pieces.push(piece);
            }
        }
    }
    if pieces.is_empty() {
        return;
    }
    let local_parts =
        Partition::new(&comp_graph, pieces).expect("pieces are connected by construction");
    let local_shortcut = inner.build(&comp_graph, &comp_tree, &local_parts);
    // Map back, keeping only real global tree edges outside parent cliques.
    // comp node -> global node.
    let mut comp_to_global = vec![0usize; comp_graph.n()];
    for &li in nodes {
        comp_to_global[to_comp(li)] = vg[li];
    }
    for (piece_idx, owner) in owner_of_piece.iter().enumerate() {
        for &le in local_shortcut.edges(piece_idx) {
            let (lu, lv) = comp_graph.endpoints(le);
            let (gu, gv) = (comp_to_global[lu], comp_to_global[lv]);
            let Some(ge) = g.edge_between(gu, gv) else {
                continue; // filled clique or star edge
            };
            if !tree.is_tree_edge(ge) {
                continue;
            }
            if parent_seps
                .iter()
                .any(|sep| sep.contains(&gu) && sep.contains(&gv))
            {
                continue; // handled at the parent group
            }
            per_part[*owner].push(ge);
        }
    }
}

/// Splits `nodes` into connected components within `g`.
fn split_connected(g: &Graph, nodes: &[usize]) -> Vec<Vec<usize>> {
    let mut member = std::collections::HashSet::new();
    for &v in nodes {
        member.insert(v);
    }
    let mut reached = std::collections::HashSet::new();
    let mut out = Vec::new();
    for &start in nodes {
        if reached.contains(&start) {
            continue;
        }
        let mut piece = Vec::new();
        let mut stack = vec![start];
        reached.insert(start);
        while let Some(v) = stack.pop() {
            piece.push(v);
            for (w, _) in g.neighbors(v) {
                if member.contains(&w) && !reached.contains(&w) {
                    reached.insert(w);
                    stack.push(w);
                }
            }
        }
        piece.sort_unstable();
        out.push(piece);
    }
    out
}

/// Intersection of two sorted slices.
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::SteinerBuilder;
    use crate::shortcut::{measure_quality, validate_tree_restricted};
    use minex_graphs::generators::{self, CliqueSumBuilder};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    /// Chain of triangulated grids glued along edges: DT is a path.
    fn grid_chain(len: usize) -> (Graph, CliqueSumTree) {
        let comp = generators::triangulated_grid(4, 4);
        let mut builder = CliqueSumBuilder::new(&comp, 2);
        let mut last: Vec<NodeId> = (0..comp.n()).collect();
        for _ in 1..len {
            let host = vec![last[14], last[15]];
            last = builder.glue(&comp, &host, &[0, 1]).unwrap();
        }
        let (g, rec) = builder.build();
        let tree = CliqueSumTree::new(rec).unwrap();
        tree.validate(&g).unwrap();
        (g, tree)
    }

    fn voronoi_parts(g: &Graph, k: usize, seed: u64) -> Partition {
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds: Vec<usize> = (0..k).map(|_| rng.random_range(0..g.n())).collect();
        let bfs = minex_graphs::traversal::multi_source_bfs(g, &seeds);
        let labels: Vec<Option<usize>> = bfs.source_of.iter().map(|&s| Some(s)).collect();
        Partition::from_labels(g, &labels).unwrap()
    }

    #[test]
    fn unfolded_and_folded_are_tree_restricted_and_low_block() {
        let (g, cst) = grid_chain(8);
        let t = RootedTree::bfs(&g, 0);
        let parts = voronoi_parts(&g, 10, 3);
        for fold in [false, true] {
            let b = if fold {
                CliqueSumShortcutBuilder::folded(cst.clone(), SteinerBuilder)
            } else {
                CliqueSumShortcutBuilder::unfolded(cst.clone(), SteinerBuilder)
            };
            let s = b.build(&g, &t, &parts);
            validate_tree_restricted(&s, &t).unwrap();
            let q = measure_quality(&g, &t, &parts, &s);
            // Theorem 7: block ≤ 2k + O(b_F); here k=2, b_F=1 per piece, so
            // a small constant bound must hold.
            assert!(q.block <= 12, "fold={fold}: block={}", q.block);
            assert!(q.congestion >= 1);
        }
    }

    #[test]
    fn parts_spanning_many_bags_get_global_edges() {
        let (g, cst) = grid_chain(6);
        let t = RootedTree::bfs(&g, 0);
        // One giant part: everything.
        let parts = Partition::new(&g, vec![(0..g.n()).collect()]).unwrap();
        let b = CliqueSumShortcutBuilder::unfolded(cst, SteinerBuilder);
        let s = b.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        assert!(q.block <= 4, "block={}", q.block);
    }

    #[test]
    fn single_bag_degenerates_to_local() {
        let comp = generators::triangulated_grid(4, 4);
        let builder = CliqueSumBuilder::new(&comp, 2);
        let (g, rec) = builder.build();
        let cst = CliqueSumTree::new(rec).unwrap();
        let t = RootedTree::bfs(&g, 0);
        let parts = voronoi_parts(&g, 4, 1);
        let b = CliqueSumShortcutBuilder::folded(cst, SteinerBuilder);
        let s = b.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        assert!(q.block <= 3, "block={}", q.block);
    }

    #[test]
    fn folded_congestion_beats_unfolded_on_deep_chains() {
        // E10's shape, in miniature: deep path decomposition tree, one part
        // per bag region — unfolded global congestion grows with depth.
        let (g, cst) = grid_chain(24);
        let t = RootedTree::bfs(&g, 0);
        let parts = voronoi_parts(&g, 24, 7);
        let unfolded =
            CliqueSumShortcutBuilder::unfolded(cst.clone(), SteinerBuilder).build(&g, &t, &parts);
        let folded = CliqueSumShortcutBuilder::folded(cst, SteinerBuilder).build(&g, &t, &parts);
        let qu = measure_quality(&g, &t, &parts, &unfolded);
        let qf = measure_quality(&g, &t, &parts, &folded);
        // The folded variant must not be dramatically worse; on deep chains
        // it should win or tie on congestion.
        assert!(
            qf.congestion <= qu.congestion.max(8) * 2,
            "folded {} vs unfolded {}",
            qf.congestion,
            qu.congestion
        );
    }

    #[test]
    fn random_clique_sums_work() {
        let comps = vec![
            generators::triangulated_grid(3, 3),
            generators::complete(4),
            generators::cycle(6),
        ];
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, rec) = generators::random_clique_sum(&comps, 15, 3, &mut rng);
            let cst = CliqueSumTree::new(rec).unwrap();
            cst.validate(&g).unwrap();
            let t = RootedTree::bfs(&g, 0);
            let parts = voronoi_parts(&g, 8, seed);
            for fold in [false, true] {
                let b = if fold {
                    CliqueSumShortcutBuilder::folded(cst.clone(), SteinerBuilder)
                } else {
                    CliqueSumShortcutBuilder::unfolded(cst.clone(), SteinerBuilder)
                };
                let s = b.build(&g, &t, &parts);
                validate_tree_restricted(&s, &t).unwrap();
            }
        }
    }
}

//! The Theorem 5 construction ([HIZ16b]): treewidth-`k` graphs admit
//! shortcuts with block `O(k)` and congestion `O(k log n)`.
//!
//! A width-`k` tree decomposition *is* a clique-sum decomposition with
//! separators of size ≤ `k+1` (complete each bag intersection), so the
//! construction reduces to [`CliqueSumShortcutBuilder`] over the converted
//! tree, folded for the `log` factor. Bags here have at most `k+1` nodes,
//! so the inner local problems are trivial and served by Steiner subtrees.

use minex_decomp::{CliqueSumTree, TreeDecomposition};
use minex_graphs::generators::CliqueSumRecord;
use minex_graphs::{Graph, NodeId};

use crate::construct::{CliqueSumShortcutBuilder, ShortcutBuilder, SteinerBuilder};
use crate::parts::Partition;
use crate::shortcut::Shortcut;
use crate::spanning::RootedTree;

/// Shortcut construction from a tree-decomposition witness.
#[derive(Debug)]
pub struct TreewidthBuilder {
    inner: CliqueSumShortcutBuilder<SteinerBuilder>,
    width: usize,
}

impl TreewidthBuilder {
    /// Converts the decomposition and prepares the folded clique-sum
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if the decomposition is empty.
    pub fn new(td: &TreeDecomposition) -> Self {
        let width = td.width();
        let record = decomposition_to_record(td);
        let cst = CliqueSumTree::new(record).expect("tree decomposition converts to a tree");
        TreewidthBuilder {
            inner: CliqueSumShortcutBuilder::folded(cst, SteinerBuilder),
            width,
        }
    }

    /// The width of the witness decomposition.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl ShortcutBuilder for TreewidthBuilder {
    fn name(&self) -> &'static str {
        "treewidth"
    }

    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        self.inner.build(g, tree, parts)
    }
}

/// Roots the bag tree at bag 0 and emits a clique-sum record whose
/// separators are the bag intersections.
fn decomposition_to_record(td: &TreeDecomposition) -> CliqueSumRecord {
    let b = td.len();
    assert!(b > 0, "decomposition must have at least one bag");
    let mut links = Vec::new();
    let mut seen = vec![false; b];
    seen[0] = true;
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut order = vec![0usize];
    while let Some(x) = queue.pop_front() {
        for &y in td.bag_neighbors(x) {
            if !seen[y] {
                seen[y] = true;
                order.push(y);
                queue.push_back(y);
                let sep: Vec<NodeId> = td.bags()[x]
                    .iter()
                    .copied()
                    .filter(|v| td.bags()[y].binary_search(v).is_ok())
                    .collect();
                links.push((x, y, sep));
            }
        }
    }
    assert!(seen.into_iter().all(|s| s), "bag tree must be connected");
    // CliqueSumTree requires bag 0 to be the root and each child to appear
    // exactly once, which the BFS guarantees. Bag indices keep their ids.
    let max_sep = links.iter().map(|(_, _, s)| s.len()).max().unwrap_or(0);
    CliqueSumRecord {
        k: max_sep.max(1),
        bags: td.bags().to_vec(),
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{measure_quality, validate_tree_restricted};
    use minex_graphs::generators;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn voronoi(g: &Graph, k: usize, seed: u64) -> Partition {
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds: Vec<usize> = (0..k).map(|_| rng.random_range(0..g.n())).collect();
        let bfs = minex_graphs::traversal::multi_source_bfs(g, &seeds);
        let labels: Vec<Option<usize>> = bfs.source_of.iter().map(|&s| Some(s)).collect();
        Partition::from_labels(g, &labels).unwrap()
    }

    #[test]
    fn k_tree_shortcuts_have_small_block() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in [2usize, 3, 4] {
            let (g, rec) = generators::k_tree(120, k, &mut rng);
            let td = TreeDecomposition::from_k_tree(g.n(), &rec);
            let builder = TreewidthBuilder::new(&td);
            assert_eq!(builder.width(), k);
            let t = RootedTree::bfs(&g, 0);
            let parts = voronoi(&g, 10, k as u64);
            let s = builder.build(&g, &t, &parts);
            validate_tree_restricted(&s, &t).unwrap();
            let q = measure_quality(&g, &t, &parts, &s);
            // Theorem 5 shape: block O(k) — allow a generous constant.
            assert!(q.block <= 6 * (k + 1), "k={k}: block={}", q.block);
        }
    }

    #[test]
    fn grid_decomposition_also_works() {
        let g = generators::grid(5, 30);
        let td = TreeDecomposition::of_grid(5, 30);
        td.validate(&g).unwrap();
        let builder = TreewidthBuilder::new(&td);
        let t = RootedTree::bfs(&g, 0);
        let parts = voronoi(&g, 12, 9);
        let s = builder.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        assert!(q.block <= 4 * (td.width() + 1), "block={}", q.block);
    }

    #[test]
    fn series_parallel_via_heuristic_decomposition() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::series_parallel(100, &mut rng);
        let td = TreeDecomposition::min_degree_heuristic(&g);
        td.validate(&g).unwrap();
        assert!(td.width() <= 2);
        let builder = TreewidthBuilder::new(&td);
        let t = RootedTree::bfs(&g, 0);
        let parts = voronoi(&g, 8, 2);
        let s = builder.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
    }
}

//! Baseline constructions: whole-tree and per-part Steiner subtrees.
//!
//! These bracket the design space. [`WholeTreeBuilder`] achieves block
//! parameter 1 at congestion `N` (the number of parts); [`SteinerBuilder`]
//! also achieves block parameter 1 but only pays congestion where part
//! Steiner trees overlap. On pathological inputs (the wheel's rim parts)
//! Steiner congestion degenerates, which is exactly what the capped
//! construction then repairs.

use minex_graphs::{EdgeId, Graph, NodeId};

use crate::construct::ShortcutBuilder;
use crate::parts::Partition;
use crate::shortcut::Shortcut;
use crate::spanning::RootedTree;

/// Assigns every part the entire spanning tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct WholeTreeBuilder;

impl ShortcutBuilder for WholeTreeBuilder {
    fn name(&self) -> &'static str {
        "whole-tree"
    }

    fn build(&self, g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        let tree_edges: Vec<EdgeId> = (0..g.m()).filter(|&e| tree.is_tree_edge(e)).collect();
        Shortcut::new(vec![tree_edges; parts.len()])
    }
}

/// Assigns each part the minimal subtree of `T` spanning it (the union of
/// tree paths from each part node to the part's LCA).
#[derive(Debug, Clone, Copy, Default)]
pub struct SteinerBuilder;

impl SteinerBuilder {
    /// The Steiner-subtree edges of one node set (public so other builders
    /// can reuse the primitive on local problems).
    pub fn steiner_edges(tree: &RootedTree, nodes: &[NodeId]) -> Vec<EdgeId> {
        steiner_edges_stamped(tree, nodes, &mut vec![usize::MAX; tree.n()], 0)
    }
}

/// Computes Steiner edges using a caller-provided stamp array (so repeated
/// calls avoid reallocation). `stamp` must hold values `!= stamp_value` on
/// entry for all nodes.
fn steiner_edges_stamped(
    tree: &RootedTree,
    nodes: &[NodeId],
    stamp: &mut [usize],
    stamp_value: usize,
) -> Vec<EdgeId> {
    if nodes.len() <= 1 {
        return Vec::new();
    }
    // LCA of the set by iterated pairwise LCA.
    let mut l = nodes[0];
    for &v in &nodes[1..] {
        l = tree.lca(l, v);
    }
    let mut out = Vec::new();
    for &v in nodes {
        let mut cur = v;
        while cur != l && stamp[cur] != stamp_value {
            stamp[cur] = stamp_value;
            out.push(tree.parent_edge(cur).expect("below the LCA"));
            cur = tree.parent(cur).expect("below the LCA");
        }
    }
    out
}

impl ShortcutBuilder for SteinerBuilder {
    fn name(&self) -> &'static str {
        "steiner"
    }

    fn build(&self, _g: &Graph, tree: &RootedTree, parts: &Partition) -> Shortcut {
        let mut stamp = vec![usize::MAX; tree.n()];
        let per_part = parts
            .parts()
            .iter()
            .enumerate()
            .map(|(i, p)| steiner_edges_stamped(tree, p, &mut stamp, i))
            .collect();
        Shortcut::new(per_part)
    }

    /// The Steiner subtree of a part depends only on the part's nodes and
    /// the tree parents on the walk up to their iterated LCA — all of which
    /// are endpoints of the part's own edges. Parts whose walked region is
    /// untouched by a mutation therefore reuse their (remapped) edges
    /// verbatim, and recomputing just the dirty parts reproduces a full
    /// [`build`](ShortcutBuilder::build) byte for byte.
    fn rebuild_parts(
        &self,
        _g: &Graph,
        tree: &RootedTree,
        parts: &Partition,
        prev: &Shortcut,
        dirty: &[usize],
    ) -> Option<Shortcut> {
        let mut per_part: Vec<Vec<EdgeId>> =
            (0..parts.len()).map(|i| prev.edges(i).to_vec()).collect();
        let mut stamp = vec![usize::MAX; tree.n()];
        for &i in dirty {
            per_part[i] = steiner_edges_stamped(tree, parts.part(i), &mut stamp, i);
        }
        Some(Shortcut::new(per_part))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{measure_quality, validate_tree_restricted};
    use minex_graphs::generators;

    #[test]
    fn whole_tree_block_one_congestion_n() {
        let g = generators::grid(5, 5);
        let t = RootedTree::bfs(&g, 0);
        let parts =
            Partition::new(&g, vec![vec![0, 1], vec![3, 4], vec![20, 21], vec![23, 24]]).unwrap();
        let s = WholeTreeBuilder.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.block, 1);
        assert_eq!(q.congestion, 4);
    }

    #[test]
    fn steiner_block_one() {
        let g = generators::grid(6, 6);
        let t = RootedTree::bfs(&g, 0);
        // Two distant snake-shaped parts.
        let parts = Partition::new(&g, vec![vec![0, 1, 2, 8, 14], vec![33, 34, 35]]).unwrap();
        let s = SteinerBuilder.build(&g, &t, &parts);
        validate_tree_restricted(&s, &t).unwrap();
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.block, 1);
        // Distant parts with disjoint Steiner trees may still overlap near
        // the root; congestion stays ≤ 2 parts trivially.
        assert!(q.congestion <= 2);
    }

    #[test]
    fn steiner_of_singleton_part_is_empty() {
        let g = generators::path(5);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![3]]).unwrap();
        let s = SteinerBuilder.build(&g, &t, &parts);
        assert!(s.edges(0).is_empty());
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.block, 1);
        assert_eq!(q.congestion, 0);
    }

    #[test]
    fn steiner_connects_part_through_lca() {
        let g = generators::binary_tree(15);
        let t = RootedTree::bfs(&g, 0);
        // Nodes 7 and 8 are siblings under 3: Steiner tree = {7-3, 8-3}.
        let parts = Partition::new(&g, vec![vec![3, 7, 8]]).unwrap();
        let s = SteinerBuilder.build(&g, &t, &parts);
        assert_eq!(s.edges(0).len(), 2);
        // Nodes 7 and 14: path through the root, 3 + 3 edges.
        let edges = SteinerBuilder::steiner_edges(&t, &[7, 14]);
        assert_eq!(edges.len(), 6);
    }

    #[test]
    fn steiner_wheel_rim_congestion_degenerates() {
        // The Section 1.3.3 example: on a wheel rooted at the hub, a single
        // rim part's Steiner tree uses every spoke — congestion is fine, but
        // split the rim into many parts and the hub edges get shared.
        let n = 32;
        let g = generators::wheel(n);
        let hub = n - 1;
        let t = RootedTree::bfs(&g, hub);
        let rim_parts: Vec<Vec<NodeId>> = (0..(n - 1) / 4)
            .map(|i| (4 * i..4 * i + 4).collect())
            .collect();
        let count = rim_parts.len();
        let parts = Partition::new(&g, rim_parts).unwrap();
        let s = SteinerBuilder.build(&g, &t, &parts);
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.block, 1);
        // Every part uses its spokes only — congestion 1 on a wheel rooted
        // at the hub (BFS tree = spokes), quality is excellent.
        assert!(q.congestion <= 2);
        assert_eq!(parts.len(), count);
    }
}

//! Shortcuts and their quality measures (Definitions 10–13).
//!
//! A shortcut assigns each part a set of extra edges `H_i`. The framework's
//! promise (Theorem 1) is parameterized by three numbers measured here:
//!
//! * **congestion** `c` — the maximum, over edges, of how many parts use the
//!   edge (Definition 11);
//! * **block parameter** `b` — the maximum, over parts, of how many
//!   connected components of `(V, H_i)` contain a `P_i`-node
//!   (Definition 12);
//! * **quality** `q = b·d_T + c` (Definition 13).

use std::error::Error;
use std::fmt;

use minex_graphs::{EdgeId, Graph, GraphView, NodeId, UnionFind};

use crate::parts::Partition;
use crate::spanning::RootedTree;

/// A shortcut: for each part `P_i`, a set of assigned edges `H_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shortcut {
    per_part: Vec<Vec<EdgeId>>,
}

impl Shortcut {
    /// Wraps per-part edge sets; each is sorted and deduplicated.
    pub fn new(mut per_part: Vec<Vec<EdgeId>>) -> Self {
        for h in &mut per_part {
            h.sort_unstable();
            h.dedup();
        }
        Shortcut { per_part }
    }

    /// An empty shortcut for `parts` parts.
    pub fn empty(parts: usize) -> Self {
        Shortcut {
            per_part: vec![Vec::new(); parts],
        }
    }

    /// Number of parts covered.
    pub fn len(&self) -> usize {
        self.per_part.len()
    }

    /// Whether no parts are covered.
    pub fn is_empty(&self) -> bool {
        self.per_part.is_empty()
    }

    /// The edges `H_i` assigned to part `i`, sorted.
    pub fn edges(&self, i: usize) -> &[EdgeId] {
        &self.per_part[i]
    }

    /// Iterates over all `(part, edge)` assignments.
    pub fn assignments(&self) -> impl Iterator<Item = (usize, EdgeId)> + '_ {
        self.per_part
            .iter()
            .enumerate()
            .flat_map(|(i, h)| h.iter().map(move |&e| (i, e)))
    }

    /// Total number of `(part, edge)` assignments.
    pub fn assignment_count(&self) -> usize {
        self.per_part.iter().map(Vec::len).sum()
    }
}

/// Violations of the tree-restriction requirement (Definition 10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotTreeRestricted {
    /// The offending part.
    pub part: usize,
    /// The offending non-tree edge.
    pub edge: EdgeId,
}

impl fmt::Display for NotTreeRestricted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shortcut of part {} uses non-tree edge {}",
            self.part, self.edge
        )
    }
}

impl Error for NotTreeRestricted {}

/// Checks that every assigned edge lies on the tree `T` (Definition 10).
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_tree_restricted(
    shortcut: &Shortcut,
    tree: &RootedTree,
) -> Result<(), NotTreeRestricted> {
    for (part, edge) in shortcut.assignments() {
        if !tree.is_tree_edge(edge) {
            return Err(NotTreeRestricted { part, edge });
        }
    }
    Ok(())
}

/// The measured quality report of a shortcut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityReport {
    /// Block parameter `b` (Definition 12).
    pub block: usize,
    /// Congestion `c` (Definition 11).
    pub congestion: usize,
    /// The tree diameter `d_T` that enters the quality formula.
    pub tree_diameter: usize,
    /// Quality `q = b·d_T + c` (Definition 13).
    pub quality: usize,
    /// Per-part block counts (for distribution plots).
    pub per_part_blocks: Vec<usize>,
    /// Per-edge congestion, indexed by edge id (zero for unused edges).
    pub per_edge_congestion: Vec<usize>,
}

impl QualityReport {
    /// The analytic round budget the framework charges one part-wise
    /// aggregation served by a shortcut of this quality: `q · ⌈log₂ n⌉`
    /// (Theorem 1's `Õ(q)`, with the polylog written out) — the same
    /// figure the solver reports as charged construction rounds per
    /// quality unit. `n` is the network size; `n ≤ 2` charges one round
    /// per quality unit.
    pub fn round_budget(&self, n: usize) -> usize {
        let log_n = if n <= 2 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        self.quality * log_n
    }

    /// The analytic cap on messages any single edge can carry while one
    /// part-wise aggregation runs within [`round_budget`]: the CONGEST
    /// model admits one message per direction per round, so a q-quality
    /// plan bounds observed per-edge congestion by `2 · q · ⌈log₂ n⌉`.
    /// This is the bound E17 validates against measured telemetry
    /// (`CongestionProfile::max_edge_messages` in `minex-congest`).
    ///
    /// [`round_budget`]: Self::round_budget
    pub fn edge_congestion_bound(&self, n: usize) -> usize {
        2 * self.round_budget(n)
    }
}

/// Measures congestion, block parameter, and quality of `shortcut` on
/// `(g, tree, parts)` exactly per Definitions 11–13.
///
/// # Examples
///
/// ```
/// use minex_core::{measure_quality, Partition, RootedTree, Shortcut};
/// use minex_graphs::generators;
///
/// let g = generators::path(5);
/// let t = RootedTree::bfs(&g, 0);
/// let parts = Partition::new(&g, vec![vec![0], vec![4]])?;
/// // Both parts get the middle edge (2,3): congestion 2.
/// let e = g.edge_between(2, 3).unwrap();
/// let s = Shortcut::new(vec![vec![e], vec![e]]);
/// let q = measure_quality(&g, &t, &parts, &s);
/// assert_eq!(q.congestion, 2);
/// // Part {0} has components {2,3} (no P-node) and {0}: one block.
/// assert_eq!(q.block, 1);
/// # Ok::<(), minex_core::PartitionError>(())
/// ```
pub fn measure_quality<G: GraphView + ?Sized>(
    g: &G,
    tree: &RootedTree,
    parts: &Partition,
    shortcut: &Shortcut,
) -> QualityReport {
    assert_eq!(
        shortcut.len(),
        parts.len(),
        "shortcut must cover every part"
    );
    // Congestion (Definition 11).
    let mut per_edge = vec![0usize; g.edge_id_bound()];
    for (_, e) in shortcut.assignments() {
        per_edge[e] += 1;
    }
    let congestion = per_edge.iter().copied().max().unwrap_or(0);
    // Block parameter (Definition 12): per part, components of (V, H_i)
    // containing at least one part node. The induced subgraph G[P_i] is NOT
    // part of (V, H_i) — only the shortcut edges are.
    //
    // Computed *sparsely*: only the part's nodes and the shortcut edges'
    // endpoints participate, so one part costs `O(|P_i| + |H_i|)` instead
    // of the `O(n)` a whole-graph union-find would charge. That difference
    // is what keeps Borůvka-style drivers (one re-plan per fragmentation,
    // with up to `n` fragments) usable on million-node graphs. Isolated
    // nodes of `(V, H_i)` outside `P_i` never affect the count, so the
    // sparse view is exact.
    let mut local_id: Vec<usize> = vec![usize::MAX; g.n()];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut per_part_blocks = Vec::with_capacity(parts.len());
    for (i, part) in parts.parts().iter().enumerate() {
        let assign = |v: NodeId, local_id: &mut Vec<usize>, touched: &mut Vec<NodeId>| {
            if local_id[v] == usize::MAX {
                local_id[v] = touched.len();
                touched.push(v);
            }
        };
        for &v in part {
            assign(v, &mut local_id, &mut touched);
        }
        for &e in shortcut.edges(i) {
            let (u, v) = g.endpoints(e);
            assign(u, &mut local_id, &mut touched);
            assign(v, &mut local_id, &mut touched);
        }
        let mut uf = UnionFind::new(touched.len());
        for &e in shortcut.edges(i) {
            let (u, v) = g.endpoints(e);
            uf.union(local_id[u], local_id[v]);
        }
        let mut roots: Vec<usize> = part.iter().map(|&v| uf.find(local_id[v])).collect();
        roots.sort_unstable();
        roots.dedup();
        per_part_blocks.push(roots.len());
        for &v in &touched {
            local_id[v] = usize::MAX;
        }
        touched.clear();
    }
    let block = per_part_blocks.iter().copied().max().unwrap_or(0);
    let tree_diameter = tree.diameter();
    QualityReport {
        block,
        congestion,
        tree_diameter,
        quality: block * tree_diameter + congestion,
        per_part_blocks,
        per_edge_congestion: per_edge,
    }
}

/// The effective diameter of the augmented part `G[P_i] + H_i` (Section
/// 1.3.3): the eccentricity bound used to reason about how fast information
/// spreads inside one part. Returns the maximum over parts of the diameter
/// of `G[P_i] + H_i` (including shortcut endpoints outside `P_i`).
///
/// Expensive (`O(Σ |component| · |edges|)`); intended for tests and
/// experiments, not inner loops.
pub fn augmented_part_diameter(g: &Graph, parts: &Partition, shortcut: &Shortcut) -> usize {
    let mut worst = 0;
    for (i, part) in parts.parts().iter().enumerate() {
        // Collect the node set and allowed edges of G[P_i] + H_i.
        let mut in_part = vec![false; g.n()];
        for &v in part {
            in_part[v] = true;
        }
        let mut allowed = vec![false; g.m()];
        let mut nodes: Vec<usize> = part.clone();
        for (_, u, v) in g.edges() {
            // G[P_i] edges.
            let e = g.edge_between(u, v).expect("edge exists");
            if in_part[u] && in_part[v] {
                allowed[e] = true;
            }
        }
        for &e in shortcut.edges(i) {
            allowed[e] = true;
            let (u, v) = g.endpoints(e);
            nodes.push(u);
            nodes.push(v);
        }
        nodes.sort_unstable();
        nodes.dedup();
        // BFS from each node of the augmented subgraph.
        for &s in &nodes {
            let dist = minex_graphs::traversal::bfs_masked(g, s, &allowed);
            for &t in &nodes {
                if dist[t] != usize::MAX {
                    worst = worst.max(dist[t]);
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::generators;

    #[test]
    fn analytic_budgets_follow_quality_and_log_n() {
        let g = generators::path(6);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![0, 1, 2], vec![4, 5]]).unwrap();
        let s = Shortcut::empty(2);
        let q = measure_quality(&g, &t, &parts, &s);
        // ⌈log₂ 6⌉ = 3; tiny n collapses to one round per quality unit.
        assert_eq!(q.round_budget(6), q.quality * 3);
        assert_eq!(q.round_budget(2), q.quality);
        assert_eq!(q.round_budget(0), q.quality);
        assert_eq!(q.round_budget(1025), q.quality * 11);
        assert_eq!(q.edge_congestion_bound(6), 2 * q.round_budget(6));
    }

    #[test]
    fn empty_shortcut_blocks_are_part_counts() {
        // With H_i = ∅, every part node is its own component: block = |P_i|.
        let g = generators::path(6);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![0, 1, 2], vec![4, 5]]).unwrap();
        let s = Shortcut::empty(2);
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.per_part_blocks, vec![3, 2]);
        assert_eq!(q.block, 3);
        assert_eq!(q.congestion, 0);
        assert_eq!(q.quality, 3 * t.diameter());
    }

    #[test]
    fn whole_tree_shortcut_has_one_block() {
        let g = generators::cycle(8);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![2, 3], vec![6, 7]]).unwrap();
        let tree_edges: Vec<EdgeId> = (0..g.m()).filter(|&e| t.is_tree_edge(e)).collect();
        let s = Shortcut::new(vec![tree_edges.clone(), tree_edges]);
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.block, 1);
        assert_eq!(q.congestion, 2);
        validate_tree_restricted(&s, &t).unwrap();
    }

    #[test]
    fn tree_restriction_catches_non_tree_edges() {
        let g = generators::cycle(5);
        let t = RootedTree::bfs(&g, 0);
        let non_tree = (0..g.m()).find(|&e| !t.is_tree_edge(e)).unwrap();
        let s = Shortcut::new(vec![vec![non_tree]]);
        assert_eq!(
            validate_tree_restricted(&s, &t),
            Err(NotTreeRestricted {
                part: 0,
                edge: non_tree
            })
        );
    }

    #[test]
    fn congestion_counts_parts_not_duplicates() {
        let g = generators::path(4);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![0], vec![3]]).unwrap();
        // Duplicate edges within one part are deduplicated by construction.
        let s = Shortcut::new(vec![vec![1, 1, 1], vec![1]]);
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.congestion, 2);
        assert_eq!(q.per_edge_congestion[1], 2);
        assert_eq!(q.per_edge_congestion[0], 0);
    }

    #[test]
    fn blocks_ignore_components_without_part_nodes() {
        let g = generators::path(8);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![0, 1]]).unwrap();
        // Shortcut edges far away from the part: the component {5,6,7}
        // contains no part node, so it is not a block component.
        let e56 = g.edge_between(5, 6).unwrap();
        let e67 = g.edge_between(6, 7).unwrap();
        let e01 = g.edge_between(0, 1).unwrap();
        let s = Shortcut::new(vec![vec![e56, e67, e01]]);
        let q = measure_quality(&g, &t, &parts, &s);
        assert_eq!(q.block, 1);
    }

    #[test]
    fn augmented_diameter_shrinks_with_shortcuts() {
        let g = generators::wheel(12);
        let hub = 11;
        let t = RootedTree::bfs(&g, hub);
        // One part: the whole rim (diameter Θ(n) in isolation).
        let rim: Vec<usize> = (0..11).collect();
        let parts = Partition::new(&g, vec![rim]).unwrap();
        let empty = Shortcut::empty(1);
        let lonely = augmented_part_diameter(&g, &parts, &empty);
        assert!(lonely >= 5, "rim alone is long: {lonely}");
        // Give the part all spokes (tree edges): diameter collapses to 2.
        let spokes: Vec<EdgeId> = (0..g.m()).filter(|&e| t.is_tree_edge(e)).collect();
        let s = Shortcut::new(vec![spokes]);
        let with = augmented_part_diameter(&g, &parts, &s);
        assert!(with <= 2, "with spokes: {with}");
    }

    #[test]
    #[should_panic(expected = "shortcut must cover every part")]
    fn measure_requires_matching_lengths() {
        let g = generators::path(3);
        let t = RootedTree::bfs(&g, 0);
        let parts = Partition::new(&g, vec![vec![0]]).unwrap();
        let s = Shortcut::empty(2);
        let _ = measure_quality(&g, &t, &parts, &s);
    }
}

//! Heavy-light decomposition of rooted trees \[HT84\], exactly as used in the
//! Theorem 7 compression: the decomposition tree is split into vertex-disjoint
//! *heavy chains* such that any root-to-leaf path meets `O(log n)` chains;
//! each chain is then folded independently.

/// Heavy-light decomposition of a rooted tree given by parent pointers.
#[derive(Debug, Clone)]
pub struct HeavyLight {
    /// `chain_of[v]` — index of the chain containing `v`.
    chain_of: Vec<usize>,
    /// `chains[c]` — nodes of chain `c`, from its top (closest to the root)
    /// downward.
    chains: Vec<Vec<usize>>,
    /// Parent pointers (copied from the input).
    parent: Vec<Option<usize>>,
}

impl HeavyLight {
    /// Decomposes the rooted tree encoded by `parent` (exactly one `None`).
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not encode a tree with exactly one root.
    pub fn new(parent: &[Option<usize>]) -> Self {
        let n = parent.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut root = None;
        for (v, pv) in parent.iter().enumerate() {
            match *pv {
                Some(p) => {
                    assert!(p < n, "parent out of range");
                    children[p].push(v);
                }
                None => {
                    assert!(root.is_none(), "exactly one root required");
                    root = Some(v);
                }
            }
        }
        let root = root.expect("exactly one root required");
        // Subtree sizes, computed bottom-up over a DFS order.
        let order = dfs_order(root, &children);
        assert_eq!(order.len(), n, "parent pointers must form one tree");
        let mut size = vec![1usize; n];
        for &v in order.iter().rev() {
            if let Some(p) = parent[v] {
                size[p] += size[v];
            }
        }
        // Heavy child of each node: the child with the largest subtree.
        let mut heavy: Vec<Option<usize>> = vec![None; n];
        for v in 0..n {
            heavy[v] = children[v].iter().copied().max_by_key(|&c| size[c]);
        }
        // Build chains: each chain starts at a node whose parent's heavy
        // child is not itself (or the root).
        let mut chain_of = vec![usize::MAX; n];
        let mut chains = Vec::new();
        for &v in &order {
            let is_chain_top = match parent[v] {
                None => true,
                Some(p) => heavy[p] != Some(v),
            };
            if is_chain_top {
                let c = chains.len();
                let mut chain = Vec::new();
                let mut cur = Some(v);
                while let Some(x) = cur {
                    chain_of[x] = c;
                    chain.push(x);
                    cur = heavy[x];
                }
                chains.push(chain);
            }
        }
        HeavyLight {
            chain_of,
            chains,
            parent: parent.to_vec(),
        }
    }

    /// The chains, each listed from top to bottom.
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// Chain index of `v`.
    pub fn chain_of(&self, v: usize) -> usize {
        self.chain_of[v]
    }

    /// Number of distinct chains met on the path from `v` to the root —
    /// `O(log n)` by the heavy-light property.
    pub fn chains_to_root(&self, v: usize) -> usize {
        let mut count = 1;
        let mut cur = v;
        loop {
            let top = self.chains[self.chain_of[cur]][0];
            match self.parent[top] {
                Some(p) => {
                    count += 1;
                    cur = p;
                }
                None => return count,
            }
        }
    }
}

fn dfs_order(root: usize, children: &[Vec<usize>]) -> Vec<usize> {
    let mut order = Vec::with_capacity(children.len());
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        order.push(v);
        for &c in &children[v] {
            stack.push(c);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::{generators, traversal};
    use rand::{rngs::StdRng, SeedableRng};

    fn tree_parents(n: usize, seed: u64) -> Vec<Option<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        traversal::bfs(&g, 0).parent
    }

    #[test]
    fn chains_partition_nodes() {
        let parent = tree_parents(200, 3);
        let hl = HeavyLight::new(&parent);
        let mut seen = vec![false; 200];
        for chain in hl.chains() {
            for &v in chain {
                assert!(!seen[v], "node {v} in two chains");
                seen[v] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn chains_are_descending_paths() {
        let parent = tree_parents(150, 9);
        let hl = HeavyLight::new(&parent);
        for chain in hl.chains() {
            for w in chain.windows(2) {
                assert_eq!(parent[w[1]], Some(w[0]), "chain must follow parent links");
            }
        }
    }

    #[test]
    fn log_many_chains_to_root() {
        for seed in 0..5 {
            let n = 1 << 12;
            let parent = tree_parents(n, seed);
            let hl = HeavyLight::new(&parent);
            let bound = (n as f64).log2() as usize + 1;
            for v in 0..n {
                assert!(
                    hl.chains_to_root(v) <= bound,
                    "node {v}: {} chains > log bound {bound}",
                    hl.chains_to_root(v)
                );
            }
        }
    }

    #[test]
    fn path_tree_is_one_chain() {
        // A path rooted at its end has a single heavy chain.
        let parent: Vec<Option<usize>> = (0..50)
            .map(|v| if v == 0 { None } else { Some(v - 1) })
            .collect();
        let hl = HeavyLight::new(&parent);
        assert_eq!(hl.chains().len(), 1);
        assert_eq!(hl.chains()[0].len(), 50);
        assert_eq!(hl.chains_to_root(49), 1);
    }

    #[test]
    fn star_tree_has_leaf_chains() {
        let parent: Vec<Option<usize>> = (0..10)
            .map(|v| if v == 0 { None } else { Some(0) })
            .collect();
        let hl = HeavyLight::new(&parent);
        // Root chain has two nodes (root + heavy child); 8 singleton chains.
        assert_eq!(hl.chains().len(), 9);
        assert_eq!(hl.chains_to_root(5), 2);
    }

    #[test]
    fn singleton_tree() {
        let hl = HeavyLight::new(&[None]);
        assert_eq!(hl.chains().len(), 1);
        assert_eq!(hl.chains_to_root(0), 1);
    }
}

//! Errors shared by the decomposition validators.

use std::error::Error;
use std::fmt;

use minex_graphs::NodeId;

/// A structural property violation found by a validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// Some graph node appears in no bag (tree-decomposition property (i) /
    /// Definition 8 property 1).
    NodeNotCovered(NodeId),
    /// The bags containing some node do not form a connected subtree
    /// (property (ii) / Definition 8 property 4).
    NodeBagsDisconnected(NodeId),
    /// Some graph edge has no bag containing both endpoints
    /// (property (iii) / Definition 8 property 5).
    EdgeNotCovered(NodeId, NodeId),
    /// The bag graph is not a tree.
    BagGraphNotATree,
    /// A declared intersection/separator does not match the actual bag
    /// intersection (Definition 8 property 3).
    SeparatorMismatch {
        /// The link's position in the record.
        link: usize,
    },
    /// A bag index was out of range.
    BagOutOfRange(usize),
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::NodeNotCovered(v) => write!(f, "node {v} is not covered by any bag"),
            DecompError::NodeBagsDisconnected(v) => {
                write!(f, "bags containing node {v} are not connected in the tree")
            }
            DecompError::EdgeNotCovered(u, v) => {
                write!(f, "edge ({u}, {v}) is not contained in any bag")
            }
            DecompError::BagGraphNotATree => write!(f, "the bag graph is not a tree"),
            DecompError::SeparatorMismatch { link } => {
                write!(
                    f,
                    "separator of link {link} differs from the bag intersection"
                )
            }
            DecompError::BagOutOfRange(i) => write!(f, "bag index {i} out of range"),
        }
    }
}

impl Error for DecompError {}

//! Clique-sum decomposition trees (Definition 8) and the depth-compression
//! ("folding") machinery of Theorem 7.
//!
//! Lemma 1 gives clique-sum shortcuts whose congestion scales with the
//! *depth* `d_DT` of the decomposition tree. Theorem 7 removes that
//! dependence by folding every heavy-light chain of the tree into a balanced
//! binary tree of bag-triples, at the price of *double edges*: a folded tree
//! edge may carry up to two partial cliques. [`FoldedCliqueSumTree`]
//! implements exactly that transformation and machine-checks its guarantees.

use minex_graphs::generators::CliqueSumRecord;
use minex_graphs::{Graph, NodeId};

use crate::error::DecompError;
use crate::heavy_light::HeavyLight;

/// A validated, rooted clique-sum decomposition tree.
#[derive(Debug, Clone)]
pub struct CliqueSumTree {
    record: CliqueSumRecord,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
    /// For bag `b != root`: index into `record.links` of its parent link.
    parent_link: Vec<Option<usize>>,
}

impl CliqueSumTree {
    /// Wraps a construction record, rooting the bag tree at bag 0.
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::BagGraphNotATree`] if the links do not form a
    /// tree over the bags, or [`DecompError::BagOutOfRange`] on bad indices.
    pub fn new(record: CliqueSumRecord) -> Result<Self, DecompError> {
        let b = record.bags.len();
        if b == 0 {
            return Err(DecompError::BagGraphNotATree);
        }
        if record.links.len() != b - 1 {
            return Err(DecompError::BagGraphNotATree);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); b];
        let mut parent: Vec<Option<usize>> = vec![None; b];
        let mut parent_link: Vec<Option<usize>> = vec![None; b];
        for (li, &(p, c, _)) in record.links.iter().enumerate() {
            if p >= b {
                return Err(DecompError::BagOutOfRange(p));
            }
            if c >= b {
                return Err(DecompError::BagOutOfRange(c));
            }
            if parent[c].is_some() || c == 0 {
                return Err(DecompError::BagGraphNotATree);
            }
            parent[c] = Some(p);
            parent_link[c] = Some(li);
            children[p].push(c);
        }
        // Depth by BFS from the root; also detects unreachable bags.
        let mut depth = vec![usize::MAX; b];
        depth[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut seen = 1;
        while let Some(x) = queue.pop_front() {
            for &y in &children[x] {
                depth[y] = depth[x] + 1;
                seen += 1;
                queue.push_back(y);
            }
        }
        if seen != b {
            return Err(DecompError::BagGraphNotATree);
        }
        Ok(CliqueSumTree {
            record,
            parent,
            children,
            depth,
            parent_link,
        })
    }

    /// The underlying record.
    pub fn record(&self) -> &CliqueSumRecord {
        &self.record
    }

    /// Number of bags.
    pub fn len(&self) -> usize {
        self.record.bags.len()
    }

    /// Whether the tree has no bags (never true for a validated tree).
    pub fn is_empty(&self) -> bool {
        self.record.bags.is_empty()
    }

    /// Bag `i`'s sorted node set.
    pub fn bag(&self, i: usize) -> &[NodeId] {
        &self.record.bags[i]
    }

    /// Parent of bag `i` (`None` for the root, bag 0).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Children of bag `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Depth of bag `i` (root = 0).
    pub fn depth(&self, i: usize) -> usize {
        self.depth[i]
    }

    /// Maximum bag depth — the `d_DT` of Lemma 1.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The separator (partial clique `C_f`) between bag `i` and its parent.
    pub fn separator_to_parent(&self, i: usize) -> Option<&[NodeId]> {
        self.parent_link[i].map(|li| &self.record.links[li].2[..])
    }

    /// Index (into the record's links) of bag `i`'s parent link.
    pub fn parent_link_index(&self, i: usize) -> Option<usize> {
        self.parent_link[i]
    }

    /// For each node of `g`, the sorted list of bags containing it.
    pub fn bags_of_nodes(&self, n: usize) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); n];
        for (i, bag) in self.record.bags.iter().enumerate() {
            for &v in bag {
                out[v].push(i);
            }
        }
        out
    }

    /// Checks the five properties of Definition 8 against `g`.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn validate(&self, g: &Graph) -> Result<(), DecompError> {
        // (1) Bags cover all nodes; (2) bag contents are nodes of G.
        let mut covered = vec![false; g.n()];
        for bag in &self.record.bags {
            for &v in bag {
                if v >= g.n() {
                    return Err(DecompError::NodeNotCovered(v));
                }
                covered[v] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(DecompError::NodeNotCovered(v));
        }
        // (3) B_i ∩ B_j = C_f for every link.
        for (li, (p, c, sep)) in self.record.links.iter().enumerate() {
            let mut inter: Vec<NodeId> = self.record.bags[*p]
                .iter()
                .copied()
                .filter(|v| self.record.bags[*c].binary_search(v).is_ok())
                .collect();
            inter.sort_unstable();
            let mut sep_sorted = sep.clone();
            sep_sorted.sort_unstable();
            if inter != sep_sorted {
                return Err(DecompError::SeparatorMismatch { link: li });
            }
        }
        // (4) Bags containing each node are connected in the tree.
        let bags_of = self.bags_of_nodes(g.n());
        for (v, bags) in bags_of.iter().enumerate() {
            if bags.is_empty() {
                continue;
            }
            // Count bags in the set whose parent is also in the set; for a
            // connected subtree this must be exactly |bags| - 1.
            let in_set = |b: usize| bags.binary_search(&b).is_ok();
            let with_parent_in_set = bags
                .iter()
                .filter(|&&b| self.parent[b].is_some_and(in_set))
                .count();
            if with_parent_in_set != bags.len() - 1 {
                return Err(DecompError::NodeBagsDisconnected(v));
            }
        }
        // (5) Every edge lives in some bag.
        for (_, u, v) in g.edges() {
            let ok = bags_of[u]
                .iter()
                .any(|b| bags_of[v].binary_search(b).is_ok());
            if !ok {
                return Err(DecompError::EdgeNotCovered(u, v));
            }
        }
        Ok(())
    }

    /// Folds the tree to depth `O(log² n)` following Theorem 7: heavy-light
    /// decomposition, then balanced folding of each chain.
    pub fn fold(&self) -> FoldedCliqueSumTree {
        let hl = HeavyLight::new(&self.parent);
        let b = self.len();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_of: Vec<usize> = vec![usize::MAX; b];
        let mut fparent: Vec<Option<usize>> = Vec::new();
        let mut links_to_parent: Vec<Vec<usize>> = Vec::new();
        // Fold each chain into the arena; connect chains afterwards.
        let mut chain_folded_root: Vec<usize> = Vec::with_capacity(hl.chains().len());
        for chain in hl.chains() {
            let root = fold_segment(
                chain,
                0,
                chain.len() - 1,
                &mut groups,
                &mut group_of,
                &mut fparent,
                &mut links_to_parent,
                &self.parent_link,
            );
            chain_folded_root.push(root);
        }
        for (ci, chain) in hl.chains().iter().enumerate() {
            let top = chain[0];
            if let Some(p) = self.parent[top] {
                let f = chain_folded_root[ci];
                fparent[f] = Some(group_of[p]);
                links_to_parent[f] = vec![self.parent_link[top].expect("non-root bag has a link")];
            }
        }
        let fn_count = groups.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); fn_count];
        let mut root = None;
        for (f, fp) in fparent.iter().enumerate() {
            match *fp {
                Some(p) => children[p].push(f),
                None => root = Some(f),
            }
        }
        let root = root.expect("folded tree has a root");
        let mut depth = vec![0usize; fn_count];
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(x) = queue.pop_front() {
            for &y in &children[x] {
                depth[y] = depth[x] + 1;
                queue.push_back(y);
            }
        }
        FoldedCliqueSumTree {
            groups,
            group_of,
            parent: fparent,
            children,
            depth,
            links_to_parent,
            root,
        }
    }
}

/// Recursively folds `chain[lo..=hi]` into balanced groups of ≤ 3 bags.
/// Returns the folded node covering the segment's endpoints.
#[allow(clippy::too_many_arguments)]
fn fold_segment(
    chain: &[usize],
    lo: usize,
    hi: usize,
    groups: &mut Vec<Vec<usize>>,
    group_of: &mut [usize],
    fparent: &mut Vec<Option<usize>>,
    links_to_parent: &mut Vec<Vec<usize>>,
    parent_link: &[Option<usize>],
) -> usize {
    let mid = lo + (hi - lo) / 2;
    let mut group = vec![chain[lo], chain[mid], chain[hi]];
    group.sort_unstable();
    group.dedup();
    let f = groups.len();
    for &b in &group {
        group_of[b] = f;
    }
    groups.push(group);
    fparent.push(None);
    links_to_parent.push(Vec::new());
    // Left sub-segment (lo+1 ..= mid-1).
    if mid >= lo + 2 {
        let child = fold_segment(
            chain,
            lo + 1,
            mid - 1,
            groups,
            group_of,
            fparent,
            links_to_parent,
            parent_link,
        );
        fparent[child] = Some(f);
        links_to_parent[child] = vec![
            parent_link[chain[lo + 1]].expect("chain bag has parent link"),
            parent_link[chain[mid]].expect("chain bag has parent link"),
        ];
    }
    // Right sub-segment (mid+1 ..= hi-1).
    if hi >= mid + 2 {
        let child = fold_segment(
            chain,
            mid + 1,
            hi - 1,
            groups,
            group_of,
            fparent,
            links_to_parent,
            parent_link,
        );
        fparent[child] = Some(f);
        links_to_parent[child] = vec![
            parent_link[chain[mid + 1]].expect("chain bag has parent link"),
            parent_link[chain[hi]].expect("chain bag has parent link"),
        ];
    }
    f
}

/// The Theorem 7 folded decomposition tree: depth `O(log² n)`, each folded
/// edge carrying at most two partial cliques ("double edges").
#[derive(Debug, Clone)]
pub struct FoldedCliqueSumTree {
    /// `groups[f]` — the original bags merged into folded node `f` (≤ 3).
    pub groups: Vec<Vec<usize>>,
    /// `group_of[b]` — the folded node containing original bag `b`.
    pub group_of: Vec<usize>,
    /// Folded-tree parents.
    pub parent: Vec<Option<usize>>,
    /// Folded-tree children.
    pub children: Vec<Vec<usize>>,
    /// Folded-tree depths.
    pub depth: Vec<usize>,
    /// `links_to_parent[f]` — indices (into the record's links) of the
    /// original partial cliques crossing the folded edge `f → parent(f)`;
    /// at most two (a "double edge").
    pub links_to_parent: Vec<Vec<usize>>,
    /// The folded root.
    pub root: usize,
}

impl FoldedCliqueSumTree {
    /// Maximum folded depth.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Checks the structural guarantees of the folding against its source
    /// tree: groups partition the bags, group size ≤ 3, each folded edge
    /// carries ≤ 2 links, every original link is accounted for exactly once
    /// (internal to a group or on the folded edge between the two incident
    /// groups), and the depth is `O(log² b)`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompError`] naming the violated guarantee.
    pub fn validate(&self, source: &CliqueSumTree) -> Result<(), DecompError> {
        let b = source.len();
        // Partition + size bound.
        let mut seen = vec![false; b];
        for (f, group) in self.groups.iter().enumerate() {
            if group.is_empty() || group.len() > 3 {
                return Err(DecompError::BagGraphNotATree);
            }
            for &bag in group {
                if bag >= b || seen[bag] || self.group_of[bag] != f {
                    return Err(DecompError::BagOutOfRange(bag));
                }
                seen[bag] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(DecompError::BagGraphNotATree);
        }
        // Double-edge bound and link accounting.
        let mut link_seen = vec![false; source.record().links.len()];
        for (f, links) in self.links_to_parent.iter().enumerate() {
            if links.len() > 2 {
                return Err(DecompError::BagGraphNotATree);
            }
            let p = match self.parent[f] {
                Some(p) => p,
                None => {
                    if !links.is_empty() {
                        return Err(DecompError::BagGraphNotATree);
                    }
                    continue;
                }
            };
            for &li in links {
                let (lp, lc, _) = &source.record().links[li];
                // The link must connect these two folded nodes.
                let gp = self.group_of[*lp];
                let gc = self.group_of[*lc];
                if !(gp == p && gc == f || gp == f && gc == p) {
                    return Err(DecompError::SeparatorMismatch { link: li });
                }
                if link_seen[li] {
                    return Err(DecompError::SeparatorMismatch { link: li });
                }
                link_seen[li] = true;
            }
        }
        for (li, (lp, lc, _)) in source.record().links.iter().enumerate() {
            if !link_seen[li] && self.group_of[*lp] != self.group_of[*lc] {
                return Err(DecompError::SeparatorMismatch { link: li });
            }
        }
        // Depth bound: (log2 b + 1)^2 + 1, a concrete O(log² b).
        let logb = (usize::BITS - b.leading_zeros()) as usize;
        if self.max_depth() > (logb + 1) * (logb + 1) + 1 {
            return Err(DecompError::BagGraphNotATree);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::generators::{self, CliqueSumBuilder};
    use rand::{rngs::StdRng, SeedableRng};

    fn path_clique_sum(len: usize) -> (minex_graphs::Graph, CliqueSumRecord) {
        // Chain of triangulated grids glued edge-to-edge: DT is a path.
        let comp = generators::triangulated_grid(3, 3);
        let mut builder = CliqueSumBuilder::new(&comp, 2);
        let mut last_map: Vec<NodeId> = (0..comp.n()).collect();
        for _ in 1..len {
            // Glue onto the last component's bottom-right edge (7, 8).
            let host = vec![last_map[7], last_map[8]];
            last_map = builder.glue(&comp, &host, &[0, 1]).unwrap();
        }
        builder.build()
    }

    #[test]
    fn path_record_validates() {
        let (g, rec) = path_clique_sum(10);
        let tree = CliqueSumTree::new(rec).unwrap();
        tree.validate(&g).unwrap();
        assert_eq!(tree.max_depth(), 9);
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.separator_to_parent(1).unwrap().len(), 2);
    }

    #[test]
    fn random_clique_sum_validates() {
        let comps = vec![
            generators::triangulated_grid(3, 3),
            generators::complete(4),
            generators::cycle(6),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let (g, rec) = generators::random_clique_sum(&comps, 20, 3, &mut rng);
        let tree = CliqueSumTree::new(rec).unwrap();
        tree.validate(&g).unwrap();
    }

    #[test]
    fn folding_compresses_paths() {
        let (_, rec) = path_clique_sum(64);
        let tree = CliqueSumTree::new(rec).unwrap();
        assert_eq!(tree.max_depth(), 63);
        let folded = tree.fold();
        folded.validate(&tree).unwrap();
        // A path of 64 bags folds to depth ~log2(64).
        assert!(folded.max_depth() <= 7, "depth={}", folded.max_depth());
    }

    #[test]
    fn folding_preserves_structure_on_random_trees() {
        let comps = vec![generators::triangulated_grid(3, 3), generators::complete(4)];
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, rec) = generators::random_clique_sum(&comps, 40, 3, &mut rng);
            let tree = CliqueSumTree::new(rec).unwrap();
            tree.validate(&g).unwrap();
            let folded = tree.fold();
            folded.validate(&tree).unwrap();
        }
    }

    #[test]
    fn folded_depth_beats_original_on_deep_trees() {
        let (_, rec) = path_clique_sum(200);
        let tree = CliqueSumTree::new(rec).unwrap();
        let folded = tree.fold();
        folded.validate(&tree).unwrap();
        assert!(folded.max_depth() < tree.max_depth() / 4);
    }

    #[test]
    fn singleton_tree_folds() {
        let comp = generators::complete(3);
        let builder = CliqueSumBuilder::new(&comp, 2);
        let (g, rec) = builder.build();
        let tree = CliqueSumTree::new(rec).unwrap();
        tree.validate(&g).unwrap();
        let folded = tree.fold();
        folded.validate(&tree).unwrap();
        assert_eq!(folded.max_depth(), 0);
        assert_eq!(folded.groups.len(), 1);
    }

    #[test]
    fn rejects_malformed_records() {
        // Two bags, no links.
        let rec = CliqueSumRecord {
            k: 2,
            bags: vec![vec![0], vec![1]],
            links: vec![],
        };
        assert!(CliqueSumTree::new(rec).is_err());
        // Link to out-of-range bag.
        let rec = CliqueSumRecord {
            k: 2,
            bags: vec![vec![0], vec![1]],
            links: vec![(0, 5, vec![0])],
        };
        assert!(CliqueSumTree::new(rec).is_err());
        // Separator mismatch.
        let rec = CliqueSumRecord {
            k: 2,
            bags: vec![vec![0, 1], vec![1, 2]],
            links: vec![(0, 1, vec![0, 1])],
        };
        let g = generators::path(3);
        let tree = CliqueSumTree::new(rec).unwrap();
        assert_eq!(
            tree.validate(&g),
            Err(DecompError::SeparatorMismatch { link: 0 })
        );
    }
}

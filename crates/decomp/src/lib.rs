//! # minex-decomp
//!
//! Structural decompositions for the `minex` reproduction of
//! Haeupler–Li–Zuzic (PODC 2018):
//!
//! * [`TreeDecomposition`] — container, validator, witness conversions, the
//!   Lemma 2 vortex re-insertion, and explicit grid/torus decompositions;
//! * [`CliqueSumTree`] — Definition 8 decomposition trees with full property
//!   validation, plus the Theorem 7 depth compression ([`FoldedCliqueSumTree`]);
//! * [`HeavyLight`] — heavy-light decomposition \[HT84\];
//! * [`Lca`] — binary-lifting lowest common ancestors;
//! * [`AlmostEmbeddable`] / [`StructureWitness`] — Definition 5 / Theorem 3
//!   witnesses.
//!
//! ## Example
//!
//! ```
//! use minex_decomp::TreeDecomposition;
//! use minex_graphs::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (g, record) = generators::k_tree(40, 3, &mut rng);
//! let td = TreeDecomposition::from_k_tree(g.n(), &record);
//! td.validate(&g)?;
//! assert_eq!(td.width(), 3);
//! # Ok::<(), minex_decomp::DecompError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clique_sum_tree;
mod error;
mod heavy_light;
mod lca;
mod structure;
mod tree_decomposition;

pub use clique_sum_tree::{CliqueSumTree, FoldedCliqueSumTree};
pub use error::DecompError;
pub use heavy_light::HeavyLight;
pub use lca::Lca;
pub use structure::{AlmostEmbeddable, StructureWitness};
pub use tree_decomposition::TreeDecomposition;

//! Lowest common ancestors by binary lifting.
//!
//! The clique-sum shortcut construction needs, per part, the lowest common
//! ancestor `h_P` of the bags that part touches (Lemma 1), and the tree
//! machinery here serves both the decomposition tree and spanning trees.

/// Binary-lifting LCA structure over a rooted tree.
#[derive(Debug, Clone)]
pub struct Lca {
    depth: Vec<usize>,
    /// `up[j][v]` — the `2^j`-th ancestor of `v` (root maps to itself).
    up: Vec<Vec<usize>>,
    root: usize,
}

impl Lca {
    /// Preprocesses the tree given by `parent` pointers (one `None` root).
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not encode exactly one tree.
    pub fn new(parent: &[Option<usize>]) -> Self {
        let n = parent.len();
        assert!(n > 0, "tree must be non-empty");
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut root = None;
        for (v, pv) in parent.iter().enumerate() {
            match *pv {
                Some(p) => children[p].push(v),
                None => {
                    assert!(root.is_none(), "exactly one root required");
                    root = Some(v);
                }
            }
        }
        let root = root.expect("exactly one root required");
        let mut depth = vec![0usize; n];
        let mut order = vec![root];
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &c in &children[v] {
                depth[c] = depth[v] + 1;
                order.push(c);
            }
        }
        assert_eq!(order.len(), n, "parent pointers must form one tree");
        let levels = usize::BITS as usize - n.leading_zeros() as usize;
        let levels = levels.max(1);
        let mut up = vec![vec![root; n]; levels];
        for v in 0..n {
            up[0][v] = parent[v].unwrap_or(root);
        }
        for j in 1..levels {
            for v in 0..n {
                up[j][v] = up[j - 1][up[j - 1][v]];
            }
        }
        Lca { depth, up, root }
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v]
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The ancestor of `v` at distance `k` (saturating at the root).
    pub fn ancestor(&self, mut v: usize, mut k: usize) -> usize {
        let mut j = 0;
        while k > 0 {
            if k & 1 == 1 {
                v = self.up[j.min(self.up.len() - 1)][v];
            }
            k >>= 1;
            j += 1;
        }
        v
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, mut a: usize, mut b: usize) -> usize {
        if self.depth[a] < self.depth[b] {
            std::mem::swap(&mut a, &mut b);
        }
        a = self.ancestor(a, self.depth[a] - self.depth[b]);
        if a == b {
            return a;
        }
        for j in (0..self.up.len()).rev() {
            if self.up[j][a] != self.up[j][b] {
                a = self.up[j][a];
                b = self.up[j][b];
            }
        }
        self.up[0][a]
    }

    /// LCA of a non-empty set of nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn lca_of_set(&self, nodes: &[usize]) -> usize {
        let mut acc = *nodes.first().expect("non-empty set");
        for &v in &nodes[1..] {
            acc = self.lca(acc, v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::{generators, traversal};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn lca_on_binary_tree() {
        let g = generators::binary_tree(15);
        let parent = traversal::bfs(&g, 0).parent;
        let lca = Lca::new(&parent);
        assert_eq!(lca.lca(7, 8), 3);
        assert_eq!(lca.lca(7, 9), 1);
        assert_eq!(lca.lca(7, 14), 0);
        assert_eq!(lca.lca(5, 5), 5);
        assert_eq!(lca.lca(0, 12), 0);
        assert_eq!(lca.depth(14), 3);
        assert_eq!(lca.ancestor(14, 2), 2);
        assert_eq!(lca.ancestor(14, 10), 0);
    }

    #[test]
    fn lca_matches_naive_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(64);
        let g = generators::random_tree(300, &mut rng);
        let bfs = traversal::bfs(&g, 0);
        let lca = Lca::new(&bfs.parent);
        let naive = |mut a: usize, mut b: usize| -> usize {
            while a != b {
                if bfs.dist[a] >= bfs.dist[b] {
                    a = bfs.parent[a].unwrap();
                } else {
                    b = bfs.parent[b].unwrap();
                }
            }
            a
        };
        for _ in 0..500 {
            let a = rng.random_range(0..300);
            let b = rng.random_range(0..300);
            assert_eq!(lca.lca(a, b), naive(a, b), "lca({a},{b})");
        }
    }

    #[test]
    fn lca_of_set() {
        let g = generators::binary_tree(15);
        let parent = traversal::bfs(&g, 0).parent;
        let lca = Lca::new(&parent);
        assert_eq!(lca.lca_of_set(&[7, 8, 9]), 1);
        assert_eq!(lca.lca_of_set(&[14]), 14);
        assert_eq!(lca.lca_of_set(&[7, 8, 13]), 0);
    }

    #[test]
    fn singleton() {
        let lca = Lca::new(&[None]);
        assert_eq!(lca.lca(0, 0), 0);
        assert_eq!(lca.root(), 0);
    }
}

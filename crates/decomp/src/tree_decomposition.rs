//! Tree decompositions (Section 2.3.1 of the paper).
//!
//! Besides the generic container + validator, this module implements the
//! decompositions the paper's proofs rely on:
//!
//! * witness conversions from k-tree / Apollonian construction records;
//! * explicit width-`O(min(rows, cols))` decompositions of grids and
//!   width-`O(rows)` decompositions of toroidal grids (standing in for
//!   Eppstein's genus/diameter bound, which the paper cites for Lemma 2);
//! * the vortex re-insertion step of **Lemma 2**: given a decomposition of
//!   the graph with a vortex replaced by a star vertex, splice the internal
//!   vortex nodes back into every bag that meets their arc;
//! * a min-degree elimination heuristic for graphs with no witness.

use std::collections::BTreeSet;

use minex_graphs::generators::{ApollonianRecord, KTreeRecord, VortexRecord};
use minex_graphs::{Graph, NodeId};

use crate::error::DecompError;

/// A tree decomposition: bags of nodes connected in a tree.
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    bags: Vec<Vec<NodeId>>,
    /// Adjacency between bags; the bag graph must be a tree.
    adj: Vec<Vec<usize>>,
}

impl TreeDecomposition {
    /// Builds a decomposition from bags and bag-tree edges. Bags are sorted
    /// and deduplicated; validity against a graph is checked separately by
    /// [`validate`](Self::validate).
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::BagOutOfRange`] for bad edge indices and
    /// [`DecompError::BagGraphNotATree`] if the bag graph is not a tree.
    pub fn new(
        mut bags: Vec<Vec<NodeId>>,
        edges: Vec<(usize, usize)>,
    ) -> Result<Self, DecompError> {
        let b = bags.len();
        for bag in &mut bags {
            bag.sort_unstable();
            bag.dedup();
        }
        let mut adj = vec![Vec::new(); b];
        for &(x, y) in &edges {
            if x >= b {
                return Err(DecompError::BagOutOfRange(x));
            }
            if y >= b {
                return Err(DecompError::BagOutOfRange(y));
            }
            adj[x].push(y);
            adj[y].push(x);
        }
        // A tree on b nodes has exactly b-1 edges and is connected.
        if b > 0 {
            if edges.len() != b - 1 {
                return Err(DecompError::BagGraphNotATree);
            }
            let mut seen = vec![false; b];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(x) = stack.pop() {
                for &y in &adj[x] {
                    if !seen[y] {
                        seen[y] = true;
                        count += 1;
                        stack.push(y);
                    }
                }
            }
            if count != b {
                return Err(DecompError::BagGraphNotATree);
            }
        }
        Ok(TreeDecomposition { bags, adj })
    }

    /// The bags, each sorted.
    pub fn bags(&self) -> &[Vec<NodeId>] {
        &self.bags
    }

    /// Neighbors of bag `i` in the bag tree.
    pub fn bag_neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Width: `max bag size - 1`.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Number of bags.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether there are no bags.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Checks the three tree-decomposition properties against `g`.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn validate(&self, g: &Graph) -> Result<(), DecompError> {
        // (i) Every node covered.
        let mut covered = vec![false; g.n()];
        for bag in &self.bags {
            for &v in bag {
                if v >= g.n() {
                    return Err(DecompError::NodeNotCovered(v));
                }
                covered[v] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(DecompError::NodeNotCovered(v));
        }
        // (ii) Bags containing each node form a subtree: count, for each v,
        // the bags containing v and the bag-tree edges between two such
        // bags; connectivity ⟺ #edges = #bags - 1 within the (acyclic) tree.
        let mut bags_with = vec![0usize; g.n()];
        let mut edges_with = vec![0usize; g.n()];
        for bag in &self.bags {
            for &v in bag {
                bags_with[v] += 1;
            }
        }
        for (x, neighbors) in self.adj.iter().enumerate() {
            for &y in neighbors {
                if x < y {
                    for v in intersect_sorted(&self.bags[x], &self.bags[y]) {
                        edges_with[v] += 1;
                    }
                }
            }
        }
        for v in 0..g.n() {
            if bags_with[v] != edges_with[v] + 1 {
                return Err(DecompError::NodeBagsDisconnected(v));
            }
        }
        // (iii) Every edge covered.
        for (_, u, v) in g.edges() {
            let ok = self
                .bags
                .iter()
                .any(|bag| bag.binary_search(&u).is_ok() && bag.binary_search(&v).is_ok());
            if !ok {
                return Err(DecompError::EdgeNotCovered(u, v));
            }
        }
        Ok(())
    }

    /// Converts a k-tree construction record into a width-`k` decomposition.
    ///
    /// Bag 0 is the seed clique `{0..=k}`; bag `i ≥ 1` is
    /// `{v} ∪ attach_clique` for the `i`-th inserted node `v = k + i`,
    /// attached to the bag of `max(attach_clique)`.
    pub fn from_k_tree(n: usize, rec: &KTreeRecord) -> Self {
        let k = rec.k;
        let mut bags: Vec<Vec<NodeId>> = vec![(0..=k).collect()];
        let mut edges = Vec::new();
        // bag_of_node[v] = index of the bag introduced for v (seed nodes: 0).
        let mut bag_of_node = vec![0usize; n];
        for (i, clique) in rec.attach_clique.iter().enumerate() {
            let v = k + 1 + i;
            let mut bag = clique.clone();
            bag.push(v);
            let idx = bags.len();
            bags.push(bag);
            bag_of_node[v] = idx;
            let anchor = *clique.iter().max().expect("clique non-empty");
            let parent = if anchor <= k { 0 } else { bag_of_node[anchor] };
            edges.push((parent, idx));
        }
        TreeDecomposition::new(bags, edges).expect("k-tree record yields a tree")
    }

    /// Converts an Apollonian construction record into a width-3
    /// decomposition (an Apollonian network is a planar 3-tree; its seed is
    /// the initial triangle `{0, 1, 2}`).
    pub fn from_apollonian(n: usize, rec: &ApollonianRecord) -> Self {
        let mut bags: Vec<Vec<NodeId>> = vec![vec![0, 1, 2]];
        let mut edges = Vec::new();
        let mut bag_of_node = vec![0usize; n];
        for &(v, tri) in &rec.insertions {
            let mut bag = tri.to_vec();
            bag.push(v);
            let idx = bags.len();
            bags.push(bag);
            bag_of_node[v] = idx;
            let anchor = tri.into_iter().max().expect("triangle non-empty");
            let parent = if anchor <= 2 { 0 } else { bag_of_node[anchor] };
            edges.push((parent, idx));
        }
        TreeDecomposition::new(bags, edges).expect("apollonian record yields a tree")
    }

    /// Width-`2·rows - 1` path decomposition of a `rows × cols` grid
    /// (node ids as produced by `generators::grid`): bag `i` holds columns
    /// `i` and `i+1`.
    pub fn of_grid(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid dims must be positive");
        let id = |r: usize, c: usize| r * cols + c;
        if cols == 1 {
            let bags = vec![(0..rows).map(|r| id(r, 0)).collect()];
            return TreeDecomposition::new(bags, Vec::new()).expect("single bag");
        }
        let mut bags = Vec::new();
        for c in 0..cols - 1 {
            let mut bag = Vec::with_capacity(2 * rows);
            for r in 0..rows {
                bag.push(id(r, c));
                bag.push(id(r, c + 1));
            }
            bags.push(bag);
        }
        let edges = (0..cols.saturating_sub(2)).map(|i| (i, i + 1)).collect();
        TreeDecomposition::new(bags, edges).expect("path of bags")
    }

    /// Width-`3·rows - 1` path decomposition of a toroidal `rows × cols`
    /// grid: bag `i` holds columns `i`, `i+1 (mod cols)`, and column 0
    /// (which "cuts" the torus' column cycle).
    ///
    /// This realizes, for our genus-1 family, the `O((g+1) · D)` treewidth
    /// bound of Eppstein that Lemma 2 relies on.
    pub fn of_toroidal_grid(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "toroidal grid dims must be >= 3");
        let id = |r: usize, c: usize| r * cols + c;
        let mut bags = Vec::new();
        for i in 0..cols {
            let mut bag: BTreeSet<NodeId> = BTreeSet::new();
            for r in 0..rows {
                bag.insert(id(r, i));
                bag.insert(id(r, (i + 1) % cols));
                bag.insert(id(r, 0));
            }
            bags.push(bag.into_iter().collect());
        }
        let edges = (0..cols - 1).map(|i| (i, i + 1)).collect();
        TreeDecomposition::new(bags, edges).expect("path of bags")
    }

    /// The vortex re-insertion step of **Lemma 2**: `self` must decompose the
    /// graph `G'` in which the vortex internals were deleted (and possibly a
    /// star vertex added — pass it via `drop_node` to strip it from all
    /// bags). Each internal vortex node is added to every bag that intersects
    /// its arc, and to the bag of a designated arc node if none intersects.
    ///
    /// Per Lemma 2, if `self` has width `w` and the vortex has depth `k`,
    /// the result has width `O(k·w)`.
    pub fn reinsert_vortex(&self, vortex: &VortexRecord, drop_node: Option<NodeId>) -> Self {
        let mut bags: Vec<Vec<NodeId>> = self
            .bags
            .iter()
            .map(|bag| {
                bag.iter()
                    .copied()
                    .filter(|&v| Some(v) != drop_node)
                    .collect()
            })
            .collect();
        for (i, &internal) in vortex.internal.iter().enumerate() {
            let arc = vortex.arc_nodes(i);
            let mut added = false;
            for bag in bags.iter_mut() {
                if arc.iter().any(|a| bag.binary_search(a).is_ok()) {
                    bag.push(internal);
                    added = true;
                }
            }
            if !added {
                // Arc nodes all vanished with drop_node — cannot happen for
                // non-empty arcs, but keep the operation total.
                bags[0].push(internal);
            }
            for bag in bags.iter_mut() {
                bag.sort_unstable();
                bag.dedup();
            }
        }
        let edges = self
            .adj
            .iter()
            .enumerate()
            .flat_map(|(x, ns)| ns.iter().filter(move |&&y| x < y).map(move |&y| (x, y)))
            .collect();
        TreeDecomposition::new(bags, edges).expect("same tree shape")
    }

    /// Min-degree elimination heuristic: repeatedly eliminate a
    /// minimum-degree vertex, turning its neighborhood into a clique. Always
    /// yields a *valid* decomposition; the width is heuristic.
    pub fn min_degree_heuristic(g: &Graph) -> Self {
        let n = g.n();
        if n == 0 {
            return TreeDecomposition::new(Vec::new(), Vec::new()).expect("empty");
        }
        let mut adj: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
        for (_, u, v) in g.edges() {
            adj[u].insert(v);
            adj[v].insert(u);
        }
        let mut alive: BTreeSet<NodeId> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        let mut bag_sets: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        while let Some(&v) = alive.iter().min_by_key(|&&v| adj[v].len()) {
            let neighbors: Vec<NodeId> = adj[v].iter().copied().collect();
            let mut bag = neighbors.clone();
            bag.push(v);
            bag.sort_unstable();
            bag_sets.push(bag);
            order.push(v);
            for i in 0..neighbors.len() {
                for j in (i + 1)..neighbors.len() {
                    adj[neighbors[i]].insert(neighbors[j]);
                    adj[neighbors[j]].insert(neighbors[i]);
                }
            }
            for &u in &neighbors {
                adj[u].remove(&v);
            }
            adj[v].clear();
            alive.remove(&v);
        }
        // Standard gluing: bag of the i-th eliminated vertex attaches to the
        // bag of its earliest-eliminated remaining neighbor.
        let mut position = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            position[v] = i;
        }
        let mut edges = Vec::new();
        for (i, bag) in bag_sets.iter().enumerate() {
            let v = order[i];
            let next = bag
                .iter()
                .filter(|&&u| u != v && position[u] > i)
                .min_by_key(|&&u| position[u]);
            if let Some(&u) = next {
                edges.push((i, position[u]));
            } else if i + 1 < bag_sets.len() {
                // Isolated remainder (disconnected graph or last vertex):
                // chain to keep the bag graph a tree.
                edges.push((i, i + 1));
            }
        }
        TreeDecomposition::new(bag_sets, edges).expect("elimination yields a tree")
    }
}

/// Intersection of two sorted vectors.
fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_graphs::generators;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn k_tree_record_gives_valid_width_k() {
        let mut rng = StdRng::seed_from_u64(4);
        for k in [1, 2, 3, 5] {
            let (g, rec) = generators::k_tree(50, k, &mut rng);
            let td = TreeDecomposition::from_k_tree(g.n(), &rec);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), k, "k={k}");
        }
    }

    #[test]
    fn partial_k_tree_record_still_valid() {
        let mut rng = StdRng::seed_from_u64(6);
        let (g, rec) = generators::partial_k_tree(80, 3, 0.6, &mut rng);
        let td = TreeDecomposition::from_k_tree(g.n(), &rec);
        td.validate(&g).unwrap();
        assert!(td.width() <= 3);
    }

    #[test]
    fn apollonian_record_gives_width_three() {
        let mut rng = StdRng::seed_from_u64(12);
        let (g, rec) = generators::apollonian(60, &mut rng);
        let td = TreeDecomposition::from_apollonian(g.n(), &rec);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 3);
    }

    #[test]
    fn grid_decomposition_valid() {
        for (r, c) in [(1, 1), (1, 5), (4, 4), (3, 9), (5, 2)] {
            let g = generators::grid(r, c);
            let td = TreeDecomposition::of_grid(r, c);
            td.validate(&g).unwrap();
            assert!(td.width() < 2 * r, "({r},{c})");
        }
    }

    #[test]
    fn toroidal_grid_decomposition_valid() {
        for (r, c) in [(3, 3), (4, 6), (5, 4)] {
            let g = generators::toroidal_grid(r, c);
            let td = TreeDecomposition::of_toroidal_grid(r, c);
            td.validate(&g).unwrap();
            assert!(td.width() < 3 * r, "({r},{c})");
        }
    }

    #[test]
    fn min_degree_heuristic_always_valid() {
        let mut rng = StdRng::seed_from_u64(31);
        let graphs = [
            generators::grid(4, 5),
            generators::random_connected(40, 30, &mut rng),
            generators::wheel(12),
            generators::path(1),
        ];
        for g in &graphs {
            let td = TreeDecomposition::min_degree_heuristic(g);
            td.validate(g).unwrap();
        }
        // On a 2-tree the heuristic is optimal.
        let (g2, _) = generators::k_tree(30, 2, &mut rng);
        let td = TreeDecomposition::min_degree_heuristic(&g2);
        td.validate(&g2).unwrap();
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn lemma2_vortex_reinsertion() {
        use minex_graphs::GraphBuilder;
        // Cylinder whose inner boundary carries a vortex. Build G = cylinder
        // + vortex, and G' = cylinder + star node.
        let rows = 3;
        let cols = 8;
        let base = generators::cylinder(rows, cols);
        let boundary: Vec<NodeId> = (0..cols).collect(); // row 0 is a cycle
        let mut rng = StdRng::seed_from_u64(77);
        let (g, vortex) = generators::add_vortex(&base, &boundary, 4, 2, &mut rng).unwrap();
        // G' = base + star vertex r adjacent to the boundary.
        let mut bp = GraphBuilder::new(base.n() + 1);
        for (_, u, v) in base.edges() {
            bp.add_edge(u, v).unwrap();
        }
        let star = base.n();
        for &v in &boundary {
            bp.add_edge(star, v).unwrap();
        }
        let gprime = bp.build();
        // Decompose G' heuristically, then splice the vortex back per Lemma 2.
        let td_prime = TreeDecomposition::min_degree_heuristic(&gprime);
        td_prime.validate(&gprime).unwrap();
        let td = td_prime.reinsert_vortex(&vortex, Some(star));
        // Lemma 2: the spliced decomposition is valid for the vortex graph
        // (the star id `base.n()` is recycled as internal node 0's id — it is
        // dropped from all bags first, so no collision survives), and the
        // width grows by at most a (depth+1) factor.
        td.validate(&g).unwrap();
        assert!(td.width() <= (vortex.depth + 1) * (td_prime.width() + 1));
    }

    #[test]
    fn validator_catches_violations() {
        let g = generators::path(3);
        // Missing node 2.
        let td = TreeDecomposition::new(vec![vec![0, 1]], vec![]).unwrap();
        assert_eq!(td.validate(&g), Err(DecompError::NodeNotCovered(2)));
        // Edge (1,2) missing.
        let td = TreeDecomposition::new(vec![vec![0, 1], vec![2]], vec![(0, 1)]).unwrap();
        assert_eq!(td.validate(&g), Err(DecompError::EdgeNotCovered(1, 2)));
        // Disconnected occurrences of node 0.
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![(0, 1), (1, 2)],
        )
        .unwrap();
        assert_eq!(td.validate(&g), Err(DecompError::NodeBagsDisconnected(0)));
        // Not a tree.
        assert_eq!(
            TreeDecomposition::new(vec![vec![0], vec![1]], vec![]).unwrap_err(),
            DecompError::BagGraphNotATree
        );
        assert_eq!(
            TreeDecomposition::new(vec![vec![0]], vec![(0, 5)]).unwrap_err(),
            DecompError::BagOutOfRange(5)
        );
    }

    #[test]
    fn width_of_trivial_decompositions() {
        let td = TreeDecomposition::new(Vec::new(), Vec::new()).unwrap();
        assert_eq!(td.width(), 0);
        assert!(td.is_empty());
        let td = TreeDecomposition::new(vec![vec![0, 1, 2]], Vec::new()).unwrap();
        assert_eq!(td.width(), 2);
    }
}

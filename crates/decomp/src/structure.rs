//! Almost-embeddable structure records (Definition 5) and the full Graph
//! Structure Theorem witness (Theorem 3).
//!
//! These records travel with generated graphs and parameterize the
//! witness-based shortcut constructions. The paper's algorithm never
//! computes them — they exist to *prove* (here: to measure) that good
//! shortcuts exist.

use minex_graphs::generators::VortexRecord;
use minex_graphs::NodeId;

/// Witness that a graph is `(q, g, k, ℓ)`-almost-embeddable
/// (Definition 5): a genus-`g` base, at most `ℓ` vortices of depth ≤ `k`,
/// and `q` apices.
#[derive(Debug, Clone, Default)]
pub struct AlmostEmbeddable {
    /// Genus of the base surface embedding (step (i)).
    pub genus: usize,
    /// Vortices added to faces of the base (step (ii)).
    pub vortices: Vec<VortexRecord>,
    /// Apices added last (step (iii)).
    pub apices: Vec<NodeId>,
}

impl AlmostEmbeddable {
    /// A purely planar witness (the `(0,0,0,0)` case).
    pub fn planar() -> Self {
        AlmostEmbeddable::default()
    }

    /// The `h` for which this witness is `h`-almost-embeddable:
    /// `max(q, g, max depth, #vortices)`.
    pub fn h(&self) -> usize {
        let k = self.vortices.iter().map(|v| v.depth).max().unwrap_or(0);
        self.apices
            .len()
            .max(self.genus)
            .max(k)
            .max(self.vortices.len())
    }

    /// The parameter tuple `(q, g, k, ℓ)`.
    pub fn parameters(&self) -> (usize, usize, usize, usize) {
        (
            self.apices.len(),
            self.genus,
            self.vortices.iter().map(|v| v.depth).max().unwrap_or(0),
            self.vortices.len(),
        )
    }

    /// All internal vortex node ids.
    pub fn vortex_internals(&self) -> Vec<NodeId> {
        self.vortices
            .iter()
            .flat_map(|v| v.internal.iter().copied())
            .collect()
    }
}

/// A Graph Structure Theorem witness: per-bag almost-embeddable records,
/// aligned with a clique-sum decomposition tree over the same bags.
#[derive(Debug, Clone)]
pub struct StructureWitness {
    /// `per_bag[i]` describes bag `i` of the accompanying clique-sum tree.
    pub per_bag: Vec<AlmostEmbeddable>,
}

impl StructureWitness {
    /// The `k` for which all bags are `k`-almost-embeddable — the constant of
    /// Theorem 3 for this witness.
    pub fn k(&self) -> usize {
        self.per_bag
            .iter()
            .map(AlmostEmbeddable::h)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planar_witness_is_all_zero() {
        let w = AlmostEmbeddable::planar();
        assert_eq!(w.parameters(), (0, 0, 0, 0));
        assert_eq!(w.h(), 0);
        assert!(w.vortex_internals().is_empty());
    }

    #[test]
    fn h_takes_the_max_parameter() {
        let w = AlmostEmbeddable {
            genus: 2,
            vortices: vec![VortexRecord {
                boundary: vec![0, 1, 2],
                internal: vec![10, 11],
                arcs: vec![(0, 2), (1, 2)],
                depth: 4,
            }],
            apices: vec![20],
        };
        assert_eq!(w.parameters(), (1, 2, 4, 1));
        assert_eq!(w.h(), 4);
        assert_eq!(w.vortex_internals(), vec![10, 11]);
    }

    #[test]
    fn witness_k_is_max_over_bags() {
        let w = StructureWitness {
            per_bag: vec![
                AlmostEmbeddable::planar(),
                AlmostEmbeddable {
                    genus: 3,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(w.k(), 3);
    }
}

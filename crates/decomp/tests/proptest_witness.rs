//! Treewidth-witness property tests: the elimination records emitted by the
//! k-tree generators always convert into *valid* tree decompositions of
//! width exactly / at most `k` — the structural invariant the treewidth
//! shortcut construction (Theorem 5) relies on.

use proptest::prelude::*;

use minex_decomp::TreeDecomposition;
use minex_graphs::generators;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn k_tree_record_witnesses_treewidth_k(n in 6usize..100, k in 1usize..5, seed in 0u64..500) {
        prop_assume!(n > k + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, rec) = generators::k_tree(n, k, &mut rng);
        let td = TreeDecomposition::from_k_tree(g.n(), &rec);
        // The decomposition is valid for the generated graph…
        td.validate(&g).expect("k-tree record is a valid witness");
        // …and certifies treewidth ≤ k (a k-tree has treewidth exactly k,
        // and the bags from the elimination order have size k + 1).
        prop_assert_eq!(td.width(), k);
    }

    #[test]
    fn partial_k_tree_keeps_the_witness(
        n in 8usize..80,
        k in 2usize..5,
        keep_pct in 0usize..=100,
        seed in 0u64..300,
    ) {
        prop_assume!(n > k + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let keep = keep_pct as f64 / 100.0;
        let (g, rec) = generators::partial_k_tree(n, k, keep, &mut rng);
        // Removing edges never invalidates the witness: the same record
        // still yields a valid decomposition of the sparser graph.
        let td = TreeDecomposition::from_k_tree(g.n(), &rec);
        td.validate(&g).expect("partial k-tree inherits the witness");
        prop_assert!(td.width() <= k);
    }

    #[test]
    fn apollonian_record_is_a_3_tree_witness(n in 3usize..80, seed in 0u64..300) {
        // Apollonian networks are planar 3-trees; their insertion record
        // converts to a valid decomposition of width ≤ 3 at every size.
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, rec) = generators::apollonian(n, &mut rng);
        let td = TreeDecomposition::from_apollonian(g.n(), &rec);
        td.validate(&g).expect("apollonian record is a 3-tree witness");
        prop_assert!(td.width() <= 3);
    }
}

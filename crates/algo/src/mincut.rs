//! `(1+ε)`-approximate minimum cut (Corollary 1).
//!
//! The paper invokes min-cut via the shortcut framework as a black box
//! ([NS14, GK13]); we realize the standard tree-packing route those results
//! build on \[Karger, Thorup\]:
//!
//! 1. greedily pack spanning trees — tree `t` is an MST under edge keys
//!    `(load so far, weight)`, computed distributively by the Borůvka driver
//!    (so the round cost is `Õ(q(D))` per tree);
//! 2. for each packed tree, evaluate every *1-respecting* cut (one tree
//!    edge removed) via subtree aggregation — `O(depth)` rounds per tree —
//!    and, optionally, every *2-respecting* cut centrally (the distributed
//!    2-respecting evaluation of later work is out of scope; ratios are
//!    reported against exact Stoer–Wagner either way).

use minex_graphs::{traversal, NodeId, WeightedGraph};

/// Exact global minimum cut by Stoer–Wagner (`O(n³)`), the correctness
/// reference.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 nodes or is disconnected.
pub fn stoer_wagner(wg: &WeightedGraph) -> u64 {
    let g = wg.graph();
    let n = g.n();
    assert!(n >= 2, "min cut needs at least two nodes");
    assert!(traversal::is_connected(g), "graph must be connected");
    // Dense weight matrix.
    let mut w = vec![vec![0u64; n]; n];
    for (e, u, v) in g.edges() {
        w[u][v] += wg.weight(e);
        w[v][u] += wg.weight(e);
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase).
        let k = active.len();
        let mut in_a = vec![false; k];
        let mut score: Vec<u64> = vec![0; k];
        let mut order = Vec::with_capacity(k);
        for _ in 0..k {
            let next = (0..k)
                .filter(|&i| !in_a[i])
                .max_by_key(|&i| score[i])
                .expect("some vertex remains");
            in_a[next] = true;
            order.push(next);
            for i in 0..k {
                if !in_a[i] {
                    score[i] += w[active[next]][active[i]];
                }
            }
        }
        let t = order[k - 1];
        let s = order[k - 2];
        // Cut of the phase: weight of t's connections.
        let cut_of_phase: u64 = (0..k)
            .filter(|&i| i != t)
            .map(|i| w[active[t]][active[i]])
            .sum();
        best = best.min(cut_of_phase);
        // Merge t into s.
        let (vs, vt) = (active[s], active[t]);
        for &vi in &active {
            if vi != vs && vi != vt {
                w[vs][vi] += w[vt][vi];
                w[vi][vs] = w[vs][vi];
            }
        }
        active.swap_remove(t);
    }
    best
}

/// A packed spanning tree: parent pointers plus the edges used.
#[derive(Debug, Clone)]
pub struct PackedTree {
    /// `parent[v]` on the tree (root = node 0).
    pub parent: Vec<Option<NodeId>>,
    /// The tree's edges.
    pub edges: Vec<usize>,
}

/// Greedy tree packing: `count` spanning trees, each an MST under
/// `(load, weight)` keys, incrementing loads of used edges.
pub fn greedy_tree_packing(wg: &WeightedGraph, count: usize) -> Vec<PackedTree> {
    let g = wg.graph();
    let mut load = vec![0u64; g.m()];
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        // Kruskal under (load, weight, id).
        let mut order: Vec<usize> = (0..g.m()).collect();
        order.sort_by_key(|&e| (load[e], wg.weight(e), e));
        let mut uf = minex_graphs::UnionFind::new(g.n());
        let mut edges = Vec::with_capacity(g.n().saturating_sub(1));
        for e in order {
            let (u, v) = g.endpoints(e);
            if uf.union(u, v) {
                edges.push(e);
            }
        }
        for &e in &edges {
            load[e] += 1;
        }
        // Parent pointers by BFS over tree edges.
        let mut allowed = vec![false; g.m()];
        for &e in &edges {
            allowed[e] = true;
        }
        let mut parent = vec![None; g.n()];
        let mut seen = vec![false; g.n()];
        seen[0] = true;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(x) = queue.pop_front() {
            for (y, e) in g.neighbors(x) {
                if allowed[e] && !seen[y] {
                    seen[y] = true;
                    parent[y] = Some(x);
                    queue.push_back(y);
                }
            }
        }
        out.push(PackedTree { parent, edges });
    }
    out
}

/// All 1-respecting cut values of a spanning tree: for each non-root `v`,
/// the weight of edges crossing `subtree(v)`.
///
/// Uses the classic identity `cut(v) = A(v) − B(v)` where `A` sums, over
/// the subtree, the weighted degrees, and `B` twice the weight of edges
/// whose tree-LCA lies in the subtree.
pub fn one_respecting_cuts(wg: &WeightedGraph, tree: &PackedTree) -> Vec<(NodeId, u64)> {
    let g = wg.graph();
    let n = g.n();
    // Depth + order for LCA walking.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut root = 0;
    for v in 0..n {
        match tree.parent[v] {
            Some(p) => children[p].push(v),
            None => root = v,
        }
    }
    let mut depth = vec![0usize; n];
    let mut order = vec![root];
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &c in &children[v] {
            depth[c] = depth[v] + 1;
            order.push(c);
        }
    }
    let lca = |mut a: usize, mut b: usize| -> usize {
        while depth[a] > depth[b] {
            a = tree.parent[a].expect("deeper has parent");
        }
        while depth[b] > depth[a] {
            b = tree.parent[b].expect("deeper has parent");
        }
        while a != b {
            a = tree.parent[a].expect("non-root");
            b = tree.parent[b].expect("non-root");
        }
        a
    };
    let mut a_val = vec![0u64; n];
    let mut b_val = vec![0u64; n];
    for (e, u, v) in g.edges() {
        let wt = wg.weight(e);
        a_val[u] += wt;
        a_val[v] += wt;
        b_val[lca(u, v)] += 2 * wt;
    }
    // Subtree sums bottom-up.
    let mut a_sub = a_val;
    let mut b_sub = b_val;
    for &v in order.iter().rev() {
        if let Some(p) = tree.parent[v] {
            a_sub[p] += a_sub[v];
            b_sub[p] += b_sub[v];
        }
    }
    (0..n)
        .filter(|&v| tree.parent[v].is_some())
        .map(|v| (v, a_sub[v] - b_sub[v]))
        .collect()
}

/// Minimum 2-respecting cut of a tree (brute force over tree-edge pairs;
/// `O(n² · α)` with interval tests — keep `n ≤ ~400`).
pub fn min_two_respecting_cut(wg: &WeightedGraph, tree: &PackedTree) -> u64 {
    let g = wg.graph();
    let n = g.n();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut root = 0;
    for v in 0..n {
        match tree.parent[v] {
            Some(p) => children[p].push(v),
            None => root = v,
        }
    }
    // Euler intervals.
    let mut tin = vec![0usize; n];
    let mut tout = vec![0usize; n];
    let mut timer = 0;
    let mut stack = vec![(root, false)];
    while let Some((v, processed)) = stack.pop() {
        if processed {
            tout[v] = timer;
            continue;
        }
        tin[v] = timer;
        timer += 1;
        stack.push((v, true));
        for &c in &children[v] {
            stack.push((c, false));
        }
    }
    let in_sub = |v: usize, x: usize| tin[x] >= tin[v] && tout[x] <= tout[v];
    let cut_nodes: Vec<usize> = (0..n).filter(|&v| tree.parent[v].is_some()).collect();
    let mut best = u64::MAX;
    for (i, &a) in cut_nodes.iter().enumerate() {
        for &b in cut_nodes.iter().skip(i + 1) {
            // Side = sub(a) Δ sub(b) for nested, sub(a) ∪ sub(b) otherwise.
            let nested_ab = in_sub(a, b);
            let nested_ba = in_sub(b, a);
            let mut value = 0u64;
            for (e, u, v) in g.edges() {
                let side = |x: usize| -> bool {
                    if nested_ab {
                        in_sub(a, x) && !in_sub(b, x)
                    } else if nested_ba {
                        in_sub(b, x) && !in_sub(a, x)
                    } else {
                        in_sub(a, x) || in_sub(b, x)
                    }
                };
                if side(u) != side(v) {
                    value += wg.weight(e);
                }
            }
            // Skip degenerate sides (empty or everything).
            if value > 0 {
                best = best.min(value);
            }
        }
    }
    best
}

/// Outcome of the approximate min-cut computation.
#[derive(Debug, Clone)]
pub struct MinCutOutcome {
    /// Best cut value found over the packing.
    pub approx_value: u64,
    /// Exact value (Stoer–Wagner).
    pub exact_value: u64,
    /// `approx / exact`.
    pub ratio: f64,
    /// Number of packed trees.
    pub trees: usize,
    /// Simulated CONGEST rounds: per-tree MST + subtree aggregations.
    pub simulated_rounds: usize,
    /// Analytic shortcut-construction charge carried over from the MSTs.
    pub charged_construction_rounds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use minex_congest::CongestConfig;
    use minex_core::construct::SteinerBuilder;
    use minex_graphs::{generators, Graph, WeightModel};
    use rand::{rngs::StdRng, SeedableRng};

    fn cfg(n: usize) -> CongestConfig {
        CongestConfig::for_nodes(n)
            .with_bandwidth(192)
            .with_max_rounds(500_000)
    }

    #[test]
    fn stoer_wagner_known_cuts() {
        // Two triangles joined by one edge: min cut 1.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]).unwrap();
        assert_eq!(stoer_wagner(&WeightedGraph::unit(g)), 1);
        // Cycle: min cut 2.
        assert_eq!(stoer_wagner(&WeightedGraph::unit(generators::cycle(7))), 2);
        // Complete graph K5: min cut 4.
        assert_eq!(
            stoer_wagner(&WeightedGraph::unit(generators::complete(5))),
            4
        );
    }

    #[test]
    fn stoer_wagner_weighted() {
        // Path with weights: min cut = lightest edge.
        let g = generators::path(4);
        let wg = WeightedGraph::new(g, vec![5, 2, 9]);
        assert_eq!(stoer_wagner(&wg), 2);
    }

    #[test]
    fn packing_produces_spanning_trees() {
        let g = generators::triangulated_grid(5, 5);
        let wg = WeightedGraph::unit(g.clone());
        let packing = greedy_tree_packing(&wg, 4);
        assert_eq!(packing.len(), 4);
        for tree in &packing {
            assert_eq!(tree.edges.len(), g.n() - 1);
            assert_eq!(tree.parent.iter().filter(|p| p.is_none()).count(), 1);
        }
        // Greedy packing spreads load: the union of the trees is larger
        // than one tree.
        let mut used: Vec<usize> = packing.iter().flat_map(|t| t.edges.clone()).collect();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() > g.n() - 1);
    }

    #[test]
    fn one_respecting_matches_exact_on_cycle() {
        // On a cycle every 1-respecting cut has value 2 = exact min cut.
        let g = generators::cycle(8);
        let wg = WeightedGraph::unit(g);
        let packing = greedy_tree_packing(&wg, 1);
        let cuts = one_respecting_cuts(&wg, &packing[0]);
        assert!(cuts.iter().all(|&(_, c)| c == 2));
    }

    #[test]
    fn one_respecting_brute_force_check() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::random_connected(16, 14, &mut rng);
        let wg = WeightModel::Uniform { lo: 1, hi: 9 }.apply(&g, &mut rng);
        let packing = greedy_tree_packing(&wg, 1);
        let tree = &packing[0];
        // Brute force each subtree cut.
        let n = g.n();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = tree.parent[v] {
                children[p].push(v);
            }
        }
        let collect_subtree = |v: usize| -> Vec<usize> {
            let mut out = vec![v];
            let mut stack = vec![v];
            while let Some(x) = stack.pop() {
                for &c in &children[x] {
                    out.push(c);
                    stack.push(c);
                }
            }
            out
        };
        for (v, cut) in one_respecting_cuts(&wg, tree) {
            let sub: std::collections::HashSet<usize> = collect_subtree(v).into_iter().collect();
            let brute: u64 = g
                .edges()
                .filter(|&(_, u, w2)| sub.contains(&u) != sub.contains(&w2))
                .map(|(e, _, _)| wg.weight(e))
                .sum();
            assert_eq!(cut, brute, "node {v}");
        }
    }

    #[test]
    fn approx_cut_close_to_exact_on_planar() {
        let g = generators::triangulated_grid(5, 5);
        let mut rng = StdRng::seed_from_u64(9);
        let wg = WeightModel::Uniform { lo: 1, hi: 4 }.apply(&g, &mut rng);
        let report = crate::solver::Solver::builder(&wg)
            .shortcut_builder(SteinerBuilder)
            .config(cfg(g.n()))
            .build()
            .unwrap()
            .min_cut_with(6, true)
            .unwrap();
        let out = &report.value;
        assert!(out.approx_value >= out.exact_value);
        assert!(out.ratio <= 1.5, "ratio={}", out.ratio);
        assert!(report.stats.simulated_rounds > 0);
    }

    #[test]
    fn two_respecting_improves_on_crossing_cuts() {
        // A cycle's min cut needs two tree edges when the tree is a path.
        let g = generators::cycle(10);
        let wg = WeightedGraph::unit(g);
        let packing = greedy_tree_packing(&wg, 1);
        let two = min_two_respecting_cut(&wg, &packing[0]);
        assert_eq!(two, 2);
    }
}
